//! Offline stand-in for a portable-SIMD crate (`wide`/`std::simd`
//! shaped), vendored so the workspace stays dependency-free.
//!
//! Two public layers:
//!
//! * **Value types** — [`F32x8`] / [`I32x8`] with
//!   `load/store/splat/mul_add/to_array` plus lanewise `+`/`-`/`*`
//!   operators. Every operation
//!   dispatches to the active [`Backend`]; the scalar and vector paths
//!   are **bitwise identical per lane** (pinned by this crate's test
//!   suite), so callers never observe which backend ran.
//! * **Slice kernels** — [`axpy`], [`scale`], [`gemm_panel`]: the hot
//!   loops the workspace actually runs. Backend dispatch happens
//!   **once per call** and the whole loop lives inside a
//!   `#[target_feature]` function, so there is no per-element dispatch
//!   overhead.
//!
//! # The bitwise-equivalence contract
//!
//! Scalar IEEE-754 f32 arithmetic is the reference semantics. The
//! vector backends reproduce it exactly:
//!
//! * element order is never changed — kernels vectorize *across*
//!   independent elements (lanes), never by re-associating a reduction;
//! * [`F32x8::mul_add`] and every kernel accumulation are **non-fused**
//!   (an explicit multiply then an explicit add, two roundings). FMA
//!   instructions (`vfmadd*`, NEON `fmla`) round once and are therefore
//!   deliberately **not** used, even where the CPU has them.
//!
//! Under those two rules each lane performs exactly the scalar
//! operation sequence, so results are bit-identical — including signed
//! zeros, infinities, NaN propagation patterns and denormals.
//!
//! # Backends and the test hook
//!
//! [`backend()`] picks AVX2 on x86_64 (runtime `is_x86_feature_detected!`),
//! NEON on aarch64 (baseline feature, compile-time), scalar everywhere
//! else. [`force_scalar`] is a process-global test hook that pins the
//! scalar fallback so conformance suites can sweep both paths; because
//! the paths are bit-identical, flipping it concurrently with other
//! threads is benign (it only changes *how* the same numbers are
//! computed).
//!
//! All `unsafe` in the workspace's SIMD story is confined to this
//! crate, inside `#[target_feature]` functions that are only reachable
//! after the matching runtime/compile-time detection.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Number of f32 lanes in [`F32x8`].
pub const LANES: usize = 8;

/// The instruction set a kernel call will run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain Rust loops — always available, the reference semantics.
    Scalar,
    /// x86_64 AVX2 (256-bit), runtime-detected.
    Avx2,
    /// aarch64 NEON (128-bit × 2), baseline on that architecture.
    Neon,
}

impl Backend {
    /// Stable lowercase name (for logs and results JSON).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// Test hook: when set, [`backend()`] reports [`Backend::Scalar`]
/// regardless of what the CPU supports.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Cached detection result: 0 = not yet probed, else `Backend as u8 + 1`.
static DETECTED: AtomicU8 = AtomicU8::new(0);

fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The backend the next kernel call will use.
pub fn backend() -> Backend {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return Backend::Scalar;
    }
    detected()
}

/// The backend the CPU supports, ignoring [`force_scalar`].
pub fn detected() -> Backend {
    match DETECTED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2,
        3 => Backend::Neon,
        _ => {
            let b = detect();
            let tag = match b {
                Backend::Scalar => 1,
                Backend::Avx2 => 2,
                Backend::Neon => 3,
            };
            DETECTED.store(tag, Ordering::Relaxed);
            b
        }
    }
}

/// Pins (or releases) the scalar fallback process-wide.
///
/// Intended for tests and A/B benches; the vector paths are bitwise
/// identical to scalar, so this never changes results, only speed.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the scalar fallback is currently pinned.
pub fn scalar_forced() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Value types
// ---------------------------------------------------------------------

/// Eight `f32` lanes. 32-byte aligned so the AVX2 path can use aligned
/// loads on the type's own storage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F32x8(pub(crate) [f32; LANES]);

/// Eight `i32` lanes, companion to [`F32x8`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct I32x8(pub(crate) [i32; LANES]);

impl F32x8 {
    /// All lanes `v`.
    pub fn splat(v: f32) -> Self {
        F32x8([v; LANES])
    }

    /// Loads the first eight elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    pub fn load(slice: &[f32]) -> Self {
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&slice[..LANES]);
        F32x8(lanes)
    }

    /// Stores the lanes into the first eight elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    pub fn store(self, slice: &mut [f32]) {
        slice[..LANES].copy_from_slice(&self.0);
    }

    /// The lanes as a plain array.
    pub fn to_array(self) -> [f32; LANES] {
        self.0
    }

    /// Lanewise `self * a + b`, **non-fused**: an explicit multiply then
    /// an explicit add (two roundings), matching the scalar idiom
    /// `acc + alpha * x` bit for bit. Never compiled to FMA.
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::f32x8_mul_add(self, a, b),
            _ => scalar::f32x8_mul_add(self, a, b),
        }
    }
}

/// Lanewise `self + rhs` on the active backend.
impl std::ops::Add for F32x8 {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::f32x8_add(self, rhs),
            _ => scalar::f32x8_add(self, rhs),
        }
    }
}

/// Lanewise `self - rhs` on the active backend.
impl std::ops::Sub for F32x8 {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::f32x8_sub(self, rhs),
            _ => scalar::f32x8_sub(self, rhs),
        }
    }
}

/// Lanewise `self * rhs` on the active backend.
impl std::ops::Mul for F32x8 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::f32x8_mul(self, rhs),
            _ => scalar::f32x8_mul(self, rhs),
        }
    }
}

impl From<[f32; LANES]> for F32x8 {
    fn from(lanes: [f32; LANES]) -> Self {
        F32x8(lanes)
    }
}

impl I32x8 {
    /// All lanes `v`.
    pub fn splat(v: i32) -> Self {
        I32x8([v; LANES])
    }

    /// Loads the first eight elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    pub fn load(slice: &[i32]) -> Self {
        let mut lanes = [0i32; LANES];
        lanes.copy_from_slice(&slice[..LANES]);
        I32x8(lanes)
    }

    /// Stores the lanes into the first eight elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < 8`.
    pub fn store(self, slice: &mut [i32]) {
        slice[..LANES].copy_from_slice(&self.0);
    }

    /// The lanes as a plain array.
    pub fn to_array(self) -> [i32; LANES] {
        self.0
    }
}

/// Lanewise wrapping `self + rhs` on the active backend (integer
/// vector adds wrap; the scalar path matches with `wrapping_add`).
impl std::ops::Add for I32x8 {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::i32x8_add(self, rhs),
            _ => scalar::i32x8_add(self, rhs),
        }
    }
}

impl From<[i32; LANES]> for I32x8 {
    fn from(lanes: [i32; LANES]) -> Self {
        I32x8(lanes)
    }
}

// ---------------------------------------------------------------------
// Slice kernels (dispatch once per call)
// ---------------------------------------------------------------------

/// `acc[i] += alpha * x[i]` over `min(acc.len(), x.len())` elements.
///
/// Non-fused multiply + add per element, in ascending index order —
/// bit-identical to the plain scalar loop at every length.
pub fn axpy(acc: &mut [f32], x: &[f32], alpha: f32) {
    match backend() {
        // SAFETY: AVX2 was runtime-detected by `backend()`.
        Backend::Avx2 => unsafe { avx2::axpy(acc, x, alpha) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline aarch64 feature.
        Backend::Neon => unsafe { neon::axpy(acc, x, alpha) },
        _ => scalar::axpy(acc, x, alpha),
    }
}

/// `xs[i] *= s` over every element (elementwise, order-free —
/// bit-identical on every backend).
pub fn scale(xs: &mut [f32], s: f32) {
    match backend() {
        // SAFETY: AVX2 was runtime-detected by `backend()`.
        Backend::Avx2 => unsafe { avx2::scale(xs, s) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline aarch64 feature.
        Backend::Neon => unsafe { neon::scale(xs, s) },
        _ => scalar::scale(xs, s),
    }
}

/// Maximum row count of one [`gemm_panel`] call (the register tile
/// height: one broadcast per row per k shares each B vector load).
pub const GEMM_MR: usize = 4;

/// Register-tiled GEMM micro-kernel:
///
/// ```text
/// out[r*n + j] += Σ_{k < kc} a[r*lda + k] * b[k*n + j]
///     for r < mr, j < n
/// ```
///
/// For every output element the products are accumulated in ascending
/// `k` order with non-fused multiply + add, starting from the element's
/// current value — bit-identical to the textbook triple loop. The
/// vector backends tile `mr ≤ 4` rows so one B row-vector load feeds
/// all rows, and vectorize across `j` (independent output elements, so
/// no re-association).
///
/// # Panics
///
/// Panics if `mr == 0` or `mr > GEMM_MR`, or if `a`, `b` or `out` are
/// too short for the described access pattern.
pub fn gemm_panel(
    a: &[f32],
    lda: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    mr: usize,
    kc: usize,
) {
    assert!((1..=GEMM_MR).contains(&mr), "gemm_panel row tile {mr} out of range");
    if kc == 0 || n == 0 {
        return;
    }
    assert!(lda >= kc, "gemm_panel lda {lda} < kc {kc}");
    assert!(a.len() >= (mr - 1) * lda + kc, "gemm_panel A slice too short");
    assert!(b.len() >= kc * n, "gemm_panel B slice too short");
    assert!(out.len() >= mr * n, "gemm_panel out slice too short");
    match backend() {
        // SAFETY: AVX2 was runtime-detected by `backend()`; the bounds
        // were asserted above.
        Backend::Avx2 => unsafe { avx2::gemm_panel(a, lda, b, n, out, mr, kc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline aarch64 feature; bounds asserted.
        Backend::Neon => unsafe { neon::gemm_panel(a, lda, b, n, out, mr, kc) },
        _ => scalar::gemm_panel(a, lda, b, n, out, mr, kc),
    }
}

// ---------------------------------------------------------------------
// Scalar backend: the reference semantics.
// ---------------------------------------------------------------------

mod scalar {
    use super::{F32x8, I32x8, LANES};

    pub(crate) fn f32x8_add(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (o, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
            *o = x + y;
        }
        F32x8(out)
    }

    pub(crate) fn f32x8_sub(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (o, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
            *o = x - y;
        }
        F32x8(out)
    }

    pub(crate) fn f32x8_mul(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (o, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
            *o = x * y;
        }
        F32x8(out)
    }

    pub(crate) fn f32x8_mul_add(x: F32x8, a: F32x8, b: F32x8) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            // Two roundings, deliberately: multiply, then add.
            *o = b.0[i] + x.0[i] * a.0[i];
        }
        F32x8(out)
    }

    pub(crate) fn i32x8_add(a: I32x8, b: I32x8) -> I32x8 {
        let mut out = [0i32; LANES];
        for (o, (&x, &y)) in out.iter_mut().zip(a.0.iter().zip(&b.0)) {
            *o = x.wrapping_add(y);
        }
        I32x8(out)
    }

    pub(crate) fn axpy(acc: &mut [f32], x: &[f32], alpha: f32) {
        for (a, &v) in acc.iter_mut().zip(x) {
            *a += alpha * v;
        }
    }

    pub(crate) fn scale(xs: &mut [f32], s: f32) {
        for v in xs {
            *v *= s;
        }
    }

    pub(crate) fn gemm_panel(
        a: &[f32],
        lda: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
        mr: usize,
        kc: usize,
    ) {
        for r in 0..mr {
            let a_row = &a[r * lda..r * lda + kc];
            let out_row = &mut out[r * n..(r + 1) * n];
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = &b[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 backend (x86_64, runtime-detected).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{F32x8, I32x8, LANES};
    use std::arch::x86_64::*;

    // The value-type ops re-check nothing: `backend()` only routes here
    // after `is_x86_feature_detected!("avx2")` succeeded. Each wraps a
    // `#[target_feature]` inner function so the intrinsics are emitted
    // with the right ISA.

    pub(crate) fn f32x8_add(a: F32x8, b: F32x8) -> F32x8 {
        // SAFETY: AVX2 availability was runtime-detected before dispatch.
        unsafe { add_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn add_impl(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = F32x8([0.0; LANES]);
        let v = _mm256_add_ps(_mm256_load_ps(a.0.as_ptr()), _mm256_load_ps(b.0.as_ptr()));
        _mm256_store_ps(out.0.as_mut_ptr(), v);
        out
    }

    pub(crate) fn f32x8_sub(a: F32x8, b: F32x8) -> F32x8 {
        // SAFETY: AVX2 availability was runtime-detected before dispatch.
        unsafe { sub_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sub_impl(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = F32x8([0.0; LANES]);
        let v = _mm256_sub_ps(_mm256_load_ps(a.0.as_ptr()), _mm256_load_ps(b.0.as_ptr()));
        _mm256_store_ps(out.0.as_mut_ptr(), v);
        out
    }

    pub(crate) fn f32x8_mul(a: F32x8, b: F32x8) -> F32x8 {
        // SAFETY: AVX2 availability was runtime-detected before dispatch.
        unsafe { mul_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_impl(a: F32x8, b: F32x8) -> F32x8 {
        let mut out = F32x8([0.0; LANES]);
        let v = _mm256_mul_ps(_mm256_load_ps(a.0.as_ptr()), _mm256_load_ps(b.0.as_ptr()));
        _mm256_store_ps(out.0.as_mut_ptr(), v);
        out
    }

    pub(crate) fn f32x8_mul_add(x: F32x8, a: F32x8, b: F32x8) -> F32x8 {
        // SAFETY: AVX2 availability was runtime-detected before dispatch.
        unsafe { mul_add_impl(x, a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_impl(x: F32x8, a: F32x8, b: F32x8) -> F32x8 {
        let mut out = F32x8([0.0; LANES]);
        // Non-fused on purpose: `_mm256_fmadd_ps` rounds once and would
        // break the bitwise scalar-equivalence contract.
        let prod = _mm256_mul_ps(_mm256_load_ps(x.0.as_ptr()), _mm256_load_ps(a.0.as_ptr()));
        let v = _mm256_add_ps(_mm256_load_ps(b.0.as_ptr()), prod);
        _mm256_store_ps(out.0.as_mut_ptr(), v);
        out
    }

    pub(crate) fn i32x8_add(a: I32x8, b: I32x8) -> I32x8 {
        // SAFETY: AVX2 availability was runtime-detected before dispatch.
        unsafe { i32_add_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn i32_add_impl(a: I32x8, b: I32x8) -> I32x8 {
        let mut out = I32x8([0; LANES]);
        let v = _mm256_add_epi32(
            _mm256_load_si256(a.0.as_ptr().cast()),
            _mm256_load_si256(b.0.as_ptr().cast()),
        );
        _mm256_store_si256(out.0.as_mut_ptr().cast(), v);
        out
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn axpy(acc: &mut [f32], x: &[f32], alpha: f32) {
        let n = acc.len().min(x.len());
        let av = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let cur = _mm256_loadu_ps(acc.as_ptr().add(i));
            // mul then add: two roundings, matching `*a += alpha * v`.
            let sum = _mm256_add_ps(cur, _mm256_mul_ps(av, xv));
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), sum);
            i += LANES;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn scale(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), sv);
            _mm256_storeu_ps(xs.as_mut_ptr().add(i), v);
            i += LANES;
        }
        while i < n {
            *xs.get_unchecked_mut(i) *= s;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support and the bounds asserted
    /// by [`super::gemm_panel`].
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gemm_panel(
        a: &[f32],
        lda: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
        mr: usize,
        kc: usize,
    ) {
        let mut j = 0;
        // Vector main loop: 8 output columns × up to 4 rows per tile.
        // One B vector load per k feeds every row of the tile.
        while j + LANES <= n {
            let mut acc = [_mm256_setzero_ps(); super::GEMM_MR];
            for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                *slot = _mm256_loadu_ps(out.as_ptr().add(r * n + j));
            }
            for k in 0..kc {
                let bv = _mm256_loadu_ps(b.as_ptr().add(k * n + j));
                for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                    let av = _mm256_set1_ps(*a.get_unchecked(r * lda + k));
                    // Non-fused: multiply, then add (two roundings).
                    *slot = _mm256_add_ps(*slot, _mm256_mul_ps(av, bv));
                }
            }
            for (r, slot) in acc.iter().enumerate().take(mr) {
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j), *slot);
            }
            j += LANES;
        }
        // Scalar tail columns: same per-element order.
        while j < n {
            for r in 0..mr {
                let mut accv = *out.get_unchecked(r * n + j);
                for k in 0..kc {
                    accv += *a.get_unchecked(r * lda + k) * *b.get_unchecked(k * n + j);
                }
                *out.get_unchecked_mut(r * n + j) = accv;
            }
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------
// NEON backend (aarch64 baseline).
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    const STEP: usize = 4;

    /// # Safety
    ///
    /// NEON is a baseline aarch64 feature; callers reach this only on
    /// aarch64.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn axpy(acc: &mut [f32], x: &[f32], alpha: f32) {
        let n = acc.len().min(x.len());
        let av = vdupq_n_f32(alpha);
        let mut i = 0;
        while i + STEP <= n {
            let xv = vld1q_f32(x.as_ptr().add(i));
            let cur = vld1q_f32(acc.as_ptr().add(i));
            // vmul + vadd, NOT vfma/vmla: fused ops round once and
            // would break bitwise scalar equivalence.
            let sum = vaddq_f32(cur, vmulq_f32(av, xv));
            vst1q_f32(acc.as_mut_ptr().add(i), sum);
            i += STEP;
        }
        while i < n {
            *acc.get_unchecked_mut(i) += alpha * *x.get_unchecked(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// NEON is a baseline aarch64 feature.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn scale(xs: &mut [f32], s: f32) {
        let n = xs.len();
        let sv = vdupq_n_f32(s);
        let mut i = 0;
        while i + STEP <= n {
            let v = vmulq_f32(vld1q_f32(xs.as_ptr().add(i)), sv);
            vst1q_f32(xs.as_mut_ptr().add(i), v);
            i += STEP;
        }
        while i < n {
            *xs.get_unchecked_mut(i) *= s;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// NEON is a baseline aarch64 feature; bounds asserted by the
    /// dispatching wrapper.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn gemm_panel(
        a: &[f32],
        lda: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
        mr: usize,
        kc: usize,
    ) {
        let mut j = 0;
        while j + STEP <= n {
            let mut acc = [vdupq_n_f32(0.0); super::GEMM_MR];
            for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                *slot = vld1q_f32(out.as_ptr().add(r * n + j));
            }
            for k in 0..kc {
                let bv = vld1q_f32(b.as_ptr().add(k * n + j));
                for (r, slot) in acc.iter_mut().enumerate().take(mr) {
                    let av = vdupq_n_f32(*a.get_unchecked(r * lda + k));
                    // Non-fused multiply + add (no vfmaq).
                    *slot = vaddq_f32(*slot, vmulq_f32(av, bv));
                }
            }
            for (r, slot) in acc.iter().enumerate().take(mr) {
                vst1q_f32(out.as_mut_ptr().add(r * n + j), *slot);
            }
            j += STEP;
        }
        while j < n {
            for r in 0..mr {
                let mut accv = *out.get_unchecked(r * n + j);
                for k in 0..kc {
                    accv += *a.get_unchecked(r * lda + k) * *b.get_unchecked(k * n + j);
                }
                *out.get_unchecked_mut(r * n + j) = accv;
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RAII guard: pins the scalar fallback, restoring on drop.
    struct ScalarGuard;

    impl ScalarGuard {
        fn pin() -> Self {
            force_scalar(true);
            ScalarGuard
        }
    }

    impl Drop for ScalarGuard {
        fn drop(&mut self) {
            force_scalar(false);
        }
    }

    /// Awkward lane values: signed zeros, denormals, infinities, NaN,
    /// and magnitudes that expose double-rounding if FMA sneaks in.
    fn awkward() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-40, // denormal
            -1.0e-40,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            1.000_000_1,
            0.333_333_34,
            16_777_216.0, // 2^24: f32 integer precision edge
            -16_777_215.0,
            std::f32::consts::PI,
        ]
    }

    fn chunks8(vs: &[f32]) -> Vec<[f32; 8]> {
        vs.chunks(8).filter(|c| c.len() == 8).map(|c| c.try_into().unwrap()).collect()
    }

    fn assert_lanes_bitwise(a: [f32; 8], b: [f32; 8], what: &str) {
        for lane in 0..8 {
            assert_eq!(
                a[lane].to_bits(),
                b[lane].to_bits(),
                "{what}: lane {lane} differs ({} vs {})",
                a[lane],
                b[lane]
            );
        }
    }

    #[test]
    fn value_ops_scalar_vs_vector_bitwise() {
        if detected() == Backend::Scalar {
            return; // only the scalar path exists on this machine
        }
        let vals = awkward();
        for xa in chunks8(&vals) {
            for ya in chunks8(&vals) {
                let (x, y) = (F32x8::from(xa), F32x8::from(ya));
                let za = {
                    let mut z = xa;
                    z.rotate_left(3);
                    z
                };
                let z = F32x8::from(za);
                // Vector path (detection active)...
                let add_v = (x + y).to_array();
                let sub_v = (x - y).to_array();
                let mul_v = (x * y).to_array();
                let fma_v = x.mul_add(y, z).to_array();
                // ...vs the pinned scalar path.
                let _guard = ScalarGuard::pin();
                assert_lanes_bitwise(add_v, (x + y).to_array(), "add");
                assert_lanes_bitwise(sub_v, (x - y).to_array(), "sub");
                assert_lanes_bitwise(mul_v, (x * y).to_array(), "mul");
                assert_lanes_bitwise(fma_v, x.mul_add(y, z).to_array(), "mul_add");
            }
        }
    }

    #[test]
    fn mul_add_is_not_fused() {
        // Pick x, a, b where fused and double-rounded results differ:
        // x*a needs more than 24 bits; the explicit product rounds first.
        let x = 1.0 + f32::EPSILON; // 1 + 2^-23
        let a = 1.0 - f32::EPSILON / 2.0; // 1 - 2^-24
        let b = -1.0;
        let two_rounded = b + x * a;
        let fused = f32::mul_add(x, a, b);
        assert_ne!(
            two_rounded.to_bits(),
            fused.to_bits(),
            "test vector no longer distinguishes fused from non-fused"
        );
        let got = F32x8::splat(x).mul_add(F32x8::splat(a), F32x8::splat(b)).to_array();
        for lane in got {
            assert_eq!(lane.to_bits(), two_rounded.to_bits(), "mul_add must use two roundings");
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<f32> = (0..12).map(|i| i as f32 * 1.5).collect();
        let v = F32x8::load(&src);
        assert_eq!(v.to_array(), src[..8]);
        let mut dst = vec![0.0f32; 10];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(&dst[8..], &[0.0, 0.0]);
        assert_eq!(F32x8::splat(2.5).to_array(), [2.5; 8]);
    }

    #[test]
    fn i32x8_add_wraps_bitwise() {
        let a = I32x8::from([i32::MAX, -1, 0, 5, i32::MIN, 100, -100, 7]);
        let b = I32x8::from([1, -1, 0, -5, -1, 23, 100, 7]);
        let vec_sum = (a + b).to_array();
        let _guard = ScalarGuard::pin();
        assert_eq!(vec_sum, (a + b).to_array());
        assert_eq!(vec_sum[0], i32::MIN, "wrapping add");
        assert_eq!(I32x8::splat(3).to_array(), [3; 8]);
        let mut out = [0i32; 8];
        I32x8::load(&[1, 2, 3, 4, 5, 6, 7, 8]).store(&mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        // Deterministic xorshift-style values in roughly [-2, 2], with a
        // few awkward values mixed in.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let awk = awkward();
        (0..len)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if i % 17 == 11 {
                    awk[(s as usize) % awk.len()]
                } else {
                    ((s >> 11) as f32 / (1u64 << 53) as f32).mul_add(4.0, -2.0)
                }
            })
            .collect()
    }

    #[test]
    fn axpy_kernel_matches_scalar_bitwise() {
        for len in [0, 1, 7, 8, 9, 31, 64, 100] {
            for (seed, alpha) in [(1, 0.5f32), (2, -1.0), (3, 1.0), (4, 1.0e-3), (5, 0.0)] {
                let x = pseudo(seed, len);
                let base = pseudo(seed + 100, len);
                let mut vec_acc = base.clone();
                axpy(&mut vec_acc, &x, alpha);
                let mut ref_acc = base.clone();
                {
                    let _guard = ScalarGuard::pin();
                    axpy(&mut ref_acc, &x, alpha);
                }
                for i in 0..len {
                    assert_eq!(
                        vec_acc[i].to_bits(),
                        ref_acc[i].to_bits(),
                        "axpy len {len} alpha {alpha} index {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_kernel_matches_scalar_bitwise() {
        for len in [0, 1, 8, 13, 40] {
            for s in [0.5f32, -0.0, 2.0, 1.0e20] {
                let base = pseudo(len as u64 + 7, len);
                let mut vec_xs = base.clone();
                scale(&mut vec_xs, s);
                let mut ref_xs = base;
                {
                    let _guard = ScalarGuard::pin();
                    scale(&mut ref_xs, s);
                }
                for i in 0..len {
                    assert_eq!(vec_xs[i].to_bits(), ref_xs[i].to_bits(), "scale len {len} s {s}");
                }
            }
        }
    }

    #[test]
    fn gemm_panel_matches_scalar_bitwise() {
        for &(mr, kc, n, lda_pad) in
            &[(1, 1, 1, 0), (4, 3, 8, 0), (2, 5, 7, 3), (4, 16, 19, 1), (3, 2, 32, 0), (4, 9, 5, 2)]
        {
            let lda = kc + lda_pad;
            let a = pseudo(11, mr * lda);
            let b = pseudo(13, kc * n);
            let base = pseudo(17, mr * n);
            let mut vec_out = base.clone();
            gemm_panel(&a, lda, &b, n, &mut vec_out, mr, kc);
            let mut ref_out = base;
            {
                let _guard = ScalarGuard::pin();
                gemm_panel(&a, lda, &b, n, &mut ref_out, mr, kc);
            }
            for i in 0..mr * n {
                assert_eq!(
                    vec_out[i].to_bits(),
                    ref_out[i].to_bits(),
                    "gemm_panel mr={mr} kc={kc} n={n} lda={lda} element {i}"
                );
            }
        }
    }

    #[test]
    fn gemm_panel_accumulates_in_k_order() {
        // The panel must equal the textbook loop, starting from the
        // existing out values (accumulation, not overwrite).
        let (mr, kc, n) = (3, 4, 10);
        let a = pseudo(21, mr * kc);
        let b = pseudo(22, kc * n);
        let mut out = pseudo(23, mr * n);
        let mut expect = out.clone();
        for r in 0..mr {
            for j in 0..n {
                for k in 0..kc {
                    expect[r * n + j] += a[r * kc + k] * b[k * n + j];
                }
            }
        }
        gemm_panel(&a, kc, &b, n, &mut out, mr, kc);
        for i in 0..mr * n {
            assert_eq!(out[i].to_bits(), expect[i].to_bits(), "element {i}");
        }
    }

    #[test]
    fn force_scalar_hook_flips_backend() {
        let native = detected();
        assert_eq!(backend(), native);
        force_scalar(true);
        assert!(scalar_forced());
        assert_eq!(backend(), Backend::Scalar);
        force_scalar(false);
        assert!(!scalar_forced());
        assert_eq!(backend(), native);
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Neon.name(), "neon");
    }

    #[test]
    fn empty_and_mismatched_slices() {
        // axpy zips: extra elements on either side are untouched.
        let mut acc = vec![1.0f32, 2.0, 3.0];
        axpy(&mut acc, &[10.0, 10.0], 1.0);
        assert_eq!(acc, vec![11.0, 12.0, 3.0]);
        let mut empty: Vec<f32> = Vec::new();
        axpy(&mut empty, &[], 2.0);
        scale(&mut empty, 2.0);
        gemm_panel(&[1.0], 1, &[], 0, &mut [], 1, 0);
    }
}
