//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so it vendors the small deterministic subset of `rand` 0.8 it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand's own `SmallRng` family uses. Streams are fully
//! deterministic per seed, which is all the graph generators, weight
//! initialisers and tests require; this is *not* a cryptographic RNG.

/// Uniform sampling over a range type, the subset of rand's
/// `SampleRange` this workspace needs.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Types drawable from the "standard" distribution (`Rng::gen`):
/// uniform over all values for integers, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one sample using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the standard distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multiplies the sample into `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias is irrelevant at
/// 64-bit word width).
fn bounded(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits at p=0.3");
    }
}
