//! Offline stand-in for a *persistent* scoped thread pool.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so it vendors the small parallel-execution subset it needs
//! instead of depending on `rayon`: a [`ThreadPool`] whose workers are
//! spawned **once** at [`ThreadPool::new`] and stay parked on a shared
//! job queue for the pool's whole lifetime, plus the deterministic-order
//! data-parallel helpers [`ThreadPool::par_chunks`],
//! [`ThreadPool::par_map`] and [`ThreadPool::par_map_init`].
//!
//! Earlier revisions spawned OS threads inside every `scope`/`par_*`
//! call; per-layer dispatch in the island engine paid thread-creation
//! latency on every GNN layer. The persistent design moves that cost to
//! pool construction: a `scope` call now only pushes boxed closures onto
//! the queue and waits on a completion latch.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism at the call site.** `par_chunks`/`par_map` return
//!    results in input order no matter which worker computed what, so
//!    callers that merge results sequentially behave identically at any
//!    thread count.
//! 2. **Soundness of borrowed tasks.** Tasks may borrow from the
//!    caller's stack (`'env`). The queue stores lifetime-erased boxes
//!    (the one `unsafe` in this crate); safety rests on the scope
//!    guard, which blocks until the latch counts every spawned task as
//!    finished *before* the borrowed frame can unwind — including when
//!    the scope body itself panics. Worker panics are caught per task,
//!    carried through the latch, and re-raised at scope exit, exactly
//!    like a panic in a sequential loop.
//! 3. **Caller participation.** The submitting thread is one of the
//!    pool's `threads`: while waiting on the latch it drains queued
//!    jobs, so a pool of width N applies N threads to the work even
//!    though only N−1 OS threads are parked in the pool.
//!
//! With `threads == 1` every entry point degenerates to a plain inline
//! loop on the calling thread — no worker threads exist at all.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

/// A job on the shared queue. Closures are lifetime-erased at spawn
/// time; the scope guard guarantees they run before their borrows die.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between pool handles and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    job_ready: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().expect("job queue lock").push_back(job);
        self.job_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("job queue lock").pop_front()
    }
}

/// Completion latch of one `scope` call: counts outstanding tasks and
/// stores the first task panic for re-raising at scope exit.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            state: Mutex::new(LatchState { pending: 0, panic: None }),
            done: Condvar::new(),
        })
    }

    fn add_task(&self) {
        self.state.lock().expect("latch lock").pending += 1;
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut s = self.state.lock().expect("latch lock");
        s.pending -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.pending == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch lock").pending == 0
    }

    /// Blocks until every task completed, helping with queued jobs
    /// (possibly other scopes') while waiting. The captured panic
    /// payload (if any) is deliberately left in the latch for the
    /// caller to take and re-raise.
    fn wait(&self, shared: &Shared) {
        loop {
            if self.is_done() {
                return;
            }
            // Help: run whatever is queued. Our own still-queued tasks
            // are guaranteed to drain this way even if every worker is
            // busy elsewhere.
            if let Some(job) = shared.try_pop() {
                job();
                continue;
            }
            // Nothing queued: our remaining tasks are in flight on
            // workers. Park on the latch until they finish.
            let s = self.state.lock().expect("latch lock");
            if s.pending == 0 {
                return;
            }
            // A short timeout re-checks the queue so a job enqueued
            // between `try_pop` and `wait` cannot strand us parked.
            let _ =
                self.done.wait_timeout(s, std::time::Duration::from_millis(1)).expect("latch lock");
        }
    }

    /// Removes the first captured task panic, if any (call after
    /// [`Latch::wait`]).
    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.state.lock().expect("latch lock").panic.take()
    }
}

/// Joins the workers when the last pool handle drops.
struct PoolCore {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        // No scope can be active here (scopes borrow the pool), so the
        // queue is empty: signal shutdown and join. The store happens
        // under the queue mutex so it cannot race a worker between its
        // shutdown check and its condvar wait (lost wakeup → a worker
        // parked forever → this join would hang).
        {
            let _queue = self.shared.queue.lock().expect("job queue lock");
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.job_ready.notify_all();
        for handle in self.handles.lock().expect("handle list lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fixed-width thread pool with persistent workers.
///
/// Cloning is cheap and shares the same workers; the workers join when
/// the last clone drops.
///
/// # Example
///
/// ```
/// use threadpool::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone)]
pub struct ThreadPool {
    core: Arc<PoolCore>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.core.threads).finish()
    }
}

impl ThreadPool {
    /// Creates a pool that runs work on up to `threads` OS threads
    /// (including the calling thread, which always participates):
    /// `threads - 1` persistent workers are spawned here and live until
    /// the last pool handle drops.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for _ in 1..threads {
            let shared = Arc::clone(&shared);
            handles.push(thread::spawn(move || worker_loop(&shared)));
        }
        ThreadPool { core: Arc::new(PoolCore { shared, threads, handles: Mutex::new(handles) }) }
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Runs `f` with a [`PoolScope`] that can spawn borrowed tasks onto
    /// the pool; every spawned task completes before `scope` returns
    /// (scoped join — the guard waits even when `f` unwinds, which is
    /// what makes the borrow erasure sound). With `threads == 1` tasks
    /// run inline at spawn time.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any spawned task at scope exit.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'env>) -> R,
    {
        if self.core.threads == 1 {
            return f(&PoolScope { pool: None, _env: std::marker::PhantomData });
        }
        let latch = Latch::new();
        let scope = PoolScope {
            pool: Some(ScopeQueue {
                shared: Arc::clone(&self.core.shared),
                latch: Arc::clone(&latch),
            }),
            _env: std::marker::PhantomData,
        };
        // The guard's Drop waits for every spawned task, so a panic in
        // `f` cannot return borrowed frames to the caller while tasks
        // still reference them.
        let guard = ScopeGuard { shared: &self.core.shared, latch: &latch };
        let result = f(&scope);
        drop(scope);
        drop(guard); // waits; task panics surface below
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        result
    }

    /// Splits `items` into chunks of `chunk_size` and maps `f` over the
    /// chunks in parallel, returning one result per chunk **in input
    /// order**. `f` receives the chunk index and the chunk itself.
    ///
    /// Chunks are claimed dynamically (atomic counter), so imbalanced
    /// chunk costs still fill all workers; the calling thread works too.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; re-raises task panics.
    pub fn par_chunks<'data, T, R, F>(&self, items: &'data [T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data [T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.run_indexed(chunks.len(), |i| f(i, chunks[i]))
    }

    /// Maps `f` over `items` in parallel, one task per item, returning
    /// results **in input order**. `f` receives the item index and the
    /// item.
    ///
    /// # Panics
    ///
    /// Re-raises task panics.
    pub fn par_map<'data, T, R, F>(&self, items: &'data [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`ThreadPool::par_map`], but each participating thread first
    /// builds private state with `init` and threads it through every
    /// item it claims — the hook that lets workers reuse scratch arenas
    /// across items instead of allocating per item.
    ///
    /// # Panics
    ///
    /// Re-raises task panics.
    pub fn par_map_init<'data, T, R, S, I, F>(&self, items: &'data [T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &'data T) -> R + Sync,
    {
        let n = items.len();
        if self.core.threads == 1 || n <= 1 {
            let mut state = init();
            return (0..n).map(|i| f(&mut state, i, &items[i])).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let work = || {
            let mut state = init();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&mut state, i, &items[i]);
                *slots[i].lock().expect("result slot lock") = Some(r);
            }
        };
        self.scope(|s| {
            for _ in 0..(self.core.threads - 1).min(n.saturating_sub(1)) {
                s.spawn(work);
            }
            work();
        });
        collect_slots(slots)
    }

    /// The shared dynamic-claim executor: runs `f(0..n)` across the pool
    /// and collects the results in index order.
    fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.core.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i);
            *slots[i].lock().expect("result slot lock") = Some(r);
        };
        self.scope(|s| {
            for _ in 0..(self.core.threads - 1).min(n.saturating_sub(1)) {
                s.spawn(work);
            }
            work();
        });
        collect_slots(slots)
    }
}

fn collect_slots<R>(slots: Vec<Mutex<Option<R>>>) -> Vec<R> {
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot lock").expect("every index was claimed"))
        .collect()
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("job queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("job queue lock");
            }
        };
        // Jobs are latch wrappers that catch their own panics; the
        // outer catch is belt and braces so a worker can never die.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// The spawn half of an active scope (multi-threaded pools only).
struct ScopeQueue {
    shared: Arc<Shared>,
    latch: Arc<Latch>,
}

/// Waits for the scope's tasks on drop — the soundness anchor for the
/// lifetime erasure (runs on both the normal and unwinding paths).
struct ScopeGuard<'scope> {
    shared: &'scope Shared,
    latch: &'scope Arc<Latch>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        // Any task panic payload stays in the latch; the normal path
        // re-raises it after this drop. On the unwinding path the
        // body's own panic continues and the task payload is dropped
        // with the latch.
        self.latch.wait(self.shared);
    }
}

/// Handle for spawning borrowed tasks inside [`ThreadPool::scope`];
/// `'env` is the lifetime of the environment tasks may borrow from.
pub struct PoolScope<'env> {
    /// `None` on single-threaded pools: spawn runs the task inline.
    pool: Option<ScopeQueue>,
    _env: std::marker::PhantomData<&'env ()>,
}

impl std::fmt::Debug for PoolScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope").field("inline", &self.pool.is_none()).finish()
    }
}

impl<'env> PoolScope<'env> {
    /// Enqueues `task` on the pool's persistent work queue; it completes
    /// before the enclosing [`ThreadPool::scope`] returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match &self.pool {
            Some(queue) => {
                queue.latch.add_task();
                let latch = Arc::clone(&queue.latch);
                let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    latch.complete(result.err());
                });
                // SAFETY: the wrapper may borrow from 'env. The scope
                // guard blocks (normal and unwinding exit alike) until
                // the latch records this task as complete, so the
                // closure never outlives the borrows it captures. Only
                // the lifetime is transmuted; the layout of a boxed
                // trait object does not depend on its lifetime bound.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(wrapper) };
                queue.shared.push(job);
            }
            None => task(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let input: Vec<u64> = (0..97).collect();
            let out = pool.par_map(&input, |i, &x| (i as u64) * 1000 + x);
            let expect: Vec<u64> = (0..97).map(|x| x * 1000 + x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let pool = ThreadPool::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let sums = pool.par_chunks(&input, 7, |_, chunk| chunk.iter().sum::<u64>());
        assert_eq!(sums.len(), 1000usize.div_ceil(7));
        assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn scope_joins_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_tasks_borrow_environment() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let main_id = thread::current().id();
        pool.scope(|s| {
            s.spawn(move || assert_eq!(thread::current().id(), main_id));
        });
        let out = pool.par_map(&[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = ThreadPool::new(4);
        let out: Vec<u64> = pool.par_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        let chunks: Vec<u64> = pool.par_chunks(&[] as &[u64], 3, |_, c| c.len() as u64);
        assert!(chunks.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.par_map(&[0u32, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err(), "task panic must reach the caller");
    }

    #[test]
    fn scope_task_panic_propagates_with_its_payload() {
        // A panic inside a bare scope-spawned task (no par_map result
        // slots involved) must reach the caller, carrying the original
        // message — not be swallowed by the scope guard's wait.
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("slab fill exploded"));
            });
        });
        let payload = result.expect_err("scope must re-raise the task panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("slab fill exploded"), "payload lost: {message:?}");
        // And the pool keeps serving afterwards.
        assert_eq!(pool.par_map(&[1u64, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn pool_survives_a_panicking_scope() {
        // After a task panic the same workers must keep serving.
        let pool = ThreadPool::new(4);
        for round in 0..3 {
            let result = std::panic::catch_unwind(|| {
                pool.par_map(&[0u32, 1, 2, 3], |_, &x| {
                    assert!(x != 2, "boom {round}");
                    x
                })
            });
            assert!(result.is_err());
            let ok = pool.par_map(&[1u64, 2, 3], |_, &x| x + round);
            assert_eq!(ok, vec![1 + round, 2 + round, 3 + round]);
        }
    }

    #[test]
    fn sequential_scopes_reuse_the_same_workers() {
        let pool = ThreadPool::new(3);
        let seen = Mutex::new(std::collections::HashSet::new());
        for _ in 0..20 {
            pool.scope(|s| {
                for _ in 0..4 {
                    let seen = &seen;
                    s.spawn(move || {
                        seen.lock().unwrap().insert(thread::current().id());
                    });
                }
            });
        }
        // 2 workers + the caller: at most 3 distinct threads ever run
        // tasks, no matter how many scopes were opened.
        assert!(seen.lock().unwrap().len() <= 3);
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let pool = ThreadPool::new(4);
        let clone = pool.clone();
        let a = pool.par_map(&[1u64, 2], |_, &x| x);
        let b = clone.par_map(&[3u64, 4], |_, &x| x);
        assert_eq!((a, b), (vec![1, 2], vec![3, 4]));
        drop(pool);
        // The clone still works after the original handle drops.
        let c = clone.par_map(&[5u64], |_, &x| x);
        assert_eq!(c, vec![5]);
    }

    #[test]
    fn par_map_init_reuses_thread_state() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let input: Vec<u64> = (0..50).collect();
            let inits = AtomicU64::new(0);
            let out = pool.par_map_init(
                &input,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<u64>::new()
                },
                |scratch, _, &x| {
                    scratch.push(x);
                    x * 2
                },
            );
            let expect: Vec<u64> = (0..50).map(|x| x * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
            // One state per participating thread, not per item.
            assert!(inits.load(Ordering::SeqCst) <= threads as u64, "threads={threads}");
        }
    }

    #[test]
    fn concurrent_scopes_from_clones_do_not_interfere() {
        let pool = ThreadPool::new(4);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let input: Vec<u64> = (0..200).collect();
                    let out = pool.par_map(&input, |_, &x| x + t);
                    out.iter().sum::<u64>()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let sum = h.join().expect("no panic");
            assert_eq!(sum, (0..200u64).sum::<u64>() + 200 * t as u64);
        }
    }
}
