//! Offline stand-in for a scoped thread pool.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so it vendors the small parallel-execution subset it needs
//! instead of depending on `rayon`: a [`ThreadPool`] that fans closures
//! across N workers with [`ThreadPool::scope`] (spawn-N workers feeding
//! from a channel work queue, joined at scope exit) and the
//! deterministic-order data-parallel helpers [`ThreadPool::par_chunks`]
//! and [`ThreadPool::par_map`].
//!
//! Design constraints, in order:
//!
//! 1. **Determinism at the call site.** `par_chunks`/`par_map` return
//!    results in input order no matter which worker computed what, so
//!    callers that merge results sequentially behave identically at any
//!    thread count.
//! 2. **No `unsafe`.** Scoped borrows come from [`std::thread::scope`];
//!    the work queue is an [`std::sync::mpsc`] channel behind a mutex.
//!    Worker panics propagate to the caller at scope exit, exactly like
//!    a panic in a sequential loop.
//! 3. **No global state.** A pool is just a configured width; workers
//!    are spawned per `scope`/`par_chunks` call and joined before the
//!    call returns, so a pool can live inside any engine object without
//!    holding OS resources between calls.
//!
//! With `threads == 1` every entry point degenerates to a plain inline
//! loop on the calling thread — no threads are spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// A fixed-width scoped thread pool.
///
/// # Example
///
/// ```
/// use threadpool::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool that runs work on up to `threads` OS threads
    /// (including the calling thread, which always participates).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a thread pool needs at least one thread");
        ThreadPool { threads }
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`PoolScope`] that can spawn borrowed tasks onto
    /// the pool; every spawned task completes before `scope` returns
    /// (scoped join). Tasks are distributed over `threads - 1` worker
    /// threads through a channel work queue; with `threads == 1` tasks
    /// run inline at spawn time.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any spawned task at scope exit.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'env>) -> R,
    {
        if self.threads == 1 {
            return f(&PoolScope { queue: None });
        }
        thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<Task<'env>>();
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..self.threads - 1 {
                let rx = Arc::clone(&rx);
                s.spawn(move || loop {
                    // Hold the lock only while popping, not while running.
                    let task = match rx.lock().expect("queue lock").recv() {
                        Ok(task) => task,
                        Err(_) => break, // senders dropped: scope is over
                    };
                    task();
                });
            }
            let scope = PoolScope { queue: Some(tx) };
            // `scope` (and its sender) drops at the end of this closure
            // even when `f` unwinds, so the workers always drain and exit
            // before the implicit join of `thread::scope`.
            f(&scope)
        })
    }

    /// Splits `items` into chunks of `chunk_size` and maps `f` over the
    /// chunks in parallel, returning one result per chunk **in input
    /// order**. `f` receives the chunk index and the chunk itself.
    ///
    /// Chunks are claimed dynamically (atomic counter), so imbalanced
    /// chunk costs still fill all workers; the calling thread works too.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; re-raises task panics.
    pub fn par_chunks<'data, T, R, F>(&self, items: &'data [T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data [T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.run_indexed(chunks.len(), |i| f(i, chunks[i]))
    }

    /// Maps `f` over `items` in parallel, one task per item, returning
    /// results **in input order**. `f` receives the item index and the
    /// item.
    ///
    /// # Panics
    ///
    /// Re-raises task panics.
    pub fn par_map<'data, T, R, F>(&self, items: &'data [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'data T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// The shared dynamic-claim executor: runs `f(0..n)` across the pool
    /// and collects the results in index order.
    fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i);
            *slots[i].lock().expect("result slot lock") = Some(r);
        };
        thread::scope(|s| {
            for _ in 0..(self.threads - 1).min(n.saturating_sub(1)) {
                s.spawn(work);
            }
            work();
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("result slot lock").expect("every index was claimed")
            })
            .collect()
    }
}

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Handle for spawning borrowed tasks inside [`ThreadPool::scope`];
/// `'env` is the lifetime of the environment tasks may borrow from.
#[derive(Debug)]
pub struct PoolScope<'env> {
    /// `None` on single-threaded pools: spawn runs the task inline.
    queue: Option<mpsc::Sender<Task<'env>>>,
}

impl<'env> PoolScope<'env> {
    /// Enqueues `task` on the pool's work queue; it completes before the
    /// enclosing [`ThreadPool::scope`] returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match &self.queue {
            Some(tx) => tx.send(Box::new(task)).expect("workers outlive the scope body"),
            None => task(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let input: Vec<u64> = (0..97).collect();
            let out = pool.par_map(&input, |i, &x| (i as u64) * 1000 + x);
            let expect: Vec<u64> = (0..97).map(|x| x * 1000 + x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let pool = ThreadPool::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let sums = pool.par_chunks(&input, 7, |_, chunk| chunk.iter().sum::<u64>());
        assert_eq!(sums.len(), 1000usize.div_ceil(7));
        assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn scope_joins_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_tasks_borrow_environment() {
        let pool = ThreadPool::new(3);
        let data = [1u64, 2, 3, 4];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let main_id = thread::current().id();
        pool.scope(|s| {
            s.spawn(move || assert_eq!(thread::current().id(), main_id));
        });
        let out = pool.par_map(&[1, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = ThreadPool::new(4);
        let out: Vec<u64> = pool.par_map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
        let chunks: Vec<u64> = pool.par_chunks(&[] as &[u64], 3, |_, c| c.len() as u64);
        assert!(chunks.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.par_map(&[0u32, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err(), "task panic must reach the caller");
    }
}
