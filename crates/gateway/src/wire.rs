//! The length-prefixed binary wire protocol.
//!
//! Framing follows the `igcn-store` snapshot conventions — magic,
//! little-endian version, little-endian payload length, FNV-1a-64
//! checksum ([`igcn_store::snapshot::fnv1a64`]), a trace id, then the
//! payload:
//!
//! ```text
//! magic(4) | version(u32 LE) | payload_len(u64 LE) | checksum(u64 LE) | trace_id(u64 LE) | payload
//! ```
//!
//! The trace id correlates a request across the gateway's telemetry
//! (flight recorder, slow-request log lines) and is echoed verbatim on
//! every reply frame; `0` means "unassigned" and makes the server mint
//! one. It lives in the header — not the payload — so it is readable
//! even on frames whose payload fails to parse, and it is deliberately
//! excluded from the checksum's coverage (the checksum guards the
//! payload, exactly as in version 1).
//!
//! The magic's first byte is `0x89` — not a valid leading byte of any
//! HTTP method — which is how the gateway sniffs the protocol from the
//! first byte of a fresh connection. The payload is
//! `kind(u8) | id(u64 LE) | body`; see [`Frame`] for the per-kind body
//! layouts. All floats travel as raw little-endian IEEE-754 bits, so
//! the binary protocol is bit-exact by construction (NaN payloads
//! included).

use igcn_graph::SparseFeatures;
use igcn_linalg::DenseMatrix;
use igcn_store::snapshot::fnv1a64;

/// Frame magic: `0x89` (never a printable HTTP byte) then `IGW`.
pub const WIRE_MAGIC: [u8; 4] = [0x89, b'I', b'G', b'W'];

/// Wire format version. Bumped on any layout change; the server
/// rejects frames with a different version rather than guessing.
/// Version 2 added the header `trace_id` field (version 1 had a
/// 24-byte header ending at the checksum).
pub const WIRE_VERSION: u32 = 2;

/// Fixed header size: magic + version + payload_len + checksum +
/// trace_id.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// Hard cap on a frame payload (defence against corrupt or hostile
/// length fields).
pub const MAX_PAYLOAD: u64 = 256 << 20;

const KIND_INFER: u8 = 1;
const KIND_OK: u8 = 2;
const KIND_ERR: u8 = 3;
const KIND_SHED: u8 = 4;
const KIND_DEADLINE: u8 = 5;
const KIND_HEALTH_CHECK: u8 = 6;
const KIND_HEALTH: u8 = 7;

/// The gateway's live health, as reported on `GET /healthz` and the
/// binary [`Frame::Health`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally: admit away.
    Ready,
    /// Still serving, but impaired (wedged backend, dead shards, or
    /// sustained shed pressure) — a load balancer should prefer other
    /// replicas.
    Degraded,
    /// Draining: in-flight requests finish, new work is refused.
    Draining,
}

impl HealthState {
    /// The wire byte for this state.
    pub fn as_u8(self) -> u8 {
        match self {
            HealthState::Ready => 0,
            HealthState::Degraded => 1,
            HealthState::Draining => 2,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown bytes.
    pub fn from_u8(v: u8) -> Result<HealthState, String> {
        match v {
            0 => Ok(HealthState::Ready),
            1 => Ok(HealthState::Degraded),
            2 => Ok(HealthState::Draining),
            other => Err(format!("unknown health state byte {other}")),
        }
    }

    /// The lowercase label used in the `/healthz` JSON body.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Ready => "ready",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }
}

/// One decoded frame of the binary protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: run one inference.
    ///
    /// Body: `deadline_ms(u64, 0 = none) | rows(u64) | cols(u64) |
    /// nnz(u64) | row_ptr((rows+1)×u64) | col_idx(nnz×u32) |
    /// values(nnz×f32)`.
    Infer {
        /// Correlation id, echoed on the response frame.
        id: u64,
        /// Relative deadline budget in milliseconds (0 = no deadline).
        deadline_ms: u64,
        /// The request's sparse feature matrix.
        features: SparseFeatures,
    },
    /// Server → client: the inference output.
    ///
    /// Body: `rows(u64) | cols(u64) | data(rows·cols×f32)`.
    Ok {
        /// The request's correlation id.
        id: u64,
        /// Dense output, row-major.
        output: DenseMatrix,
    },
    /// Server → client: the request failed (backend or protocol error).
    ///
    /// Body: `len(u64) | utf8 message`.
    Err {
        /// The request's correlation id (0 when the failure predates a
        /// parsed id).
        id: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// Server → client: load shed at admission — retry later.
    Shed {
        /// The request's correlation id.
        id: u64,
    },
    /// Server → client: the deadline expired before dispatch.
    Deadline {
        /// The request's correlation id.
        id: u64,
    },
    /// Client → server: report your health (the binary-protocol
    /// equivalent of `GET /healthz`). Body: empty.
    HealthCheck {
        /// Correlation id, echoed on the [`Frame::Health`] reply.
        id: u64,
    },
    /// Server → client: the gateway's live health.
    ///
    /// Body: `state(u8) | len(u64) | utf8 detail`.
    Health {
        /// The request's correlation id.
        id: u64,
        /// Ready / degraded / draining.
        state: HealthState,
        /// Human-readable explanation (why degraded, what is draining).
        detail: String,
    },
}

/// Outcome of [`decode`] on a byte buffer.
#[derive(Debug)]
pub enum Decoded {
    /// The buffer does not yet hold a complete frame.
    NeedMore,
    /// One complete frame: the frame, its header trace id (0 when the
    /// client sent none), and how many bytes it consumed.
    Frame(Frame, u64, usize),
    /// The stream is unrecoverable (bad magic/version/checksum/layout);
    /// the connection must be closed.
    Corrupt(String),
}

/// Encodes one frame with an unassigned (zero) trace id.
pub fn encode(frame: &Frame) -> Vec<u8> {
    encode_traced(frame, 0)
}

/// Encodes one frame, header included, stamping `trace_id` into the
/// header's trace field.
pub fn encode_traced(frame: &Frame, trace_id: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Infer { id, deadline_ms, features } => {
            payload.push(KIND_INFER);
            put_u64(&mut payload, *id);
            put_u64(&mut payload, *deadline_ms);
            put_u64(&mut payload, features.num_rows() as u64);
            put_u64(&mut payload, features.num_cols() as u64);
            put_u64(&mut payload, features.nnz() as u64);
            for &p in features.row_ptr() {
                put_u64(&mut payload, p as u64);
            }
            for &c in features.col_idx() {
                payload.extend_from_slice(&c.to_le_bytes());
            }
            for &v in features.values() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Ok { id, output } => {
            payload.push(KIND_OK);
            put_u64(&mut payload, *id);
            put_u64(&mut payload, output.rows() as u64);
            put_u64(&mut payload, output.cols() as u64);
            for &v in output.as_slice() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Err { id, message } => {
            payload.push(KIND_ERR);
            put_u64(&mut payload, *id);
            put_u64(&mut payload, message.len() as u64);
            payload.extend_from_slice(message.as_bytes());
        }
        Frame::Shed { id } => {
            payload.push(KIND_SHED);
            put_u64(&mut payload, *id);
        }
        Frame::Deadline { id } => {
            payload.push(KIND_DEADLINE);
            put_u64(&mut payload, *id);
        }
        Frame::HealthCheck { id } => {
            payload.push(KIND_HEALTH_CHECK);
            put_u64(&mut payload, *id);
        }
        Frame::Health { id, state, detail } => {
            payload.push(KIND_HEALTH);
            put_u64(&mut payload, *id);
            payload.push(state.as_u8());
            put_u64(&mut payload, detail.len() as u64);
            payload.extend_from_slice(detail.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&trace_id.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Tries to decode one frame from the front of `buf`.
pub fn decode(buf: &[u8]) -> Decoded {
    if buf.len() < HEADER_LEN {
        return Decoded::NeedMore;
    }
    if buf[..4] != WIRE_MAGIC {
        return Decoded::Corrupt("bad frame magic".to_string());
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != WIRE_VERSION {
        return Decoded::Corrupt(format!(
            "unsupported wire version {version} (this gateway speaks {WIRE_VERSION})"
        ));
    }
    let payload_len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Decoded::Corrupt(format!(
            "frame payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        ));
    }
    let checksum = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
    let trace_id = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
    let total = HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Decoded::NeedMore;
    }
    let payload = &buf[HEADER_LEN..total];
    if fnv1a64(payload) != checksum {
        return Decoded::Corrupt("frame checksum mismatch".to_string());
    }
    match decode_payload(payload) {
        Ok(frame) => Decoded::Frame(frame, trace_id, total),
        Err(msg) => Decoded::Corrupt(msg),
    }
}

fn decode_payload(payload: &[u8]) -> Result<Frame, String> {
    let mut r = Reader { buf: payload, pos: 0 };
    let kind = r.u8()?;
    let id = r.u64()?;
    let frame = match kind {
        KIND_INFER => {
            let deadline_ms = r.u64()?;
            // rows drives (rows+1)×u64 row_ptr reads, nnz drives
            // nnz×u32 + nnz×f32 reads: both bounded by what the
            // payload actually holds before any reserve.
            let rows = r.count_field("rows", 8)?;
            let cols = r.dim_field("cols")?;
            let nnz = r.count_field("nnz", 8)?;
            let mut row_ptr = Vec::with_capacity(rows + 1);
            for _ in 0..=rows {
                row_ptr.push(r.dim_field("row_ptr entry")?);
            }
            let mut col_idx = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(r.u32()?);
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(f32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes")));
            }
            let features = SparseFeatures::from_raw_parts(rows, cols, row_ptr, col_idx, values)
                .map_err(|e| format!("invalid sparse features: {e}"))?;
            Frame::Infer { id, deadline_ms, features }
        }
        KIND_OK => {
            let rows = r.dim_field("rows")?;
            let cols = r.dim_field("cols")?;
            let n =
                rows.checked_mul(cols).ok_or_else(|| "output rows×cols overflows".to_string())?;
            if n > r.remaining() / 4 {
                return Err(format!(
                    "output of {rows}×{cols} f32s cannot fit the frame's remaining {} payload bytes",
                    r.remaining()
                ));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(f32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes")));
            }
            Frame::Ok { id, output: DenseMatrix::from_vec(rows, cols, data) }
        }
        KIND_ERR => {
            let len = r.count_field("message length", 1)?;
            let bytes = r.bytes(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| "error message is not UTF-8".to_string())?
                .to_string();
            Frame::Err { id, message }
        }
        KIND_SHED => Frame::Shed { id },
        KIND_DEADLINE => Frame::Deadline { id },
        KIND_HEALTH_CHECK => Frame::HealthCheck { id },
        KIND_HEALTH => {
            let state = HealthState::from_u8(r.u8()?)?;
            let len = r.count_field("detail length", 1)?;
            let bytes = r.bytes(len)?;
            let detail = std::str::from_utf8(bytes)
                .map_err(|_| "health detail is not UTF-8".to_string())?
                .to_string();
            Frame::Health { id, state, detail }
        }
        other => return Err(format!("unknown frame kind {other}")),
    };
    if r.pos != payload.len() {
        return Err(format!(
            "frame payload has {} trailing bytes after kind {kind}",
            payload.len() - r.pos
        ));
    }
    Ok(frame)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("frame payload truncated".to_string());
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A u64 scalar (dimension or pointer) field that never drives an
    /// allocation by itself: only sanity-capped so the `usize`
    /// conversion and later arithmetic stay well-behaved.
    fn dim_field(&mut self, what: &str) -> Result<usize, String> {
        let v = self.u64()?;
        if v > MAX_PAYLOAD {
            return Err(format!("{what} of {v} is implausibly large"));
        }
        Ok(v as usize)
    }

    /// A u64 element-count field whose elements occupy `elem_bytes`
    /// each: rejected unless the *remaining* payload can actually hold
    /// that many elements, so a hostile count in a tiny frame is
    /// refused before any `Vec` is reserved.
    fn count_field(&mut self, what: &str, elem_bytes: usize) -> Result<usize, String> {
        let v = self.u64()?;
        let remaining = self.remaining() as u64;
        if v > remaining / elem_bytes as u64 {
            return Err(format!(
                "{what} of {v} cannot fit the frame's remaining {remaining} payload bytes"
            ));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> SparseFeatures {
        SparseFeatures::from_raw_parts(
            3,
            4,
            vec![0, 2, 2, 3],
            vec![0, 3, 1],
            vec![1.5, -0.25, f32::MIN_POSITIVE],
        )
        .unwrap()
    }

    #[test]
    fn all_frame_kinds_round_trip() {
        let frames = [
            Frame::Infer { id: u64::MAX, deadline_ms: 250, features: features() },
            Frame::Ok {
                id: 7,
                output: DenseMatrix::from_vec(2, 2, vec![0.1, -0.0, f32::NAN, 3.25]),
            },
            Frame::Err { id: 9, message: "backend error: späße".to_string() },
            Frame::Shed { id: 1 },
            Frame::Deadline { id: 2 },
            Frame::HealthCheck { id: 4 },
            Frame::Health {
                id: 4,
                state: HealthState::Degraded,
                detail: "2/3 shards down".to_string(),
            },
        ];
        for frame in &frames {
            let bytes = encode(frame);
            match decode(&bytes) {
                Decoded::Frame(decoded, trace, consumed) => {
                    assert_eq!(consumed, bytes.len());
                    assert_eq!(trace, 0, "plain encode stamps an unassigned trace id");
                    // NaN != NaN under PartialEq; compare bits instead.
                    match (&decoded, frame) {
                        (Frame::Ok { output: a, .. }, Frame::Ok { output: b, .. }) => {
                            let bits = |m: &DenseMatrix| {
                                m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                            };
                            assert_eq!(bits(a), bits(b));
                        }
                        _ => assert_eq!(&decoded, frame),
                    }
                }
                other => panic!("expected a frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_id_rides_the_header_round_trip() {
        let frame = Frame::Infer { id: 11, deadline_ms: 0, features: features() };
        let bytes = encode_traced(&frame, 0xDEAD_BEEF_CAFE_F00D);
        match decode(&bytes) {
            Decoded::Frame(decoded, trace, consumed) => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(trace, 0xDEAD_BEEF_CAFE_F00D);
                assert_eq!(decoded, frame);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The trace id is outside the checksum's coverage: restamping
        // it must not invalidate the frame.
        let mut restamped = bytes;
        restamped[24..32].copy_from_slice(&7u64.to_le_bytes());
        assert!(matches!(decode(&restamped), Decoded::Frame(_, 7, _)));
    }

    #[test]
    fn version_1_frames_are_cleanly_rejected() {
        // A byte-faithful version-1 frame: 24-byte header with no
        // trace field. The v2 decoder must refuse it with a version
        // message — not misparse the payload's first 8 bytes as a
        // trace id.
        let mut payload = vec![KIND_SHED];
        payload.extend_from_slice(&3u64.to_le_bytes());
        let mut v1 = Vec::new();
        v1.extend_from_slice(&WIRE_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        v1.extend_from_slice(&payload);
        assert!(
            matches!(decode(&v1), Decoded::Corrupt(msg) if msg.contains("version 1")),
            "a v1 frame must be rejected by version, not misparsed"
        );
    }

    #[test]
    fn partial_buffers_ask_for_more() {
        let bytes = encode(&Frame::Shed { id: 3 });
        for cut in 0..bytes.len() {
            assert!(matches!(decode(&bytes[..cut]), Decoded::NeedMore), "cut at {cut}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut bad_magic = encode(&Frame::Shed { id: 3 });
        bad_magic[0] = b'G'; // looks like the start of "GET ..."
        assert!(matches!(decode(&bad_magic), Decoded::Corrupt(_)));

        let mut bad_version = encode(&Frame::Shed { id: 3 });
        bad_version[4] = 0xFF;
        assert!(matches!(decode(&bad_version), Decoded::Corrupt(_)));

        let mut bad_payload = encode(&Frame::Err { id: 3, message: "x".to_string() });
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x01;
        assert!(
            matches!(decode(&bad_payload), Decoded::Corrupt(msg) if msg.contains("checksum")),
            "flipped payload bit must fail the checksum"
        );
    }

    /// Wraps a raw payload in a valid header (correct checksum), the
    /// way a hostile client would.
    fn raw_frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // trace id
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn hostile_length_fields_are_rejected_before_allocation() {
        let mut huge = encode(&Frame::Shed { id: 3 });
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode(&huge), Decoded::Corrupt(msg) if msg.contains("cap")));
    }

    #[test]
    fn hostile_count_fields_are_rejected_before_allocation() {
        // A tiny valid-checksum Ok frame claiming a 2^28×2^28 output:
        // each dimension passes the MAX_PAYLOAD scalar cap, but the
        // product must be refused against the (empty) remaining payload
        // before any Vec is reserved.
        let mut ok = vec![KIND_OK];
        ok.extend_from_slice(&1u64.to_le_bytes()); // id
        ok.extend_from_slice(&(1u64 << 28).to_le_bytes()); // rows
        ok.extend_from_slice(&(1u64 << 28).to_le_bytes()); // cols
        assert!(
            matches!(decode(&raw_frame(&ok)), Decoded::Corrupt(msg) if msg.contains("cannot fit")),
            "hostile Ok dimensions must be refused"
        );

        // An Infer frame claiming huge rows / nnz with no data behind
        // them: the counts must be bounded by the remaining bytes.
        for (rows, nnz) in [(1u64 << 28, 0u64), (0, 1 << 28)] {
            let mut infer = vec![KIND_INFER];
            infer.extend_from_slice(&1u64.to_le_bytes()); // id
            infer.extend_from_slice(&0u64.to_le_bytes()); // deadline
            infer.extend_from_slice(&rows.to_le_bytes());
            infer.extend_from_slice(&4u64.to_le_bytes()); // cols
            infer.extend_from_slice(&nnz.to_le_bytes());
            assert!(
                matches!(decode(&raw_frame(&infer)), Decoded::Corrupt(msg) if msg.contains("cannot fit")),
                "hostile Infer counts (rows {rows}, nnz {nnz}) must be refused"
            );
        }

        // An Err frame whose message length overruns the payload.
        let mut err = vec![KIND_ERR];
        err.extend_from_slice(&1u64.to_le_bytes()); // id
        err.extend_from_slice(&(1u64 << 20).to_le_bytes()); // message len
        err.push(b'x');
        assert!(matches!(
            decode(&raw_frame(&err)),
            Decoded::Corrupt(msg) if msg.contains("cannot fit")
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_an_error() {
        let mut payload = vec![KIND_SHED];
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.push(0xAB); // stray byte
        assert!(matches!(
            decode(&raw_frame(&payload)),
            Decoded::Corrupt(msg) if msg.contains("trailing")
        ));
    }
}
