//! `igcn-gateway`: the hermetic network serving edge.
//!
//! Everything below `igcn-serve` is a library type; this crate is the
//! piece that listens on a socket. One TCP listener serves **two wire
//! protocols**, sniffed from the first byte of each connection:
//!
//! * **HTTP/1.1** (`POST /v1/infer`, `GET /healthz`, `GET /stats`)
//!   with hand-rolled JSON bodies via `serde::json` — human-debuggable,
//!   `curl`-able, and still bit-exact (shortest-round-trip `f32`
//!   encoding);
//! * **length-prefixed binary** ([`wire`]) — the same
//!   magic/version/length/FNV-checksum framing conventions as
//!   `igcn-store` snapshots, raw IEEE-754 bits on the wire. Its magic
//!   starts with `0x89`, which no HTTP request can begin with.
//!
//! # Architecture
//!
//! ```text
//!            ┌────────────── io threads (IGCN_IO_THREADS) ──────────────┐
//! clients ──▶│ compat-mio poll loop: read, sniff, parse, write replies  │
//!            └──────────────┬────────────────────────────▲──────────────┘
//!                    admit / shed                  poll tickets
//!            ┌──────────────▼──────────────┐             │
//!            │ bounded admission queue     │             │
//!            └──────────────┬──────────────┘             │
//!                 dispatcher: deadline check             │
//!            ┌──────────────▼──────────────────────────────────────────┐
//!            │ igcn-serve ServingEngine (IGCN_WORKER_THREADS workers,  │
//!            │ micro-batching over any Accelerator)                    │
//!            └─────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Admission** is bounded and non-blocking: when the gateway queue
//!   is at capacity, or the EWMA-estimated wait exceeds
//!   [`GatewayConfig::max_estimated_wait`], the request is **shed**
//!   immediately (HTTP 429 / binary `Shed`) instead of queueing — the
//!   IO threads never block on a full system.
//! * **Deadlines cancel before dispatch**: the dispatcher re-checks
//!   each request's deadline at the moment it would hand it to the
//!   serving queue; an expired request is answered with HTTP 504 /
//!   binary `Deadline` *without ever reaching the backend*. Once
//!   dispatched, a request runs to completion (its response may arrive
//!   after the deadline — the caller decides what to do with it).
//! * **Connection buffers are bounded**: each connection's input and
//!   output buffer is capped at [`GatewayConfig::max_conn_buffer`].
//!   A peer that floods pipelined requests or stops draining
//!   responses has its socket reads suspended (TCP backpressure)
//!   until the buffers drain; a single request too large to ever fit
//!   the budget is rejected (HTTP 413 / binary `Err`) and the
//!   connection closed. One hostile or stalled client cannot grow
//!   gateway memory without bound.
//! * **Shutdown drains**: in-flight requests complete and their
//!   responses are flushed before the threads exit; only unparsed
//!   bytes are dropped.
//!
//! The IO side runs on the vendored `crates/compat/mio` event loop
//! (readiness by probing over `std::net` nonblocking sockets), so the
//! whole edge builds with zero network dependencies.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use igcn_core::accel::{Accelerator, InferenceRequest, InferenceResponse};
use igcn_serve::{QueueStats, ServeError, ServingConfig, ServingEngine, Ticket};
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token};
use serde::json::{obj, JsonValue};

mod client;
pub(crate) mod http;
pub mod wire;

pub use client::{BinaryClient, HttpClient, InferReply, RetryPolicy};
pub use wire::HealthState;

/// Configuration of the gateway front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// IO threads running poll loops (connections are spread across
    /// them round-robin).
    pub io_threads: usize,
    /// Bounded admission queue capacity; requests beyond it are shed.
    pub admission_capacity: usize,
    /// Estimated-wait shedding budget: when `EWMA service time ×
    /// pending requests / workers` exceeds this, new requests are shed
    /// even though the queue has space.
    pub max_estimated_wait: Duration,
    /// Per-connection buffer budget in bytes, applied separately to
    /// the input and the output buffer. A connection whose peer floods
    /// pipelined requests or stops draining responses is paused (its
    /// socket is no longer read, so TCP pushes back) once either
    /// buffer exceeds this; an incomplete request that can never fit
    /// is rejected and the connection closed. Must be at least the
    /// largest request a client may legally send.
    pub max_conn_buffer: usize,
    /// The serving tier behind the gateway (worker count, serving
    /// queue, micro-batch shape).
    pub serving: ServingConfig,
}

impl Default for GatewayConfig {
    /// One IO thread, a 128-deep admission queue, a 1 s estimated-wait
    /// budget, a connection buffer budget sized to one maximal request
    /// (body cap plus head slack), default `ServingConfig`.
    fn default() -> Self {
        GatewayConfig {
            io_threads: 1,
            admission_capacity: 128,
            max_estimated_wait: Duration::from_secs(1),
            max_conn_buffer: http::MAX_BODY + http::MAX_HEAD,
            serving: ServingConfig::default(),
        }
    }
}

impl GatewayConfig {
    /// Sets the IO thread count.
    ///
    /// # Panics
    ///
    /// Panics if `io_threads == 0`.
    pub fn with_io_threads(mut self, io_threads: usize) -> Self {
        assert!(io_threads > 0, "at least one IO thread is required");
        self.io_threads = io_threads;
        self
    }

    /// Sets the admission queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_admission_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        self.admission_capacity = capacity;
        self
    }

    /// Sets the estimated-wait shedding budget.
    pub fn with_max_estimated_wait(mut self, budget: Duration) -> Self {
        self.max_estimated_wait = budget;
        self
    }

    /// Sets the per-connection buffer budget.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn with_max_conn_buffer(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "connection buffer budget must be positive");
        self.max_conn_buffer = bytes;
        self
    }

    /// Replaces the serving-tier configuration.
    pub fn with_serving(mut self, serving: ServingConfig) -> Self {
        self.serving = serving;
        self
    }

    /// Defaults, overridden by the environment: `IGCN_IO_THREADS` sets
    /// the IO thread count and `IGCN_WORKER_THREADS` the serving worker
    /// count (both must parse as positive integers; anything else is
    /// ignored).
    pub fn from_env() -> Self {
        let mut cfg = GatewayConfig::default();
        if let Some(n) = env_usize("IGCN_IO_THREADS") {
            cfg.io_threads = n;
        }
        if let Some(n) = env_usize("IGCN_WORKER_THREADS") {
            cfg.serving.num_workers = n;
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|&n| n > 0)
}

/// One consistent snapshot of the gateway's counters plus the serving
/// tier's [`QueueStats`] (served on `GET /stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests handed to the serving tier (≤ admitted; the difference
    /// in terminal states is deadline expiries).
    pub dispatched: u64,
    /// Successful responses delivered.
    pub completed: u64,
    /// Requests that failed in the backend or serving tier.
    pub failed: u64,
    /// Requests shed at admission (queue full or estimated wait over
    /// budget). Always the sum of the three per-reason counters below.
    pub shed: u64,
    /// Sheds because the admission queue was at capacity.
    pub shed_queue_full: u64,
    /// Sheds because the estimated queue wait exceeded the budget.
    pub shed_estimated_wait: u64,
    /// Sheds because the gateway was draining or shutting down.
    pub shed_draining: u64,
    /// Requests admitted and not yet terminal (queued, dispatched, or
    /// awaiting response delivery).
    pub inflight: u64,
    /// Requests whose deadline expired before dispatch (never reached
    /// the backend).
    pub deadline_expired: u64,
    /// Malformed requests / corrupt frames (the connection is closed).
    pub protocol_errors: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests sitting in the admission queue right now.
    pub admission_depth: usize,
    /// The configured admission capacity.
    pub admission_capacity: usize,
    /// EWMA of dispatch-to-completion service time (queue wait
    /// excluded), microseconds.
    pub ewma_service_us: u64,
    /// The serving tier's queue counters.
    pub serving: QueueStats,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    dispatched: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Total sheds; kept as the exact sum of the three reason counters
    /// so existing consumers of `shed` see unchanged semantics.
    shed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_estimated_wait: AtomicU64,
    shed_draining: AtomicU64,
    deadline_expired: AtomicU64,
    protocol_errors: AtomicU64,
    connections: AtomicU64,
    /// Live gauge: admitted minus terminal (completed/failed/expired)
    /// minus abandoned (connection died before its response was built).
    inflight: AtomicI64,
}

impl Counters {
    fn shed(&self, reason: &AtomicU64) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        reason.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where one admitted request currently is.
enum ReplyState {
    /// In the admission queue, not yet dispatched.
    Queued,
    /// Handed to the serving tier; the ticket is polled by the IO loop.
    /// `span` is the open `dispatch` trace-tree span (inert for
    /// untraced requests); it travels with the ticket so it closes when
    /// the IO loop takes the response, covering the full service time.
    Dispatched {
        ticket: Ticket,
        dispatched_at: Instant,
        queue_wait: Duration,
        span: igcn_obs::trace::OpenSpan,
    },
    /// Terminal: the serving tier answered (or refused).
    Finished(Result<InferenceResponse, ServeError>),
    /// Terminal: the deadline expired before dispatch.
    DeadlineExpired,
}

struct RequestSlot {
    state: Mutex<ReplyState>,
}

/// A terminal outcome the IO loop turns into response bytes.
enum Resolution {
    /// `service` is the dispatch-to-completion time — pure service,
    /// no admission-queue wait — so the EWMA it feeds composes with
    /// the pending count in [`Inner::admit`] without double-counting
    /// queueing delay. `None` when the request never went through the
    /// dispatcher's happy path.
    Response {
        response: Box<InferenceResponse>,
        service: Option<Duration>,
        queue_wait: Option<Duration>,
        /// The `dispatch` trace-tree span, carried out of the slot so
        /// its drop (which takes the trace-store lock) runs outside the
        /// slot lock.
        dispatch_span: Option<igcn_obs::trace::OpenSpan>,
    },
    Failed(String, Option<igcn_obs::trace::OpenSpan>),
    DeadlineExpired,
}

/// Non-blocking: takes the slot's outcome if it is terminal (polling
/// the serving ticket along the way), leaves it in place otherwise.
fn resolve(slot: &RequestSlot) -> Option<Resolution> {
    // invariant: slot-state lock holders only assign enum values and
    // never run code that can panic, so the lock cannot be poisoned.
    let mut state = slot.state.lock().expect("slot lock");
    match std::mem::replace(&mut *state, ReplyState::Queued) {
        ReplyState::Queued => None,
        ReplyState::Dispatched { ticket, dispatched_at, queue_wait, span } => {
            match ticket.try_take() {
                Ok(Ok(response)) => Some(Resolution::Response {
                    response: Box::new(response),
                    service: Some(dispatched_at.elapsed()),
                    queue_wait: Some(queue_wait),
                    dispatch_span: Some(span),
                }),
                Ok(Err(e)) => Some(Resolution::Failed(e.to_string(), Some(span))),
                Err(ticket) => {
                    *state = ReplyState::Dispatched { ticket, dispatched_at, queue_wait, span };
                    None
                }
            }
        }
        ReplyState::Finished(Ok(response)) => Some(Resolution::Response {
            response: Box::new(response),
            service: None,
            queue_wait: None,
            dispatch_span: None,
        }),
        ReplyState::Finished(Err(e)) => Some(Resolution::Failed(e.to_string(), None)),
        ReplyState::DeadlineExpired => Some(Resolution::DeadlineExpired),
    }
}

struct Job {
    request: InferenceRequest,
    deadline: Option<Instant>,
    slot: Arc<RequestSlot>,
    admitted_at: Instant,
    /// The request's root trace-tree context (NONE when untraced); the
    /// dispatcher parents `queue_wait` and `dispatch` spans under it.
    root_ctx: igcn_obs::TraceCtx,
}

enum AdmitOutcome {
    Admitted(Arc<RequestSlot>),
    Shed,
}

struct Inner {
    backend_name: String,
    serving: ServingEngine,
    cfg: GatewayConfig,
    admission: Mutex<VecDeque<Job>>,
    admission_cv: Condvar,
    shutdown: AtomicBool,
    /// Drain mode ([`Gateway::begin_drain`]): health reports draining,
    /// new inference requests are shed, in-flight work still completes
    /// and `/healthz`+`/stats` still answer — the pre-shutdown window a
    /// load balancer needs to take the replica out of rotation.
    draining: AtomicBool,
    counters: Counters,
    /// EWMA of dispatch→completion service time, nanoseconds (0 = no
    /// sample yet). Queue wait is deliberately excluded: `admit`
    /// multiplies this by the pending depth, so a sample that already
    /// contained queueing delay would double-count it and over-shed.
    /// Plain store — a lost race only skews the estimate by one
    /// sample.
    ewma_service_ns: AtomicU64,
}

impl Inner {
    fn admit(
        &self,
        request: InferenceRequest,
        deadline: Option<Instant>,
        root_ctx: igcn_obs::TraceCtx,
    ) -> AdmitOutcome {
        // A draining (or shutting-down) gateway refuses new work the
        // same way it sheds: the client sees a retryable signal and
        // goes to another replica.
        if self.draining.load(Ordering::SeqCst) || self.shutdown.load(Ordering::SeqCst) {
            self.counters.shed(&self.counters.shed_draining);
            return AdmitOutcome::Shed;
        }
        // Estimated-wait shedding: how long would this request sit
        // behind everything already admitted?
        let ewma = self.ewma_service_ns.load(Ordering::Relaxed);
        let qs = self.serving.queue_stats();
        // invariant: admission-lock holders only touch the VecDeque and
        // plain arithmetic — no panicking code — so it is never poisoned.
        let mut queue = self.admission.lock().expect("admission lock");
        if queue.len() >= self.cfg.admission_capacity {
            drop(queue);
            self.counters.shed(&self.counters.shed_queue_full);
            return AdmitOutcome::Shed;
        }
        if ewma > 0 {
            let pending = queue.len() as u64 + qs.submitted.saturating_sub(qs.completed);
            let estimated_ns = ewma.saturating_mul(pending + 1) / qs.workers.max(1) as u64;
            if estimated_ns > self.cfg.max_estimated_wait.as_nanos() as u64 {
                drop(queue);
                self.counters.shed(&self.counters.shed_estimated_wait);
                return AdmitOutcome::Shed;
            }
        }
        let slot = Arc::new(RequestSlot { state: Mutex::new(ReplyState::Queued) });
        queue.push_back(Job {
            request,
            deadline,
            slot: Arc::clone(&slot),
            admitted_at: Instant::now(),
            root_ctx,
        });
        drop(queue);
        self.admission_cv.notify_one();
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.counters.inflight.fetch_add(1, Ordering::Relaxed);
        AdmitOutcome::Admitted(slot)
    }

    /// The live health model, folded from the lifecycle flag, the
    /// serving tier ([`igcn_serve::ServingEngine::health`], which
    /// itself folds in [`Accelerator::health`]) and shed pressure:
    ///
    /// * **draining** — [`Gateway::begin_drain`] was called (or
    ///   shutdown began): in-flight work finishes, new work is shed;
    /// * **degraded** — the backend is wedged or degraded (dead
    ///   shards), or the estimated queue wait exceeds the shedding
    ///   budget so new requests are being shed;
    /// * **ready** — serving normally.
    fn health(&self) -> (wire::HealthState, String) {
        if self.draining.load(Ordering::SeqCst) || self.shutdown.load(Ordering::SeqCst) {
            return (
                wire::HealthState::Draining,
                "draining: finishing in-flight requests, refusing new work".to_string(),
            );
        }
        if let igcn_core::BackendHealth::Degraded { detail } = self.serving.health() {
            return (wire::HealthState::Degraded, detail);
        }
        // Shed pressure: the same estimate `admit` sheds on. Sustained
        // over-budget wait means new requests are being refused even
        // though the backend itself is healthy.
        let ewma = self.ewma_service_ns.load(Ordering::Relaxed);
        if ewma > 0 {
            let qs = self.serving.queue_stats();
            // invariant: see admit() — the admission lock is never poisoned.
            let depth = self.admission.lock().expect("admission lock").len();
            let pending = depth as u64 + qs.submitted.saturating_sub(qs.completed);
            let estimated_ns = ewma.saturating_mul(pending + 1) / qs.workers.max(1) as u64;
            if estimated_ns > self.cfg.max_estimated_wait.as_nanos() as u64 {
                return (
                    wire::HealthState::Degraded,
                    format!(
                        "shedding: estimated queue wait {} ms exceeds the {} ms budget",
                        estimated_ns / 1_000_000,
                        self.cfg.max_estimated_wait.as_millis()
                    ),
                );
            }
        }
        (wire::HealthState::Ready, "serving".to_string())
    }

    fn record_service_sample(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos() as u64;
        let old = self.ewma_service_ns.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { (old * 7 + sample) / 8 };
        self.ewma_service_ns.store(new, Ordering::Relaxed);
    }

    fn stats(&self) -> GatewayStats {
        let c = &self.counters;
        GatewayStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            dispatched: c.dispatched.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            shed_queue_full: c.shed_queue_full.load(Ordering::Relaxed),
            shed_estimated_wait: c.shed_estimated_wait.load(Ordering::Relaxed),
            shed_draining: c.shed_draining.load(Ordering::Relaxed),
            inflight: c.inflight.load(Ordering::Relaxed).max(0) as u64,
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            connections: c.connections.load(Ordering::Relaxed),
            // invariant: see admit() — the admission lock is never poisoned.
            admission_depth: self.admission.lock().expect("admission lock").len(),
            admission_capacity: self.cfg.admission_capacity,
            ewma_service_us: self.ewma_service_ns.load(Ordering::Relaxed) / 1_000,
            serving: self.serving.queue_stats(),
        }
    }

    /// Per-component (per-shard, for a sharded fleet) backend health
    /// as JSON rows; empty for monolithic backends.
    fn components_json(&self) -> JsonValue {
        JsonValue::Array(
            self.serving
                .backend()
                .component_health()
                .into_iter()
                .map(|(component, health)| {
                    let (state, detail) = match health {
                        igcn_core::BackendHealth::Ready => ("ready", String::new()),
                        igcn_core::BackendHealth::Degraded { detail } => ("degraded", detail),
                    };
                    obj([
                        ("component", JsonValue::Str(component)),
                        ("state", JsonValue::Str(state.to_string())),
                        ("detail", JsonValue::Str(detail)),
                    ])
                })
                .collect(),
        )
    }

    /// Per-stage latency summaries from the process-global telemetry
    /// registry: one row per declared stage that has recorded samples.
    fn stages_json() -> JsonValue {
        let mut rows = Vec::new();
        for &stage in igcn_obs::stage::ALL {
            let snap = igcn_obs::stage_histogram(stage).snapshot();
            if snap.count() == 0 {
                continue;
            }
            rows.push((
                stage.to_string(),
                obj([
                    ("count", JsonValue::Uint(snap.count())),
                    ("p50_ns", JsonValue::Uint(snap.quantile(0.50))),
                    ("p90_ns", JsonValue::Uint(snap.quantile(0.90))),
                    ("p99_ns", JsonValue::Uint(snap.quantile(0.99))),
                    ("max_ns", JsonValue::Uint(snap.max)),
                ]),
            ));
        }
        JsonValue::Object(rows)
    }

    /// The Prometheus text exposition served on `GET /metrics`: the
    /// process-global registry (counters, gauges, stage summaries)
    /// followed by this gateway instance's own counters — instance
    /// counters stay per-[`Gateway`] (tests and multi-gateway
    /// processes rely on that), so they are rendered here rather than
    /// mirrored into the global registry.
    fn metrics_text(&self) -> String {
        let mut out = igcn_obs::render_prometheus();
        let s = self.stats();
        fn push_line(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
            out.push_str(&format!(
                "# HELP igcn_gateway_{name} {help}\n# TYPE igcn_gateway_{name} {kind}\nigcn_gateway_{name} {value}\n"
            ));
        }
        push_line(
            &mut out,
            "admitted_total",
            "Requests accepted into the admission queue.",
            "counter",
            s.admitted,
        );
        push_line(
            &mut out,
            "dispatched_total",
            "Requests handed to the serving tier.",
            "counter",
            s.dispatched,
        );
        push_line(
            &mut out,
            "completed_total",
            "Successful responses delivered.",
            "counter",
            s.completed,
        );
        push_line(
            &mut out,
            "failed_total",
            "Requests failed in the backend or serving tier.",
            "counter",
            s.failed,
        );
        push_line(&mut out, "shed_total", "Requests shed at admission.", "counter", s.shed);
        // The shed split by reason, one labelled family — the three
        // values always sum to shed_total.
        out.push_str(
            "# HELP igcn_gateway_shed_reason_total Requests shed at admission, by reason.\n\
             # TYPE igcn_gateway_shed_reason_total counter\n",
        );
        for (reason, value) in [
            ("queue_full", s.shed_queue_full),
            ("estimated_wait", s.shed_estimated_wait),
            ("draining", s.shed_draining),
        ] {
            out.push_str(&format!(
                "igcn_gateway_shed_reason_total{{reason=\"{reason}\"}} {value}\n"
            ));
        }
        push_line(
            &mut out,
            "deadline_expired_total",
            "Requests whose deadline expired before dispatch.",
            "counter",
            s.deadline_expired,
        );
        push_line(
            &mut out,
            "protocol_errors_total",
            "Malformed requests or corrupt frames.",
            "counter",
            s.protocol_errors,
        );
        push_line(
            &mut out,
            "connections_total",
            "Connections accepted since start.",
            "counter",
            s.connections,
        );
        push_line(
            &mut out,
            "admission_depth",
            "Requests in the admission queue right now.",
            "gauge",
            s.admission_depth as u64,
        );
        push_line(
            &mut out,
            "queue_depth",
            "Requests in the admission queue right now (alias of admission_depth).",
            "gauge",
            s.admission_depth as u64,
        );
        push_line(
            &mut out,
            "inflight",
            "Requests admitted and not yet terminal.",
            "gauge",
            s.inflight,
        );
        push_line(
            &mut out,
            "ewma_service_us",
            "EWMA of dispatch-to-completion service time.",
            "gauge",
            s.ewma_service_us,
        );
        push_line(
            &mut out,
            "serving_depth",
            "Serving-tier queue depth.",
            "gauge",
            s.serving.depth as u64,
        );
        out
    }

    fn stats_json(&self) -> JsonValue {
        let s = self.stats();
        obj([
            (
                "gateway",
                obj([
                    ("admitted", JsonValue::Uint(s.admitted)),
                    ("dispatched", JsonValue::Uint(s.dispatched)),
                    ("completed", JsonValue::Uint(s.completed)),
                    ("failed", JsonValue::Uint(s.failed)),
                    ("shed", JsonValue::Uint(s.shed)),
                    ("shed_queue_full", JsonValue::Uint(s.shed_queue_full)),
                    ("shed_estimated_wait", JsonValue::Uint(s.shed_estimated_wait)),
                    ("shed_draining", JsonValue::Uint(s.shed_draining)),
                    ("inflight", JsonValue::Uint(s.inflight)),
                    ("deadline_expired", JsonValue::Uint(s.deadline_expired)),
                    ("protocol_errors", JsonValue::Uint(s.protocol_errors)),
                    ("connections", JsonValue::Uint(s.connections)),
                    ("admission_depth", JsonValue::Uint(s.admission_depth as u64)),
                    ("admission_capacity", JsonValue::Uint(s.admission_capacity as u64)),
                    ("ewma_service_us", JsonValue::Uint(s.ewma_service_us)),
                    ("io_threads", JsonValue::Uint(self.cfg.io_threads as u64)),
                ]),
            ),
            (
                "serving",
                obj([
                    ("depth", JsonValue::Uint(s.serving.depth as u64)),
                    ("capacity", JsonValue::Uint(s.serving.capacity as u64)),
                    ("workers", JsonValue::Uint(s.serving.workers as u64)),
                    ("submitted", JsonValue::Uint(s.serving.submitted)),
                    ("completed", JsonValue::Uint(s.serving.completed)),
                    ("batches_executed", JsonValue::Uint(s.serving.batches_executed)),
                    ("shutting_down", JsonValue::Bool(s.serving.shutting_down)),
                ]),
            ),
            ("stages", Self::stages_json()),
            ("shards", self.components_json()),
            ("backend", JsonValue::Str(self.backend_name.clone())),
        ])
    }
}

/// The dispatcher: pops admitted jobs, enforces the deadline *at the
/// moment of dispatch*, and hands survivors to the serving tier
/// (blocking on a full serving queue — that backpressure is what makes
/// the admission queue's depth meaningful).
fn dispatcher_loop(inner: &Inner) {
    loop {
        let job = {
            // invariant: admission-lock holders never panic (see admit()),
            // so neither lock() nor the condvar wait() can see poison.
            let mut queue = inner.admission.lock().expect("admission lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.admission_cv.wait(queue).expect("admission lock");
            }
        };
        // How long the job sat in the admission queue, whatever its
        // fate — the queue_wait stage histogram feeds capacity
        // planning for shed tuning.
        let queue_wait = job.admitted_at.elapsed();
        let queue_wait_ns = queue_wait.as_nanos() as u64;
        igcn_obs::record_stage_ns(igcn_obs::stage::QUEUE_WAIT, queue_wait_ns);
        igcn_obs::trace::record_child_ns(job.root_ctx, igcn_obs::stage::QUEUE_WAIT, queue_wait_ns);
        // Cancellation before dispatch: an expired request never
        // reaches the serving queue or the backend.
        // invariant: slot-state lock holders never panic (see resolve()).
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            *job.slot.state.lock().expect("slot lock") = ReplyState::DeadlineExpired;
            inner.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // The dispatch tree span opens *before* submit so the engines
        // see their parent on the request; it closes when the IO loop
        // takes the response (full service time).
        let mut span = igcn_obs::trace::OpenSpan::child(job.root_ctx, igcn_obs::stage::DISPATCH);
        span.tag("backend", &inner.backend_name);
        let mut request = job.request;
        request.trace = span.ctx();
        match inner.serving.submit(request) {
            Ok(ticket) => {
                *job.slot.state.lock().expect("slot lock") = ReplyState::Dispatched {
                    ticket,
                    dispatched_at: Instant::now(),
                    queue_wait,
                    span,
                };
                inner.counters.dispatched.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                *job.slot.state.lock().expect("slot lock") = ReplyState::Finished(Err(e));
                // `span` drops here: the dispatch failed instantly and
                // the short span records that.
            }
        }
    }
}

const LISTENER: Token = Token(usize::MAX);
const TICK: Duration = Duration::from_millis(2);
const DRAIN_BUDGET: Duration = Duration::from_secs(10);
const READ_CHUNK: usize = 64 << 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    Unknown,
    Http,
    Binary,
}

struct InFlight {
    wire_id: u64,
    slot: Arc<RequestSlot>,
    keep_alive: bool,
    /// The request's end-to-end trace id (server-minted when the
    /// client sent none): echoed on the reply, attached to the flight
    /// recorder entry and any slow-request log line.
    trace: u64,
    /// The request's root trace-tree span. Held here so a connection
    /// that dies mid-request drops it, which finishes the trace as
    /// "aborted" instead of leaking an in-progress tree.
    root: igcn_obs::trace::RootSpan,
}

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    protocol: Protocol,
    in_flight: Vec<InFlight>,
    /// Close once the outbuf is flushed (protocol error or
    /// `Connection: close`).
    closing: bool,
    peer_closed: bool,
    /// Reads are suspended (deregistered from the poll) because a
    /// buffer is over [`GatewayConfig::max_conn_buffer`]; resumed once
    /// both drain back under budget.
    paused: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            protocol: Protocol::Unknown,
            in_flight: Vec::new(),
            closing: false,
            peer_closed: false,
            paused: false,
        }
    }

    /// Drains the socket into `inbuf`, stopping once the buffer is
    /// over `budget` bytes (the caller then pauses reads until it
    /// drains — unread bytes stay in the kernel buffer and TCP pushes
    /// back on the peer). Returns `false` on a fatal transport error
    /// (drop the connection).
    fn fill(&mut self, budget: usize) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        while self.inbuf.len() <= budget {
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return true;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Flushes `outbuf`. Returns `false` on a fatal transport error.
    fn flush(&mut self) -> bool {
        while !self.outbuf.is_empty() {
            match (&self.stream).write(&self.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    fn idle(&self) -> bool {
        self.in_flight.is_empty() && self.outbuf.is_empty()
    }
}

struct IoShared {
    inner: Arc<Inner>,
    /// Per-IO-thread handoff queues for accepted connections.
    inboxes: Vec<Mutex<Vec<TcpStream>>>,
}

#[allow(clippy::too_many_lines)] // one readable poll-loop, deliberately linear
fn io_loop(thread_idx: usize, mut listener: Option<TcpListener>, shared: Arc<IoShared>) {
    let inner = &shared.inner;
    // invariant: poll creation/registration fail only when the process
    // is out of file descriptors; an IO thread cannot run without its
    // poller, so it panics deliberately and shutdown surfaces the panic.
    let mut poll = Poll::new().expect("poll creation");
    let mut events = Events::with_capacity(64);
    if let Some(listener) = listener.as_mut() {
        poll.registry()
            .register(listener, LISTENER, Interest::READABLE)
            .expect("listener registers");
    }
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = 0usize;
    let mut next_target = 0usize;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = inner.shutdown.load(Ordering::SeqCst);
        if shutting && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_BUDGET);
        }

        // invariant: poll() on a live poller fails only on fd exhaustion
        // or EINTR (mio retries EINTR internally) — see above.
        poll.poll(&mut events, Some(TICK)).expect("poll");

        // Accept (thread 0 owns the listener) and spread connections
        // round-robin across the IO threads.
        if !shutting {
            if let Some(listener) = listener.as_mut() {
                if events.iter().any(|e| e.token() == LISTENER) {
                    loop {
                        match listener.accept() {
                            Ok((stream, _addr)) => {
                                inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                                let target = next_target % shared.inboxes.len();
                                next_target = next_target.wrapping_add(1);
                                if target == thread_idx {
                                    let mut conn = Conn::new(stream);
                                    // invariant: registering a fresh socket
                                    // fails only on fd exhaustion — see the
                                    // poller comment above.
                                    poll.registry()
                                        .register(
                                            &mut conn.stream,
                                            Token(next_token),
                                            Interest::READABLE,
                                        )
                                        .expect("conn registers");
                                    conns.insert(next_token, conn);
                                    next_token += 1;
                                } else {
                                    // invariant: inbox-lock holders only push
                                    // to / drain a Vec, so no poisoning.
                                    shared.inboxes[target].lock().expect("inbox lock").push(stream);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                }
            }
        }

        // Adopt connections handed over by the accepting thread.
        // invariant: inbox lock (Vec ops only) and socket registration
        // (fd exhaustion only) — both justified above.
        for stream in shared.inboxes[thread_idx].lock().expect("inbox lock").drain(..) {
            let mut conn = Conn::new(stream);
            poll.registry()
                .register(&mut conn.stream, Token(next_token), Interest::READABLE)
                .expect("conn registers");
            conns.insert(next_token, conn);
            next_token += 1;
        }

        // Read every connection the poll flagged.
        let mut dead: Vec<usize> = Vec::new();
        for event in &events {
            let Token(id) = event.token();
            if id == LISTENER.0 {
                continue;
            }
            if let Some(conn) = conns.get_mut(&id) {
                if !conn.fill(inner.cfg.max_conn_buffer) {
                    dead.push(id);
                }
            }
        }

        // Parse, admit, resolve and flush every connection each tick.
        let buf_cap = inner.cfg.max_conn_buffer;
        for (&id, conn) in conns.iter_mut() {
            if dead.contains(&id) {
                continue;
            }
            // Stop parsing (and therefore admitting) while the peer is
            // not draining responses: a write backlog over budget must
            // not keep growing from fresh pipelined requests.
            if !shutting && conn.outbuf.len() <= buf_cap {
                process_input(conn, inner);
            }
            build_responses(conn, inner);
            if !conn.flush() {
                dead.push(id);
                continue;
            }
            // An over-budget input buffer with nothing in flight and
            // nothing left to flush holds one incomplete request that
            // can never complete within the budget: reject it.
            if conn.inbuf.len() > buf_cap
                && conn.in_flight.is_empty()
                && conn.outbuf.is_empty()
                && !conn.closing
            {
                inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = if conn.protocol == Protocol::Binary {
                    wire::encode(&wire::Frame::Err {
                        id: 0,
                        message: format!("frame exceeds the {buf_cap}-byte connection buffer"),
                    })
                } else {
                    http::error_response(
                        413,
                        &format!("request exceeds the {buf_cap}-byte connection buffer"),
                        false,
                        0,
                    )
                };
                conn.outbuf.extend_from_slice(&reply);
                conn.closing = true;
                conn.inbuf.clear();
                if !conn.flush() {
                    dead.push(id);
                    continue;
                }
            }
            // Backpressure: suspend socket reads while either buffer
            // is over budget (the kernel buffer fills and TCP pushes
            // back on the peer); resume once both drain.
            let over = conn.inbuf.len() > buf_cap || conn.outbuf.len() > buf_cap;
            if over != conn.paused {
                if over {
                    let _ = poll.registry().deregister(&mut conn.stream);
                } else {
                    let _ =
                        poll.registry().register(&mut conn.stream, Token(id), Interest::READABLE);
                }
                conn.paused = over;
            }
            let finished = (conn.closing || conn.peer_closed) && conn.idle();
            let forced = shutting && conn.idle();
            if finished || forced {
                dead.push(id);
            }
        }

        for id in dead {
            if let Some(mut conn) = conns.remove(&id) {
                // Requests abandoned by a dying connection leave the
                // inflight gauge; dropping their `InFlight` entries
                // (below) finishes any trace trees as "aborted".
                inner.counters.inflight.fetch_sub(conn.in_flight.len() as i64, Ordering::Relaxed);
                let _ = poll.registry().deregister(&mut conn.stream);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }

        if shutting {
            let drained = conns.values().all(Conn::idle);
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (drained && conns.is_empty()) || expired {
                let leftover: i64 = conns.values().map(|c| c.in_flight.len() as i64).sum();
                inner.counters.inflight.fetch_sub(leftover, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Parses as many complete requests as the connection's input buffer
/// holds, admitting each (or shedding / failing it immediately).
fn process_input(conn: &mut Conn, inner: &Inner) {
    loop {
        if conn.closing {
            return;
        }
        if conn.protocol == Protocol::Unknown {
            match conn.inbuf.first() {
                None => return,
                Some(&first) => {
                    conn.protocol = if first == wire::WIRE_MAGIC[0] {
                        Protocol::Binary
                    } else {
                        Protocol::Http
                    };
                }
            }
        }
        match conn.protocol {
            Protocol::Http => {
                // HTTP/1.1 without pipelining: one request outstanding
                // per connection; later bytes wait in the buffer.
                if !conn.in_flight.is_empty() {
                    return;
                }
                // Decode is timed explicitly (not via a scoped `Span`)
                // because its duration is also replayed into the trace
                // tree retroactively — the root span only exists once
                // the request has parsed.
                let started = igcn_obs::enabled().then(Instant::now);
                match http::parse(&conn.inbuf) {
                    http::HttpParse::NeedMore => {
                        // An incomplete buffer is not a decode; the
                        // stage only measures requests that parsed.
                        return;
                    }
                    http::HttpParse::Request(request, consumed) => {
                        let decode_ns = started.map(|t| t.elapsed().as_nanos() as u64);
                        if let Some(ns) = decode_ns {
                            igcn_obs::record_stage_ns(igcn_obs::stage::GATEWAY_DECODE_HTTP, ns);
                        }
                        conn.inbuf.drain(..consumed);
                        handle_http_request(conn, inner, request, decode_ns);
                    }
                    http::HttpParse::Error { status, message } => {
                        inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.outbuf
                            .extend_from_slice(&http::error_response(status, &message, false, 0));
                        conn.closing = true;
                        conn.inbuf.clear();
                        return;
                    }
                }
            }
            Protocol::Binary => {
                let started = igcn_obs::enabled().then(Instant::now);
                match wire::decode(&conn.inbuf) {
                    wire::Decoded::NeedMore => {
                        return;
                    }
                    wire::Decoded::Frame(frame, trace, consumed) => {
                        let decode_ns = started.map(|t| t.elapsed().as_nanos() as u64);
                        if let Some(ns) = decode_ns {
                            igcn_obs::record_stage_ns(igcn_obs::stage::GATEWAY_DECODE_BINARY, ns);
                        }
                        conn.inbuf.drain(..consumed);
                        handle_frame(conn, inner, frame, trace, decode_ns);
                    }
                    wire::Decoded::Corrupt(message) => {
                        inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.outbuf
                            .extend_from_slice(&wire::encode(&wire::Frame::Err { id: 0, message }));
                        conn.closing = true;
                        conn.inbuf.clear();
                        return;
                    }
                }
            }
            Protocol::Unknown => unreachable!("sniffed above"),
        }
    }
}

/// A request's effective trace id: the client's, or a freshly minted
/// one when the client sent none (0).
fn effective_trace(trace: u64) -> u64 {
    if trace != 0 {
        trace
    } else {
        igcn_obs::next_trace_id()
    }
}

fn handle_http_request(
    conn: &mut Conn,
    inner: &Inner,
    request: http::HttpRequest,
    decode_ns: Option<u64>,
) {
    match request {
        http::HttpRequest::Healthz { keep_alive, trace } => {
            let trace = effective_trace(trace);
            // 200 only when ready: load balancers treat any non-2xx as
            // "take this replica out of rotation", which is exactly
            // what degraded and draining mean.
            let (state, detail) = inner.health();
            let status = if state == wire::HealthState::Ready { 200 } else { 503 };
            let body = obj([
                ("status", JsonValue::Str(state.label().to_string())),
                ("detail", JsonValue::Str(detail)),
                ("shards", inner.components_json()),
                ("backend", JsonValue::Str(inner.backend_name.clone())),
            ]);
            conn.outbuf.extend_from_slice(&http::response(status, &body, keep_alive, trace));
            conn.closing |= !keep_alive;
        }
        http::HttpRequest::Stats { keep_alive, trace } => {
            let trace = effective_trace(trace);
            conn.outbuf.extend_from_slice(&http::response(
                200,
                &inner.stats_json(),
                keep_alive,
                trace,
            ));
            conn.closing |= !keep_alive;
        }
        http::HttpRequest::Metrics { keep_alive, trace } => {
            let trace = effective_trace(trace);
            conn.outbuf.extend_from_slice(&http::raw_response(
                200,
                "text/plain; version=0.0.4",
                inner.metrics_text().as_bytes(),
                keep_alive,
                trace,
            ));
            conn.closing |= !keep_alive;
        }
        http::HttpRequest::Infer { id, deadline_ms, features, keep_alive, trace } => {
            let trace = effective_trace(trace);
            let mut root = igcn_obs::trace::root_span(trace, "request");
            root.tag("protocol", "http");
            root.tag("request_id", id);
            if let Some(ns) = decode_ns {
                igcn_obs::trace::record_child_ns(
                    root.ctx(),
                    igcn_obs::stage::GATEWAY_DECODE_HTTP,
                    ns,
                );
            }
            let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            let request = InferenceRequest::new(features).with_id(id);
            match inner.admit(request, deadline, root.ctx()) {
                AdmitOutcome::Admitted(slot) => {
                    conn.in_flight.push(InFlight { wire_id: id, slot, keep_alive, trace, root });
                }
                AdmitOutcome::Shed => {
                    root.finish("shed");
                    conn.outbuf.extend_from_slice(&http::error_response(
                        429,
                        "shed: gateway is at capacity, retry later",
                        keep_alive,
                        trace,
                    ));
                    conn.closing |= !keep_alive;
                }
            }
        }
        http::HttpRequest::Traces { keep_alive, trace } => {
            let trace = effective_trace(trace);
            conn.outbuf.extend_from_slice(&http::response(200, &traces_json(), keep_alive, trace));
            conn.closing |= !keep_alive;
        }
        http::HttpRequest::TraceById { id, keep_alive, trace } => {
            let trace = effective_trace(trace);
            match igcn_obs::trace::retained_trace(id) {
                Some(retained) => {
                    conn.outbuf.extend_from_slice(&http::raw_response(
                        200,
                        "application/json",
                        retained.to_chrome_json().as_bytes(),
                        keep_alive,
                        trace,
                    ));
                }
                None => {
                    conn.outbuf.extend_from_slice(&http::error_response(
                        404,
                        &format!("no retained trace {id:016x}"),
                        keep_alive,
                        trace,
                    ));
                }
            }
            conn.closing |= !keep_alive;
        }
        http::HttpRequest::DebugFlight { keep_alive, trace } => {
            let trace = effective_trace(trace);
            conn.outbuf.extend_from_slice(&http::response(200, &flight_json(), keep_alive, trace));
            conn.closing |= !keep_alive;
        }
    }
}

/// `GET /traces` body: a summary row per retained trace, newest last,
/// with the id formatted the way `/trace/{id}` accepts it back.
fn traces_json() -> JsonValue {
    let rows = igcn_obs::trace::retained_traces()
        .into_iter()
        .map(|t| {
            obj([
                ("trace_id", JsonValue::Str(format!("{:016x}", t.trace_id))),
                ("status", JsonValue::Str(t.status.to_string())),
                ("total_us", JsonValue::Uint(t.total_ns / 1_000)),
                ("spans", JsonValue::Uint(t.spans.len() as u64)),
                ("truncated_spans", JsonValue::Uint(t.truncated_spans)),
            ])
        })
        .collect();
    obj([
        ("retained", JsonValue::Array(rows)),
        ("retention", JsonValue::Uint(igcn_obs::trace::retention() as u64)),
        ("slow_threshold_ms", JsonValue::Uint(igcn_obs::trace::slow_threshold_ns() / 1_000_000)),
    ])
}

/// `GET /debug/flight` body: the flight recorder's ring, oldest first.
fn flight_json() -> JsonValue {
    let rows = igcn_obs::flight_entries()
        .into_iter()
        .map(|e| {
            let stages = e
                .stages
                .iter()
                .map(|&(name, ns)| (name.to_string(), JsonValue::Uint(ns / 1_000)))
                .collect::<Vec<_>>();
            obj([
                ("trace_id", JsonValue::Str(format!("{:016x}", e.trace_id))),
                ("request_id", JsonValue::Uint(e.request_id)),
                ("protocol", JsonValue::Str(e.protocol.to_string())),
                ("status", JsonValue::Str(e.status.to_string())),
                ("stages_us", JsonValue::Object(stages)),
            ])
        })
        .collect();
    obj([
        ("entries", JsonValue::Array(rows)),
        ("capacity", JsonValue::Uint(igcn_obs::FLIGHT_CAPACITY as u64)),
    ])
}

fn handle_frame(
    conn: &mut Conn,
    inner: &Inner,
    frame: wire::Frame,
    trace: u64,
    decode_ns: Option<u64>,
) {
    let trace = effective_trace(trace);
    match frame {
        wire::Frame::Infer { id, deadline_ms, features } => {
            let mut root = igcn_obs::trace::root_span(trace, "request");
            root.tag("protocol", "binary");
            root.tag("request_id", id);
            if let Some(ns) = decode_ns {
                igcn_obs::trace::record_child_ns(
                    root.ctx(),
                    igcn_obs::stage::GATEWAY_DECODE_BINARY,
                    ns,
                );
            }
            let deadline =
                (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
            let request = InferenceRequest::new(features).with_id(id);
            match inner.admit(request, deadline, root.ctx()) {
                AdmitOutcome::Admitted(slot) => {
                    conn.in_flight.push(InFlight {
                        wire_id: id,
                        slot,
                        keep_alive: true,
                        trace,
                        root,
                    });
                }
                AdmitOutcome::Shed => {
                    root.finish("shed");
                    conn.outbuf
                        .extend_from_slice(&wire::encode_traced(&wire::Frame::Shed { id }, trace));
                }
            }
        }
        wire::Frame::HealthCheck { id } => {
            let (state, mut detail) = inner.health();
            // Per-shard detail rides the aggregate string so the
            // binary Health frame reports the same component view as
            // the `/healthz` JSON body, with no frame layout change.
            let components = inner.serving.backend().component_health();
            if !components.is_empty() {
                detail.push_str("; shards: ");
                for (i, (name, health)) in components.iter().enumerate() {
                    if i > 0 {
                        detail.push_str(", ");
                    }
                    match health {
                        igcn_core::BackendHealth::Ready => {
                            detail.push_str(&format!("{name}=ready"));
                        }
                        igcn_core::BackendHealth::Degraded { detail: why } => {
                            detail.push_str(&format!("{name}=degraded({why})"));
                        }
                    }
                }
            }
            conn.outbuf.extend_from_slice(&wire::encode_traced(
                &wire::Frame::Health { id, state, detail },
                trace,
            ));
        }
        other => {
            // Clients may only send Infer and HealthCheck frames.
            inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let id = match other {
                wire::Frame::Ok { id, .. }
                | wire::Frame::Err { id, .. }
                | wire::Frame::Shed { id }
                | wire::Frame::Deadline { id }
                | wire::Frame::Health { id, .. } => id,
                wire::Frame::Infer { .. } | wire::Frame::HealthCheck { .. } => {
                    unreachable!("matched above")
                }
            };
            conn.outbuf.extend_from_slice(&wire::encode_traced(
                &wire::Frame::Err {
                    id,
                    message: "clients may only send Infer and HealthCheck frames".to_string(),
                },
                trace,
            ));
            conn.closing = true;
        }
    }
}

/// Requests whose dispatch-to-completion service time exceeds this get
/// a log line with their trace id — the hook for correlating a slow
/// request across clients, gateway and backend.
const SLOW_REQUEST: Duration = Duration::from_millis(500);

/// Records one finished request in the flight recorder (and the slow
/// log when over [`SLOW_REQUEST`]).
fn record_flight(
    entry: &InFlight,
    protocol: &'static str,
    status: &'static str,
    queue_wait: Option<Duration>,
    service: Option<Duration>,
) {
    let mut stages: Vec<(&'static str, u64)> = Vec::new();
    if let Some(wait) = queue_wait {
        stages.push((igcn_obs::stage::QUEUE_WAIT, wait.as_nanos() as u64));
    }
    if let Some(service) = service {
        stages.push((igcn_obs::stage::DISPATCH, service.as_nanos() as u64));
    }
    igcn_obs::flight_record(igcn_obs::FlightEntry {
        trace_id: entry.trace,
        request_id: entry.wire_id,
        protocol,
        status,
        stages,
    });
    if service.is_some_and(|s| s >= SLOW_REQUEST) {
        let ms = service.map(|s| s.as_millis()).unwrap_or(0) as u64;
        // The guard scopes the trace id so the structured line carries
        // a "trace" field correlating it with `GET /trace/{id}`.
        let _trace = igcn_log::with_trace(entry.trace);
        igcn_log::warn!(
            "igcn-gateway",
            "slow request",
            request_id = entry.wire_id,
            protocol = protocol,
            service_ms = ms,
        );
    }
}

/// Turns terminal request slots into response bytes (binary replies go
/// out in completion order; HTTP connections have one outstanding
/// request by construction).
fn build_responses(conn: &mut Conn, inner: &Inner) {
    let is_http = conn.protocol == Protocol::Http;
    let protocol = if is_http { "http" } else { "binary" };
    let encode_stage = if is_http {
        igcn_obs::stage::RESPONSE_ENCODE_HTTP
    } else {
        igcn_obs::stage::RESPONSE_ENCODE_BINARY
    };
    let mut i = 0;
    while i < conn.in_flight.len() {
        let Some(resolution) = resolve(&conn.in_flight[i].slot) else {
            i += 1;
            continue;
        };
        let entry = conn.in_flight.remove(i);
        inner.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        match resolution {
            Resolution::Response { response, service, queue_wait, dispatch_span } => {
                // Close the dispatch span now rather than at end of
                // arm: it should not absorb response encoding.
                drop(dispatch_span);
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                if let Some(service) = service {
                    inner.record_service_sample(service);
                    igcn_obs::record_stage_ns(igcn_obs::stage::DISPATCH, service.as_nanos() as u64);
                }
                record_flight(&entry, protocol, "ok", queue_wait, service);
                let started = igcn_obs::enabled().then(Instant::now);
                if is_http {
                    let body = http::infer_ok_body(response.id, &response.output);
                    conn.outbuf.extend_from_slice(&http::response(
                        200,
                        &body,
                        entry.keep_alive,
                        entry.trace,
                    ));
                } else {
                    conn.outbuf.extend_from_slice(&wire::encode_traced(
                        &wire::Frame::Ok { id: response.id, output: response.output },
                        entry.trace,
                    ));
                }
                if let Some(t) = started {
                    let ns = t.elapsed().as_nanos() as u64;
                    igcn_obs::record_stage_ns(encode_stage, ns);
                    igcn_obs::trace::record_child_ns(entry.root.ctx(), encode_stage, ns);
                }
                entry.root.finish("ok");
            }
            Resolution::Failed(message, dispatch_span) => {
                drop(dispatch_span);
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                record_flight(&entry, protocol, "failed", None, None);
                if is_http {
                    conn.outbuf.extend_from_slice(&http::error_response(
                        500,
                        &message,
                        entry.keep_alive,
                        entry.trace,
                    ));
                } else {
                    conn.outbuf.extend_from_slice(&wire::encode_traced(
                        &wire::Frame::Err { id: entry.wire_id, message },
                        entry.trace,
                    ));
                }
                entry.root.finish("failed");
            }
            Resolution::DeadlineExpired => {
                // Counted by the dispatcher, which is the only writer
                // of that state.
                record_flight(&entry, protocol, "deadline", None, None);
                if is_http {
                    conn.outbuf.extend_from_slice(&http::error_response(
                        504,
                        "deadline expired before dispatch",
                        entry.keep_alive,
                        entry.trace,
                    ));
                } else {
                    conn.outbuf.extend_from_slice(&wire::encode_traced(
                        &wire::Frame::Deadline { id: entry.wire_id },
                        entry.trace,
                    ));
                }
                entry.root.finish("deadline");
            }
        }
        if is_http && !entry.keep_alive {
            conn.closing = true;
        }
    }
}

/// A running gateway: the listener, its IO threads, the dispatcher and
/// the serving tier. Dropping the handle (or calling
/// [`Gateway::shutdown`]) drains gracefully.
pub struct Gateway {
    inner: Arc<Inner>,
    io_threads: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Gateway {
    /// Binds `addr` and starts serving `backend` (which must already be
    /// `prepare`d).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn serve<A: ToSocketAddrs>(
        backend: Arc<dyn Accelerator>,
        addr: A,
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        assert!(cfg.io_threads > 0, "at least one IO thread is required");
        assert!(cfg.admission_capacity > 0, "admission capacity must be positive");
        // A process that serves traffic wants its stage histograms and
        // flight recorder live; everything else (bare engines, batch
        // tools) keeps the ~1 ns disabled fast path unless it opts in.
        igcn_obs::set_enabled(true);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let backend_name = backend.name();
        let serving = ServingEngine::start(backend, cfg.serving);
        let inner = Arc::new(Inner {
            backend_name,
            serving,
            cfg,
            admission: Mutex::new(VecDeque::new()),
            admission_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            counters: Counters::default(),
            ewma_service_ns: AtomicU64::new(0),
        });
        let shared = Arc::new(IoShared {
            inner: Arc::clone(&inner),
            inboxes: (0..cfg.io_threads).map(|_| Mutex::new(Vec::new())).collect(),
        });
        // Spawn failures (hitting the OS thread limit) are reachable in
        // a loaded process, so they surface as `io::Error` rather than a
        // panic. On partial startup the shutdown flag makes any thread
        // that did spawn exit on its next tick.
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("igcn-gw-dispatch".to_string())
                .spawn(move || dispatcher_loop(&inner))?
        };
        let mut listener = Some(listener);
        let io_threads: io::Result<Vec<_>> = (0..cfg.io_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let listener = listener.take(); // thread 0 owns it
                std::thread::Builder::new()
                    .name(format!("igcn-gw-io-{i}"))
                    .spawn(move || io_loop(i, listener, shared))
            })
            .collect();
        let io_threads = match io_threads {
            Ok(threads) => threads,
            Err(e) => {
                inner.shutdown.store(true, Ordering::SeqCst);
                inner.admission_cv.notify_all();
                let _ = dispatcher.join();
                return Err(e);
            }
        };
        Ok(Gateway { inner, io_threads, dispatcher: Some(dispatcher), local_addr })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A consistent snapshot of the gateway and serving counters.
    pub fn stats(&self) -> GatewayStats {
        self.inner.stats()
    }

    /// The gateway's live health: ready, degraded (with why), or
    /// draining — the same model `/healthz` and the binary
    /// [`wire::Frame::Health`] reply report.
    pub fn health(&self) -> (HealthState, String) {
        self.inner.health()
    }

    /// Enters drain mode: health flips to draining (`/healthz` → 503),
    /// new inference requests are shed, but in-flight requests finish
    /// and their responses are flushed, and `/healthz` + `/stats` keep
    /// answering. Call [`Gateway::shutdown`] once the load balancer
    /// has stopped sending traffic.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting and parsing new requests,
    /// dispatch everything already admitted, flush every in-flight
    /// response, then join all threads and drain the serving tier.
    /// Also performed by `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.admission_cv.notify_all();
        // invariant: join() errs only if the thread panicked; repanicking
        // here deliberately propagates a gateway-thread crash to the
        // owner instead of swallowing it during shutdown.
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.join().expect("dispatcher panicked");
        }
        for handle in self.io_threads.drain(..) {
            handle.join().expect("io thread panicked");
        }
        // `self.inner` is dropped with the handle; the last reference
        // drops the ServingEngine, whose Drop drains and joins its
        // workers (the queue is already empty here).
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || !self.io_threads.is_empty() {
            self.shutdown_and_join();
        }
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.local_addr)
            .field("backend", &self.inner.backend_name)
            .field("cfg", &self.inner.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_core::IGcnEngine;
    use igcn_gnn::{GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::SparseFeatures;

    const N: usize = 150;
    const DIM: usize = 10;

    fn backend() -> Arc<dyn Accelerator> {
        let g = HubIslandConfig::new(N, 7).noise_fraction(0.02).generate(11);
        let mut engine = IGcnEngine::builder(g.graph).build().unwrap();
        let model = GnnModel::gcn(DIM, 8, 5);
        let weights = ModelWeights::glorot(&model, 2);
        engine.prepare(&model, &weights).unwrap();
        Arc::new(engine)
    }

    fn features(seed: u64) -> SparseFeatures {
        SparseFeatures::random(N, DIM, 0.3, seed)
    }

    #[test]
    fn both_protocols_round_trip_bit_identically() {
        let backend = backend();
        let gateway =
            Gateway::serve(Arc::clone(&backend), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let addr = gateway.local_addr();
        let direct = backend.infer(&InferenceRequest::new(features(3)).with_id(42)).unwrap();

        let mut http = HttpClient::connect(addr).unwrap();
        match http.infer(42, None, &features(3)).unwrap() {
            InferReply::Output { id, output } => {
                assert_eq!(id, 42);
                assert_eq!(output, direct.output, "HTTP output must be bit-identical");
            }
            other => panic!("expected output, got {other:?}"),
        }

        let mut binary = BinaryClient::connect(addr).unwrap();
        match binary.infer(43, None, &features(3)).unwrap() {
            InferReply::Output { id, output } => {
                assert_eq!(id, 43);
                assert_eq!(output, direct.output, "binary output must be bit-identical");
            }
            other => panic!("expected output, got {other:?}"),
        }

        let stats = gateway.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed, 0);
        gateway.shutdown();
    }

    #[test]
    fn healthz_and_stats_respond() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ready"));

        let _ = client.infer(1, None, &features(1)).unwrap();
        let (status, body) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        let doc = JsonValue::parse(&body).unwrap();
        let admitted = doc.get("gateway").and_then(|g| g.get("admitted")).and_then(|v| v.as_u64());
        assert_eq!(admitted, Some(1));
        gateway.shutdown();
    }

    #[test]
    fn trace_ids_propagate_end_to_end_on_both_protocols() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let addr = gateway.local_addr();

        // HTTP: a client-supplied trace id comes back verbatim in the
        // X-IGCN-Trace response header.
        let mut http = HttpClient::connect(addr).unwrap();
        let (reply, echoed) = http.infer_traced(1, None, &features(1), 0xFACE).unwrap();
        assert!(matches!(reply, InferReply::Output { .. }), "got {reply:?}");
        assert_eq!(echoed, 0xFACE, "HTTP must echo the client's trace id");
        // Without one, the gateway mints a nonzero id, fresh per request.
        let (_, t1) = http.infer_traced(2, None, &features(1), 0).unwrap();
        let (_, t2) = http.infer_traced(3, None, &features(1), 0).unwrap();
        assert_ne!(t1, 0, "the gateway must mint a trace id");
        assert_ne!(t2, 0);
        assert_ne!(t1, t2, "minted trace ids must be unique per request");

        // Binary: the same contract through the frame header field.
        let mut binary = BinaryClient::connect(addr).unwrap();
        let (reply, echoed) = binary.infer_traced(4, None, &features(1), 0xBEE5).unwrap();
        assert!(matches!(reply, InferReply::Output { .. }), "got {reply:?}");
        assert_eq!(echoed, 0xBEE5, "binary must echo the client's trace id");
        let (_, t3) = binary.infer_traced(5, None, &features(1), 0).unwrap();
        let (_, t4) = binary.infer_traced(6, None, &features(1), 0).unwrap();
        assert_ne!(t3, 0);
        assert_ne!(t4, 0);
        assert_ne!(t3, t4);

        // Error replies echo too: drain mode sheds deterministically,
        // and the shed reply must still carry the request's trace.
        gateway.begin_drain();
        let (reply, echoed) = http.infer_traced(7, None, &features(1), 0x7707).unwrap();
        assert_eq!(reply, InferReply::Shed);
        assert_eq!(echoed, 0x7707, "HTTP shed replies must echo the trace id");
        let (reply, echoed) = binary.infer_traced(8, None, &features(1), 0x8808).unwrap();
        assert_eq!(reply, InferReply::Shed);
        assert_eq!(echoed, 0x8808, "binary shed replies must echo the trace id");
        gateway.shutdown();
    }

    #[test]
    fn metrics_and_stats_expose_stage_telemetry() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
        let _ = client.infer(1, None, &features(2)).unwrap();

        let (status, body) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("# TYPE igcn_stage_ns summary"),
            "the global stage summary family must be exposed"
        );
        assert!(
            body.contains("igcn_gateway_admitted_total"),
            "gateway instance counters must be appended"
        );
        // Every non-comment line is `name[{labels}] value`.
        for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (_, value) = line.rsplit_once(' ').expect("metric lines end in a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable metric line {line:?}");
        }

        let (status, body) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        let doc = JsonValue::parse(&body).unwrap();
        let stages = doc.get("stages").expect("stats must report per-stage histograms");
        let queue_wait = stages
            .get(igcn_obs::stage::QUEUE_WAIT)
            .expect("the dispatcher records queue_wait for every dispatched request");
        assert!(queue_wait.get("count").and_then(|v| v.as_u64()).unwrap() >= 1);
        assert!(queue_wait.get("p99_ns").and_then(|v| v.as_u64()).is_some());
        assert!(doc.get("shards").is_some(), "stats must carry the per-shard health array");
        gateway.shutdown();
    }

    #[test]
    fn http_protocol_errors_close_with_4xx() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let mut stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
        stream.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap(); // server closes
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 404"), "got {text}");
        assert_eq!(gateway.stats().protocol_errors, 1);
        gateway.shutdown();
    }

    #[test]
    fn corrupt_binary_frames_close_with_err() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let mut stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
        let mut bad =
            wire::encode(&wire::Frame::Infer { id: 1, deadline_ms: 0, features: features(1) });
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // breaks the checksum
        stream.write_all(&bad).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        match wire::decode(&response) {
            wire::Decoded::Frame(wire::Frame::Err { message, .. }, _, _) => {
                assert!(message.contains("checksum"), "got {message}");
            }
            other => panic!("expected an Err frame, got {other:?}"),
        }
        assert_eq!(gateway.stats().protocol_errors, 1);
        gateway.shutdown();
    }

    /// Reads until one complete binary frame is buffered (tolerating a
    /// reset once the server has closed its side).
    fn read_one_frame(stream: &mut std::net::TcpStream) -> wire::Frame {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let wire::Decoded::Frame(frame, _, _) = wire::decode(&buf) {
                return frame;
            }
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => panic!("connection ended before a frame arrived"),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    #[test]
    fn oversized_incomplete_requests_are_rejected_not_buffered() {
        let cfg = GatewayConfig::default().with_max_conn_buffer(1024);
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", cfg).unwrap();

        // Binary: a frame header declaring a 100 kB payload that will
        // never fit the 1 kB budget, followed by enough bytes to cross
        // it — the server must answer with Err and close, not buffer.
        let mut stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&wire::WIRE_MAGIC);
        bytes.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&100_000u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum (frame never completes)
        bytes.resize(bytes.len() + 2048, 0);
        stream.write_all(&bytes).unwrap();
        match read_one_frame(&mut stream) {
            wire::Frame::Err { message, .. } => {
                assert!(message.contains("connection buffer"), "got {message}");
            }
            other => panic!("expected an Err frame, got {other:?}"),
        }

        // HTTP: same story, via Content-Length.
        let mut stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
        let mut bytes = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 100000\r\n\r\n".to_vec();
        bytes.resize(bytes.len() + 2048, b'x');
        stream.write_all(&bytes).unwrap();
        let mut response = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => response.extend_from_slice(&chunk[..n]),
            }
        }
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 413"), "got {text}");

        assert_eq!(gateway.stats().protocol_errors, 2);
        gateway.shutdown();
    }

    #[test]
    fn pipelined_flood_is_backpressured_within_the_buffer_budget() {
        const REQS: u64 = 20;
        let backend = backend();
        let cfg = GatewayConfig::default().with_max_conn_buffer(16 << 10);
        let gateway = Gateway::serve(Arc::clone(&backend), "127.0.0.1:0", cfg).unwrap();
        let direct = backend.infer(&InferenceRequest::new(features(5)).with_id(0)).unwrap();

        let stream = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
        let mut blob = Vec::new();
        for id in 0..REQS {
            blob.extend_from_slice(&wire::encode(&wire::Frame::Infer {
                id,
                deadline_ms: 0,
                features: features(5),
            }));
        }
        assert!(blob.len() > 16 << 10, "the flood must exceed the buffer budget");
        // Write from a second thread so the reply stream drains while
        // the flood is still being pushed (a single-threaded
        // write-then-read peer that never drains is exactly what the
        // budget defends against).
        let writer = {
            let mut stream = stream.try_clone().unwrap();
            std::thread::spawn(move || stream.write_all(&blob).unwrap())
        };
        let mut stream = stream;
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut got = std::collections::HashSet::new();
        while got.len() < REQS as usize {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed before all replies arrived");
            buf.extend_from_slice(&chunk[..n]);
            loop {
                match wire::decode(&buf) {
                    wire::Decoded::Frame(wire::Frame::Ok { id, output }, _, used) => {
                        assert_eq!(output, direct.output, "reply {id} must be bit-identical");
                        assert!(got.insert(id), "duplicate reply for id {id}");
                        buf.drain(..used);
                    }
                    wire::Decoded::Frame(other, _, _) => panic!("unexpected frame {other:?}"),
                    wire::Decoded::NeedMore => break,
                    wire::Decoded::Corrupt(msg) => panic!("corrupt reply stream: {msg}"),
                }
            }
        }
        writer.join().unwrap();
        assert_eq!(gateway.stats().completed, REQS);
        assert_eq!(gateway.stats().protocol_errors, 0);
        gateway.shutdown();
    }

    /// An accelerator that fails every request — a wedged backend as
    /// the gateway's serving tier sees it.
    struct Wedged {
        graph: Arc<igcn_graph::CsrGraph>,
    }

    impl Accelerator for Wedged {
        fn name(&self) -> String {
            "wedged".to_string()
        }
        fn graph(&self) -> &igcn_graph::CsrGraph {
            &self.graph
        }
        fn prepare(
            &mut self,
            _: &igcn_gnn::GnnModel,
            _: &igcn_gnn::ModelWeights,
        ) -> Result<(), igcn_core::CoreError> {
            Ok(())
        }
        fn infer(&self, _: &InferenceRequest) -> Result<InferenceResponse, igcn_core::CoreError> {
            Err(igcn_core::CoreError::BackendFailed {
                backend: "wedged".to_string(),
                detail: "simulated wedge".to_string(),
            })
        }
        fn report(
            &self,
            _: &InferenceRequest,
        ) -> Result<igcn_core::ExecReport, igcn_core::CoreError> {
            Ok(Default::default())
        }
    }

    #[test]
    fn health_model_reports_ready_degraded_and_draining_on_both_protocols() {
        let g = igcn_graph::CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
        let cfg = GatewayConfig::default().with_serving(
            ServingConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_max_wait(Duration::ZERO)
                .with_failure_threshold(1),
        );
        let gateway =
            Gateway::serve(Arc::new(Wedged { graph: Arc::new(g) }), "127.0.0.1:0", cfg).unwrap();
        let addr = gateway.local_addr();

        // Ready: /healthz answers 200 and the Health frame echoes it.
        let mut http = HttpClient::connect(addr).unwrap();
        let (status, body) = http.get("/healthz").unwrap();
        assert_eq!(status, 200);
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ready"));
        assert_eq!(http.health().unwrap().0, HealthState::Ready);
        let mut binary = BinaryClient::connect(addr).unwrap();
        assert_eq!(binary.health().unwrap().0, HealthState::Ready);
        assert_eq!(gateway.health().0, HealthState::Ready);

        // One failed micro-batch crosses the threshold of 1: degraded.
        match http.infer(1, None, &features(1)).unwrap() {
            InferReply::Error(message) => assert!(message.contains("wedged"), "got {message}"),
            other => panic!("expected an error from the wedged backend, got {other:?}"),
        }
        let (status, body) = http.get("/healthz").unwrap();
        assert_eq!(status, 503, "degraded must be non-2xx for load balancers");
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("degraded"));
        let (state, detail) = binary.health().unwrap();
        assert_eq!(state, HealthState::Degraded);
        assert!(detail.contains("wedged"), "detail: {detail}");

        // Draining trumps everything; infer requests are shed while
        // health and stats keep answering.
        gateway.begin_drain();
        let (state, _) = binary.health().unwrap();
        assert_eq!(state, HealthState::Draining);
        let (status, body) = http.get("/healthz").unwrap();
        assert_eq!(status, 503);
        let doc = JsonValue::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("draining"));
        assert_eq!(binary.infer(2, None, &features(1)).unwrap(), InferReply::Shed);
        assert_eq!(http.infer(3, None, &features(1)).unwrap(), InferReply::Shed);
        let (status, _) = http.get("/stats").unwrap();
        assert_eq!(status, 200, "stats must stay observable during a drain");
        gateway.shutdown();
    }

    #[test]
    fn shed_replies_are_retried_a_bounded_number_of_times() {
        let gateway = Gateway::serve(backend(), "127.0.0.1:0", GatewayConfig::default()).unwrap();
        let addr = gateway.local_addr();
        // Drain mode sheds every inference deterministically, so the
        // shed counter counts the client's attempts exactly.
        gateway.begin_drain();
        let policy = RetryPolicy::default()
            .with_max_retries(2)
            .with_base_delay(Duration::from_millis(1))
            .with_max_delay(Duration::from_millis(2))
            .with_seed(7);

        let mut binary = BinaryClient::connect(addr).unwrap();
        let reply = binary.infer_with_retry(1, None, &features(1), &policy).unwrap();
        assert_eq!(reply, InferReply::Shed, "budget exhausted: the final shed is returned");
        assert_eq!(gateway.stats().shed, 3, "max_retries=2 must mean exactly 3 attempts");

        let mut http = HttpClient::connect(addr).unwrap();
        let reply = http.infer_with_retry(2, None, &features(1), &policy).unwrap();
        assert_eq!(reply, InferReply::Shed);
        assert_eq!(gateway.stats().shed, 6);
        gateway.shutdown();
    }

    #[test]
    fn malformed_responses_are_never_retried() {
        use std::sync::atomic::AtomicUsize;
        // A fake "gateway" that answers every request with garbage.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let requests = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&requests);
        let server = std::thread::spawn(move || {
            // One HTTP client, then one binary client. Requests are
            // reassembled with the real parsers so a body split across
            // reads still counts as one request.
            for (garbage, is_http) in [
                (&b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nzzz"[..], true),
                // Longer than a frame header so the client sees the bad
                // magic instead of waiting for more header bytes.
                (&b"\x00\x01\x02garbage-not-a-wire-frame-at-all"[..], false),
            ] {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = Vec::new();
                let mut chunk = [0u8; 65536];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => break, // client gave up: no retry arrived
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                    loop {
                        let consumed = if is_http {
                            match http::parse(&buf) {
                                http::HttpParse::Request(_, consumed) => Some(consumed),
                                _ => None,
                            }
                        } else {
                            match wire::decode(&buf) {
                                wire::Decoded::Frame(_, _, consumed) => Some(consumed),
                                _ => None,
                            }
                        };
                        let Some(consumed) = consumed else { break };
                        buf.drain(..consumed);
                        counted.fetch_add(1, Ordering::SeqCst);
                        stream.write_all(garbage).unwrap();
                    }
                }
            }
        });
        let policy =
            RetryPolicy::default().with_max_retries(5).with_base_delay(Duration::from_millis(1));

        let mut http = HttpClient::connect(addr).unwrap();
        let err = http.infer_with_retry(1, None, &features(1), &policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        drop(http); // EOF tells the server this client sent everything it ever will
        let mut binary = BinaryClient::connect(addr).unwrap();
        let err = binary.infer_with_retry(2, None, &features(1), &policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        drop(binary);
        server.join().unwrap();
        assert_eq!(
            requests.load(Ordering::SeqCst),
            2,
            "one request per client call: malformed replies must not be retried"
        );
    }

    #[test]
    fn from_env_reads_thread_knobs() {
        // Serialised by being the only env test in this crate.
        std::env::set_var("IGCN_IO_THREADS", "3");
        std::env::set_var("IGCN_WORKER_THREADS", "5");
        let cfg = GatewayConfig::from_env();
        assert_eq!(cfg.io_threads, 3);
        assert_eq!(cfg.serving.num_workers, 5);
        std::env::set_var("IGCN_IO_THREADS", "zero");
        std::env::set_var("IGCN_WORKER_THREADS", "0");
        let cfg = GatewayConfig::from_env();
        assert_eq!(cfg.io_threads, 1, "unparseable values are ignored");
        assert_eq!(cfg.serving.num_workers, ServingConfig::default().num_workers);
        std::env::remove_var("IGCN_IO_THREADS");
        std::env::remove_var("IGCN_WORKER_THREADS");
    }

    #[test]
    fn multiple_io_threads_serve_concurrent_clients() {
        let backend = backend();
        let cfg = GatewayConfig::default().with_io_threads(2);
        let gateway = Gateway::serve(Arc::clone(&backend), "127.0.0.1:0", cfg).unwrap();
        let addr = gateway.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let backend = Arc::clone(&backend);
                std::thread::spawn(move || {
                    let seed = 20 + i;
                    let direct = backend
                        .infer(&InferenceRequest::new(features(seed)).with_id(seed))
                        .unwrap();
                    let mut client = if i % 2 == 0 {
                        let mut c = HttpClient::connect(addr).unwrap();
                        return match c.infer(seed, None, &features(seed)).unwrap() {
                            InferReply::Output { output, .. } => output == direct.output,
                            _ => false,
                        };
                    } else {
                        BinaryClient::connect(addr).unwrap()
                    };
                    match client.infer(seed, None, &features(seed)).unwrap() {
                        InferReply::Output { output, .. } => output == direct.output,
                        _ => false,
                    }
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().unwrap(), "a client saw a non-identical output");
        }
        assert_eq!(gateway.stats().completed, 4);
        gateway.shutdown();
    }
}
