//! Blocking clients for both gateway wire protocols.
//!
//! [`HttpClient`] speaks the JSON-over-HTTP/1.1 protocol and
//! [`BinaryClient`] the length-prefixed binary protocol; both keep one
//! connection alive across requests and run one request at a time
//! (send, then block for the reply). They exist so the integration
//! tests, the load generator and `examples/gateway_client.rs` all
//! exercise the exact bytes a real client would send.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use igcn_graph::SparseFeatures;
use igcn_linalg::DenseMatrix;
use serde::json::JsonValue;

use crate::http;
use crate::wire::{self, Frame};

/// The gateway's answer to one inference request, protocol-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum InferReply {
    /// Success: the echoed correlation id and the output matrix.
    Output {
        /// The request's correlation id.
        id: u64,
        /// Dense output, row-major — bit-identical to a direct
        /// `Accelerator::infer` on the served backend.
        output: DenseMatrix,
    },
    /// Load shed at admission (HTTP 429 / binary `Shed`): retry later.
    Shed,
    /// The deadline expired before dispatch (HTTP 504 / binary
    /// `Deadline`).
    DeadlineExceeded,
    /// The request failed (HTTP 4xx/5xx / binary `Err`).
    Error(String),
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// A blocking keep-alive client for the HTTP/1.1 protocol.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HttpClient { stream })
    }

    /// Runs one inference: `POST /v1/infer` and block for the reply.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses; application-level
    /// failures (shed, deadline, backend error) come back as
    /// [`InferReply`] variants instead.
    pub fn infer(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
    ) -> io::Result<InferReply> {
        self.stream.write_all(&http::infer_request_bytes(id, deadline_ms, features))?;
        let (status, body) = self.read_response()?;
        match status {
            200 => {
                let doc = JsonValue::parse(&body).map_err(|e| proto_err(e.to_string()))?;
                let (id, output) = http::infer_ok_from_json(&doc).map_err(proto_err)?;
                Ok(InferReply::Output { id, output })
            }
            429 => Ok(InferReply::Shed),
            504 => Ok(InferReply::DeadlineExceeded),
            _ => Ok(InferReply::Error(format!("HTTP {status}: {body}"))),
        }
    }

    /// Issues a `GET` (for `/healthz` and `/stats`) and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.stream.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&buf[..head_end])
                    .map_err(|_| proto_err("response head is not UTF-8"))?;
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| proto_err(format!("bad status line in {head:?}")))?;
                let content_length: usize = head
                    .split("\r\n")
                    .filter_map(|l| l.split_once(':'))
                    .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                    .and_then(|(_, v)| v.trim().parse().ok())
                    .unwrap_or(0);
                let body_start = head_end + 4;
                while buf.len() < body_start + content_length {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(proto_err("connection closed mid-body"));
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
                    .map_err(|_| proto_err("response body is not UTF-8"))?;
                return Ok((status, body));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(proto_err("connection closed before a full response head"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// A blocking keep-alive client for the binary protocol.
pub struct BinaryClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinaryClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinaryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(BinaryClient { stream, buf: Vec::new() })
    }

    /// Runs one inference: send an `Infer` frame, block for the reply
    /// frame.
    ///
    /// # Errors
    ///
    /// Transport failures and corrupt frames; application-level
    /// failures come back as [`InferReply`] variants.
    pub fn infer(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
    ) -> io::Result<InferReply> {
        let frame =
            Frame::Infer { id, deadline_ms: deadline_ms.unwrap_or(0), features: features.clone() };
        self.stream.write_all(&wire::encode(&frame))?;
        match self.read_frame()? {
            Frame::Ok { id, output } => Ok(InferReply::Output { id, output }),
            Frame::Err { message, .. } => Ok(InferReply::Error(message)),
            Frame::Shed { .. } => Ok(InferReply::Shed),
            Frame::Deadline { .. } => Ok(InferReply::DeadlineExceeded),
            Frame::Infer { .. } => Err(proto_err("server sent an Infer frame")),
        }
    }

    fn read_frame(&mut self) -> io::Result<Frame> {
        let mut chunk = [0u8; 8192];
        loop {
            match wire::decode(&self.buf) {
                wire::Decoded::Frame(frame, consumed) => {
                    self.buf.drain(..consumed);
                    return Ok(frame);
                }
                wire::Decoded::Corrupt(msg) => return Err(proto_err(msg)),
                wire::Decoded::NeedMore => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(proto_err("connection closed mid-frame"));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}
