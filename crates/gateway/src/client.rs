//! Blocking clients for both gateway wire protocols.
//!
//! [`HttpClient`] speaks the JSON-over-HTTP/1.1 protocol and
//! [`BinaryClient`] the length-prefixed binary protocol; both keep one
//! connection alive across requests and run one request at a time
//! (send, then block for the reply). They exist so the integration
//! tests, the load generator and `examples/gateway_client.rs` all
//! exercise the exact bytes a real client would send.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use igcn_graph::SparseFeatures;
use igcn_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::JsonValue;

use crate::http;
use crate::wire::{self, Frame, HealthState};

/// Bounded retry with exponential backoff and **seeded** jitter, for
/// the two transient client-visible failures: connect refused (the
/// gateway is restarting) and shed (HTTP 429 / binary `Shed` — the
/// gateway is momentarily over capacity and explicitly said "retry
/// later"). Nothing else is retried: a malformed response means the
/// peer is not a healthy gateway, and resending is how retry storms
/// corrupt incidents.
///
/// Attempt `k` (0-based) sleeps a uniformly jittered duration in
/// `[base·2ᵏ/2, base·2ᵏ]`, capped at [`RetryPolicy::max_delay`]. The
/// jitter is drawn from a generator seeded with `seed + k`, so a given
/// policy produces one fixed, reproducible delay schedule — chaos
/// campaigns and tests can assert on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff base: the first retry waits at most this long.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Jitter seed; equal seeds give equal delay schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries, 10 ms base, 500 ms cap, seed 0.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the backoff base delay.
    pub fn with_base_delay(mut self, base: Duration) -> Self {
        self.base_delay = base;
        self
    }

    /// Sets the backoff cap.
    pub fn with_max_delay(mut self, cap: Duration) -> Self {
        self.max_delay = cap;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff sleep before retry `attempt` (0-based): exponential
    /// with seeded jitter in `[half, full]`, capped at `max_delay`.
    /// Deterministic — calling this twice gives the same duration.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let exp =
            self.base_delay.saturating_mul(1u32 << attempt.min(20)).min(self.max_delay).as_nanos()
                as u64;
        if exp == 0 {
            return Duration::ZERO;
        }
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(u64::from(attempt)));
        Duration::from_nanos(rng.gen_range(exp / 2..=exp))
    }

    /// Whether a connect error is worth retrying (the gateway may be
    /// mid-restart) rather than a permanent condition.
    fn transient_connect(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::TimedOut
        )
    }
}

/// The gateway's answer to one inference request, protocol-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum InferReply {
    /// Success: the echoed correlation id and the output matrix.
    Output {
        /// The request's correlation id.
        id: u64,
        /// Dense output, row-major — bit-identical to a direct
        /// `Accelerator::infer` on the served backend.
        output: DenseMatrix,
    },
    /// Load shed at admission (HTTP 429 / binary `Shed`): retry later.
    Shed,
    /// The deadline expired before dispatch (HTTP 504 / binary
    /// `Deadline`).
    DeadlineExceeded,
    /// The request failed (HTTP 4xx/5xx / binary `Err`).
    Error(String),
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// A blocking keep-alive client for the HTTP/1.1 protocol.
pub struct HttpClient {
    stream: TcpStream,
}

impl HttpClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HttpClient { stream })
    }

    /// Connects with bounded, seeded-backoff retries on transient
    /// connect failures (refused/reset/aborted/timed out — the gateway
    /// may be mid-restart). Permanent errors are returned immediately.
    ///
    /// # Errors
    ///
    /// The last connect error once the retry budget is exhausted.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: &RetryPolicy,
    ) -> io::Result<HttpClient> {
        retry_connect(policy, || TcpStream::connect(&addr)).map(|stream| {
            stream.set_nodelay(true).ok();
            HttpClient { stream }
        })
    }

    /// Runs one inference: `POST /v1/infer` and block for the reply.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses; application-level
    /// failures (shed, deadline, backend error) come back as
    /// [`InferReply`] variants instead.
    pub fn infer(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
    ) -> io::Result<InferReply> {
        self.infer_traced(id, deadline_ms, features, 0).map(|(reply, _)| reply)
    }

    /// As [`HttpClient::infer`], sending `trace` as the `X-IGCN-Trace`
    /// request header (0 = let the gateway mint one) and returning the
    /// trace id echoed on the response alongside the reply.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::infer`].
    pub fn infer_traced(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
        trace: u64,
    ) -> io::Result<(InferReply, u64)> {
        self.stream.write_all(&http::infer_request_bytes(id, deadline_ms, features, trace))?;
        let (status, body, echoed) = self.read_response_traced()?;
        let reply = match status {
            200 => {
                let doc = JsonValue::parse(&body).map_err(|e| proto_err(e.to_string()))?;
                let (id, output) = http::infer_ok_from_json(&doc).map_err(proto_err)?;
                InferReply::Output { id, output }
            }
            429 => InferReply::Shed,
            504 => InferReply::DeadlineExceeded,
            _ => InferReply::Error(format!("HTTP {status}: {body}")),
        };
        Ok((reply, echoed))
    }

    /// Runs one inference, retrying **only** shed replies (HTTP 429)
    /// under `policy` — the gateway explicitly said "retry later".
    /// Transport errors and malformed responses are returned
    /// immediately (never retried), as are all other reply kinds. If
    /// every attempt is shed, the final [`InferReply::Shed`] is
    /// returned.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::infer`].
    pub fn infer_with_retry(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
        policy: &RetryPolicy,
    ) -> io::Result<InferReply> {
        for attempt in 0..policy.max_retries {
            match self.infer(id, deadline_ms, features)? {
                InferReply::Shed => std::thread::sleep(policy.backoff_delay(attempt)),
                reply => return Ok(reply),
            }
        }
        self.infer(id, deadline_ms, features)
    }

    /// Queries `/healthz` and parses the health model reply.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn health(&mut self) -> io::Result<(HealthState, String)> {
        let (_status, body) = self.get("/healthz")?;
        let doc = JsonValue::parse(&body).map_err(|e| proto_err(e.to_string()))?;
        let label = doc
            .get("status")
            .and_then(|v| v.as_str())
            .ok_or_else(|| proto_err("healthz body missing \"status\""))?;
        let state = match label {
            "ready" => HealthState::Ready,
            "degraded" => HealthState::Degraded,
            "draining" => HealthState::Draining,
            other => return Err(proto_err(format!("unknown health status {other:?}"))),
        };
        let detail = doc.get("detail").and_then(|v| v.as_str()).unwrap_or_default().to_string();
        Ok((state, detail))
    }

    /// Issues a `GET` (for `/healthz` and `/stats`) and returns
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.stream.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())?;
        self.read_response_traced().map(|(status, body, _)| (status, body))
    }

    /// As [`HttpClient::get`], sending `trace` as the `X-IGCN-Trace`
    /// header and returning the echoed trace id with the reply.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed responses.
    pub fn get_traced(&mut self, path: &str, trace: u64) -> io::Result<(u16, String, u64)> {
        let trace_line =
            if trace != 0 { format!("X-IGCN-Trace: {trace:016x}\r\n") } else { String::new() };
        self.stream.write_all(format!("GET {path} HTTP/1.1\r\n{trace_line}\r\n").as_bytes())?;
        self.read_response_traced()
    }

    fn read_response_traced(&mut self) -> io::Result<(u16, String, u64)> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&buf[..head_end])
                    .map_err(|_| proto_err("response head is not UTF-8"))?;
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| proto_err(format!("bad status line in {head:?}")))?;
                let content_length: usize = head
                    .split("\r\n")
                    .filter_map(|l| l.split_once(':'))
                    .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                    .and_then(|(_, v)| v.trim().parse().ok())
                    .unwrap_or(0);
                let trace: u64 = head
                    .split("\r\n")
                    .filter_map(|l| l.split_once(':'))
                    .find(|(k, _)| k.eq_ignore_ascii_case("x-igcn-trace"))
                    .and_then(|(_, v)| u64::from_str_radix(v.trim(), 16).ok())
                    .unwrap_or(0);
                let body_start = head_end + 4;
                while buf.len() < body_start + content_length {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(proto_err("connection closed mid-body"));
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
                    .map_err(|_| proto_err("response body is not UTF-8"))?;
                return Ok((status, body, trace));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(proto_err("connection closed before a full response head"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// A blocking keep-alive client for the binary protocol.
pub struct BinaryClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinaryClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BinaryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(BinaryClient { stream, buf: Vec::new() })
    }

    /// Connects with bounded, seeded-backoff retries on transient
    /// connect failures (see [`HttpClient::connect_with_retry`]).
    ///
    /// # Errors
    ///
    /// The last connect error once the retry budget is exhausted.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: &RetryPolicy,
    ) -> io::Result<BinaryClient> {
        retry_connect(policy, || TcpStream::connect(&addr)).map(|stream| {
            stream.set_nodelay(true).ok();
            BinaryClient { stream, buf: Vec::new() }
        })
    }

    /// Runs one inference: send an `Infer` frame, block for the reply
    /// frame.
    ///
    /// # Errors
    ///
    /// Transport failures and corrupt frames; application-level
    /// failures come back as [`InferReply`] variants.
    pub fn infer(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
    ) -> io::Result<InferReply> {
        self.infer_traced(id, deadline_ms, features, 0).map(|(reply, _)| reply)
    }

    /// As [`BinaryClient::infer`], stamping `trace` into the request
    /// frame's header trace field (0 = let the gateway mint one) and
    /// returning the trace id echoed on the reply frame.
    ///
    /// # Errors
    ///
    /// As [`BinaryClient::infer`].
    pub fn infer_traced(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
        trace: u64,
    ) -> io::Result<(InferReply, u64)> {
        let frame =
            Frame::Infer { id, deadline_ms: deadline_ms.unwrap_or(0), features: features.clone() };
        self.stream.write_all(&wire::encode_traced(&frame, trace))?;
        let (frame, echoed) = self.read_frame_traced()?;
        let reply = match frame {
            Frame::Ok { id, output } => InferReply::Output { id, output },
            Frame::Err { message, .. } => InferReply::Error(message),
            Frame::Shed { .. } => InferReply::Shed,
            Frame::Deadline { .. } => InferReply::DeadlineExceeded,
            other @ (Frame::Infer { .. } | Frame::HealthCheck { .. } | Frame::Health { .. }) => {
                return Err(proto_err(format!("unexpected reply frame {other:?}")))
            }
        };
        Ok((reply, echoed))
    }

    /// Runs one inference, retrying **only** `Shed` frames under
    /// `policy`. Transport errors and corrupt frames are returned
    /// immediately — never retried. If every attempt is shed, the
    /// final [`InferReply::Shed`] is returned.
    ///
    /// # Errors
    ///
    /// As [`BinaryClient::infer`].
    pub fn infer_with_retry(
        &mut self,
        id: u64,
        deadline_ms: Option<u64>,
        features: &SparseFeatures,
        policy: &RetryPolicy,
    ) -> io::Result<InferReply> {
        for attempt in 0..policy.max_retries {
            match self.infer(id, deadline_ms, features)? {
                InferReply::Shed => std::thread::sleep(policy.backoff_delay(attempt)),
                reply => return Ok(reply),
            }
        }
        self.infer(id, deadline_ms, features)
    }

    /// Sends a `HealthCheck` frame and blocks for the `Health` reply.
    ///
    /// # Errors
    ///
    /// Transport failures, corrupt frames, and unexpected frame kinds.
    pub fn health(&mut self) -> io::Result<(HealthState, String)> {
        self.stream.write_all(&wire::encode(&Frame::HealthCheck { id: 0 }))?;
        match self.read_frame_traced()?.0 {
            Frame::Health { state, detail, .. } => Ok((state, detail)),
            other => Err(proto_err(format!("expected a Health frame, got {other:?}"))),
        }
    }

    fn read_frame_traced(&mut self) -> io::Result<(Frame, u64)> {
        let mut chunk = [0u8; 8192];
        loop {
            match wire::decode(&self.buf) {
                wire::Decoded::Frame(frame, trace, consumed) => {
                    self.buf.drain(..consumed);
                    return Ok((frame, trace));
                }
                wire::Decoded::Corrupt(msg) => return Err(proto_err(msg)),
                wire::Decoded::NeedMore => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(proto_err("connection closed mid-frame"));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}

/// Shared connect-retry loop: transient errors consume retry budget
/// with backoff, anything else returns immediately.
fn retry_connect(
    policy: &RetryPolicy,
    mut connect: impl FnMut() -> io::Result<TcpStream>,
) -> io::Result<TcpStream> {
    for attempt in 0..policy.max_retries {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(e) if RetryPolicy::transient_connect(&e) => {
                std::thread::sleep(policy.backoff_delay(attempt));
            }
            Err(e) => return Err(e),
        }
    }
    connect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_schedule_is_seeded_deterministic_and_capped() {
        let policy = RetryPolicy::default()
            .with_base_delay(Duration::from_millis(8))
            .with_max_delay(Duration::from_millis(100))
            .with_seed(42);
        let schedule: Vec<Duration> = (0..8).map(|k| policy.backoff_delay(k)).collect();
        // Same seed → the exact same schedule, call after call.
        let again: Vec<Duration> = (0..8).map(|k| policy.backoff_delay(k)).collect();
        assert_eq!(schedule, again);
        // A different seed jitters differently somewhere.
        let other = policy.with_seed(43);
        assert!((0..8).any(|k| other.backoff_delay(k) != schedule[k as usize]));
        for (k, &d) in schedule.iter().enumerate() {
            // Jitter stays within [half, full] of the capped exponential.
            let exp =
                Duration::from_millis(8).saturating_mul(1 << k).min(Duration::from_millis(100));
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {k}: {d:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
        // Exponential growth with [half, full] jitter never decreases:
        // the cap freezes it at [50, 100] ms.
        for w in schedule.windows(2) {
            assert!(w[1] >= w[0] / 2, "schedule collapsed: {schedule:?}");
        }
    }

    #[test]
    fn connect_refused_is_retried_a_bounded_number_of_times() {
        // Grab a port the kernel just freed: connecting to it is
        // refused (nothing listens), which is the transient class.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let attempts = Arc::new(AtomicUsize::new(0));
        let policy = RetryPolicy::default()
            .with_max_retries(2)
            .with_base_delay(Duration::from_millis(1))
            .with_max_delay(Duration::from_millis(2));
        let counted = Arc::clone(&attempts);
        let result = retry_connect(&policy, move || {
            counted.fetch_add(1, Ordering::SeqCst);
            TcpStream::connect(addr)
        });
        assert!(result.is_err(), "nothing listens on {addr}");
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            3,
            "max_retries=2 must mean exactly 3 attempts"
        );

        // The public entry points go through the same loop.
        assert!(HttpClient::connect_with_retry(addr, &policy).is_err());
        assert!(BinaryClient::connect_with_retry(addr, &policy).is_err());
    }

    #[test]
    fn permanent_connect_errors_are_not_retried() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&attempts);
        let policy = RetryPolicy::default().with_base_delay(Duration::from_millis(1));
        let result = retry_connect(&policy, move || {
            counted.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        });
        assert!(result.is_err());
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "permission denied must not be retried");
    }
}
