//! Minimal HTTP/1.1: request parsing, response building, and the JSON
//! body codecs shared by the server and [`crate::HttpClient`].
//!
//! Only what the gateway serves is implemented: `POST /v1/infer`,
//! `GET /healthz`, `GET /stats`, keep-alive, and `Content-Length`
//! bodies (`Transfer-Encoding` is rejected with 501 rather than
//! misread, no `Expect: 100-continue`). Bodies are
//! JSON via the workspace's hand-rolled `serde::json`, whose `f32`
//! encoding is shortest-round-trip and therefore **bit-exact**: an
//! output matrix fetched over HTTP equals a direct
//! `Accelerator::infer` bit for bit.
//!
//! # Request body grammar (`POST /v1/infer`)
//!
//! ```json
//! {
//!   "id": 7,
//!   "deadline_ms": 250,
//!   "features": {"rows": N, "cols": D, "row_ptr": [...], "col_idx": [...], "values": [...]}
//! }
//! ```
//!
//! `id` and `deadline_ms` are optional (default 0 / no deadline). The
//! success response is `{"id": 7, "output": {"rows": N, "cols": K,
//! "data": [...]}}` with `data` row-major.

use igcn_graph::SparseFeatures;
use igcn_linalg::DenseMatrix;
use serde::json::{self, obj, JsonValue};

/// Largest accepted request head (request line + headers).
pub(crate) const MAX_HEAD: usize = 16 << 10;

/// Largest accepted request body.
pub(crate) const MAX_BODY: usize = 256 << 20;

/// The request/response header carrying the end-to-end trace id, as
/// 16 lowercase hex digits. Requests without it (or with an
/// unparseable value) get a server-minted id; responses always echo
/// the request's effective id.
pub(crate) const TRACE_HEADER: &str = "X-IGCN-Trace";

/// One parsed gateway request. `trace` is the request's
/// [`TRACE_HEADER`] value (0 when absent — the server mints one).
#[derive(Debug)]
pub(crate) enum HttpRequest {
    /// `POST /v1/infer`.
    Infer {
        id: u64,
        deadline_ms: Option<u64>,
        features: SparseFeatures,
        keep_alive: bool,
        trace: u64,
    },
    /// `GET /healthz`.
    Healthz { keep_alive: bool, trace: u64 },
    /// `GET /stats`.
    Stats { keep_alive: bool, trace: u64 },
    /// `GET /metrics` (Prometheus text exposition).
    Metrics { keep_alive: bool, trace: u64 },
    /// `GET /traces` (retained trace-tree summaries).
    Traces { keep_alive: bool, trace: u64 },
    /// `GET /trace/{id}` (one retained tree as Chrome trace-event
    /// JSON). `id` is the requested trace id, parsed from the path.
    TraceById { id: u64, keep_alive: bool, trace: u64 },
    /// `GET /debug/flight` (the flight-recorder ring as JSON).
    DebugFlight { keep_alive: bool, trace: u64 },
}

/// Outcome of trying to parse one request off the front of a buffer.
#[derive(Debug)]
pub(crate) enum HttpParse {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// One complete request and how many bytes it consumed.
    Request(HttpRequest, usize),
    /// A malformed or unsupported request: respond with `status` and
    /// close the connection (framing may be lost).
    Error { status: u16, message: String },
}

pub(crate) fn parse(buf: &[u8]) -> HttpParse {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None if buf.len() > MAX_HEAD => {
            return HttpParse::Error {
                status: 431,
                message: format!("request head exceeds {MAX_HEAD} bytes"),
            }
        }
        None => return HttpParse::NeedMore,
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(head) => head,
        Err(_) => {
            return HttpParse::Error { status: 400, message: "request head is not UTF-8".into() }
        }
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
        _ => {
            return HttpParse::Error {
                status: 400,
                message: format!("malformed request line {request_line:?}"),
            }
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return HttpParse::Error { status: 505, message: format!("unsupported version {version}") };
    }
    let mut content_length: Option<usize> = None;
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version == "HTTP/1.1";
    let mut trace = 0u64;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case(TRACE_HEADER) {
            // A malformed trace id is not worth failing the request
            // over: treat it as absent and mint a fresh one.
            trace = u64::from_str_radix(value, 16).unwrap_or(0);
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            // No chunked decoding here: treating a chunked body as
            // Content-Length 0 would desync the connection, so refuse
            // outright.
            return HttpParse::Error {
                status: 501,
                message: format!("Transfer-Encoding {value:?} is not supported"),
            };
        }
        if name.eq_ignore_ascii_case("content-length") {
            let n = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return HttpParse::Error {
                        status: 400,
                        message: format!("bad Content-Length {value:?}"),
                    }
                }
            };
            if content_length.is_some_and(|prev| prev != n) {
                return HttpParse::Error {
                    status: 400,
                    message: "conflicting duplicate Content-Length headers".to_string(),
                };
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close")
                && (keep_alive || value.eq_ignore_ascii_case("keep-alive"));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return HttpParse::Error {
            status: 413,
            message: format!("request body of {content_length} bytes exceeds {MAX_BODY}"),
        };
    }
    let body_end = head_end + 4 + content_length;
    if buf.len() < body_end {
        return HttpParse::NeedMore;
    }
    let body = &buf[head_end + 4..body_end];
    match (method, path) {
        ("GET", "/healthz") => {
            HttpParse::Request(HttpRequest::Healthz { keep_alive, trace }, body_end)
        }
        ("GET", "/stats") => HttpParse::Request(HttpRequest::Stats { keep_alive, trace }, body_end),
        ("GET", "/metrics") => {
            HttpParse::Request(HttpRequest::Metrics { keep_alive, trace }, body_end)
        }
        ("GET", "/traces") => {
            HttpParse::Request(HttpRequest::Traces { keep_alive, trace }, body_end)
        }
        ("GET", "/debug/flight") => {
            HttpParse::Request(HttpRequest::DebugFlight { keep_alive, trace }, body_end)
        }
        ("GET", p) if p.starts_with("/trace/") => match parse_trace_id(&p["/trace/".len()..]) {
            Some(id) => {
                HttpParse::Request(HttpRequest::TraceById { id, keep_alive, trace }, body_end)
            }
            None => HttpParse::Error {
                status: 400,
                message: format!("bad trace id in {p:?} (want 1-16 hex digits)"),
            },
        },
        ("POST", "/v1/infer") => match parse_infer_body(body) {
            Ok((id, deadline_ms, features)) => HttpParse::Request(
                HttpRequest::Infer { id, deadline_ms, features, keep_alive, trace },
                body_end,
            ),
            Err(message) => HttpParse::Error { status: 400, message },
        },
        ("POST" | "GET", _) => {
            HttpParse::Error { status: 404, message: format!("no route for {method} {path}") }
        }
        _ => HttpParse::Error { status: 405, message: format!("method {method} not allowed") },
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).take(MAX_HEAD).position(|w| w == b"\r\n\r\n")
}

/// Parses the `{id}` path segment of `GET /trace/{id}`: the same 16
/// lowercase hex digits the [`TRACE_HEADER`] carries (shorter forms
/// and an optional `0x` prefix accepted). Zero is never a valid id.
fn parse_trace_id(segment: &str) -> Option<u64> {
    let digits = segment.strip_prefix("0x").unwrap_or(segment);
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    match u64::from_str_radix(digits, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

fn parse_infer_body(body: &[u8]) -> Result<(u64, Option<u64>, SparseFeatures), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let id = match doc.get("id") {
        Some(v) => v.as_u64().ok_or("\"id\" must be a u64")?,
        None => 0,
    };
    let deadline_ms = match doc.get("deadline_ms") {
        Some(v) => Some(v.as_u64().ok_or("\"deadline_ms\" must be a u64")?),
        None => None,
    };
    let features = features_from_json(doc.get("features").ok_or("missing \"features\" object")?)?;
    Ok((id, deadline_ms, features))
}

/// Encodes a sparse feature matrix as the `"features"` object.
pub(crate) fn features_to_json(features: &SparseFeatures) -> JsonValue {
    obj([
        ("rows", JsonValue::Uint(features.num_rows() as u64)),
        ("cols", JsonValue::Uint(features.num_cols() as u64)),
        ("row_ptr", json::usize_array(features.row_ptr())),
        ("col_idx", json::u32_array(features.col_idx())),
        ("values", json::f32_array(features.values())),
    ])
}

/// Decodes (and validates) a `"features"` object.
pub(crate) fn features_from_json(v: &JsonValue) -> Result<SparseFeatures, String> {
    let field = |k: &str| v.get(k).ok_or_else(|| format!("features missing {k:?}"));
    let rows = field("rows")?.as_u64().ok_or("features rows must be a u64")? as usize;
    let cols = field("cols")?.as_u64().ok_or("features cols must be a u64")? as usize;
    let row_ptr = json::parse_usize_array(field("row_ptr")?)
        .ok_or("features row_ptr must be an array of u64")?;
    let col_idx = json::parse_u32_array(field("col_idx")?)
        .ok_or("features col_idx must be an array of u32")?;
    let values = json::parse_f32_array(field("values")?)
        .ok_or("features values must be an array of numbers")?;
    SparseFeatures::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|e| format!("invalid sparse features: {e}"))
}

/// Encodes a success body: `{"id": ..., "output": {...}}`.
pub(crate) fn infer_ok_body(id: u64, output: &DenseMatrix) -> JsonValue {
    obj([
        ("id", JsonValue::Uint(id)),
        (
            "output",
            obj([
                ("rows", JsonValue::Uint(output.rows() as u64)),
                ("cols", JsonValue::Uint(output.cols() as u64)),
                ("data", json::f32_array(output.as_slice())),
            ]),
        ),
    ])
}

/// Decodes a success body back into `(id, output)`.
pub(crate) fn infer_ok_from_json(doc: &JsonValue) -> Result<(u64, DenseMatrix), String> {
    let id = doc.get("id").and_then(|v| v.as_u64()).ok_or("response missing \"id\"")?;
    let out = doc.get("output").ok_or("response missing \"output\"")?;
    let rows = out.get("rows").and_then(|v| v.as_u64()).ok_or("output missing \"rows\"")? as usize;
    let cols = out.get("cols").and_then(|v| v.as_u64()).ok_or("output missing \"cols\"")? as usize;
    let data = json::parse_f32_array(out.get("data").ok_or("output missing \"data\"")?)
        .ok_or("output data must be an array of numbers")?;
    if data.len() != rows * cols {
        return Err(format!("output data has {} entries, expected {rows}×{cols}", data.len()));
    }
    Ok((id, DenseMatrix::from_vec(rows, cols, data)))
}

/// Builds the full infer request bytes the client sends (also used by
/// tests to drive the server byte-for-byte). A nonzero `trace` rides
/// along as the [`TRACE_HEADER`].
pub(crate) fn infer_request_bytes(
    id: u64,
    deadline_ms: Option<u64>,
    features: &SparseFeatures,
    trace: u64,
) -> Vec<u8> {
    let mut fields = vec![("id".to_string(), JsonValue::Uint(id))];
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms".to_string(), JsonValue::Uint(ms)));
    }
    fields.push(("features".to_string(), features_to_json(features)));
    let body = JsonValue::Object(fields).encode();
    let trace_line =
        if trace != 0 { format!("{TRACE_HEADER}: {trace:016x}\r\n") } else { String::new() };
    let mut out = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Type: application/json\r\n{trace_line}Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Builds a complete response with a JSON body, echoing a nonzero
/// `trace` as the [`TRACE_HEADER`].
pub(crate) fn response(status: u16, body: &JsonValue, keep_alive: bool, trace: u64) -> Vec<u8> {
    raw_response(status, "application/json", body.encode().as_bytes(), keep_alive, trace)
}

/// Builds a complete response with an arbitrary body (used by
/// `GET /metrics`, whose Prometheus exposition is `text/plain`).
pub(crate) fn raw_response(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    trace: u64,
) -> Vec<u8> {
    let trace_line =
        if trace != 0 { format!("{TRACE_HEADER}: {trace:016x}\r\n") } else { String::new() };
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n{trace_line}Content-Length: {}\r\nConnection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Builds an error response (`{"error": message}`).
pub(crate) fn error_response(status: u16, message: &str, keep_alive: bool, trace: u64) -> Vec<u8> {
    response(status, &obj([("error", JsonValue::Str(message.to_string()))]), keep_alive, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> SparseFeatures {
        SparseFeatures::from_raw_parts(
            2,
            3,
            vec![0, 1, 3],
            vec![2, 0, 1],
            vec![0.5, -1.25, f32::MIN_POSITIVE],
        )
        .unwrap()
    }

    #[test]
    fn infer_request_round_trips_bit_exactly() {
        let bytes = infer_request_bytes(42, Some(250), &features(), 0xABCD);
        match parse(&bytes) {
            HttpParse::Request(
                HttpRequest::Infer { id, deadline_ms, features: parsed, keep_alive, trace },
                consumed,
            ) => {
                assert_eq!(consumed, bytes.len());
                assert_eq!(id, 42);
                assert_eq!(deadline_ms, Some(250));
                assert!(keep_alive);
                assert_eq!(trace, 0xABCD, "the trace header must survive the round trip");
                assert_eq!(parsed, features());
                let bits: Vec<u32> = parsed.values().iter().map(|v| v.to_bits()).collect();
                let expected: Vec<u32> = features().values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, expected);
            }
            other => panic!("expected an infer request, got {other:?}"),
        }
    }

    #[test]
    fn partial_requests_ask_for_more() {
        let bytes = infer_request_bytes(1, None, &features(), 0);
        assert!(matches!(parse(&bytes[..10]), HttpParse::NeedMore));
        assert!(matches!(parse(&bytes[..bytes.len() - 1]), HttpParse::NeedMore));
    }

    #[test]
    fn get_routes_parse() {
        let req = b"GET /healthz HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Healthz { keep_alive: true, trace: 0 }, n) if n == req.len()
        ));
        let req = b"GET /stats HTTP/1.0\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Stats { keep_alive: false, .. }, _)
        ));
        let req = b"GET /metrics HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Metrics { keep_alive: true, .. }, _)
        ));
        let req = b"GET /traces HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Traces { keep_alive: true, .. }, _)
        ));
        let req = b"GET /debug/flight HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::DebugFlight { keep_alive: true, .. }, _)
        ));
    }

    #[test]
    fn trace_by_id_route_parses_hex_ids() {
        let req = b"GET /trace/00000000deadbeef HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::TraceById { id: 0xDEAD_BEEF, .. }, _)
        ));
        // Short and 0x-prefixed forms are accepted.
        assert!(matches!(
            parse(b"GET /trace/ff HTTP/1.1\r\n\r\n"),
            HttpParse::Request(HttpRequest::TraceById { id: 0xFF, .. }, _)
        ));
        assert!(matches!(
            parse(b"GET /trace/0xff HTTP/1.1\r\n\r\n"),
            HttpParse::Request(HttpRequest::TraceById { id: 0xFF, .. }, _)
        ));
        // Zero, empty, non-hex and oversized ids are 400s, not routes.
        for bad in ["0", "", "not-hex", "11112222333344445"] {
            let req = format!("GET /trace/{bad} HTTP/1.1\r\n\r\n");
            assert!(
                matches!(parse(req.as_bytes()), HttpParse::Error { status: 400, .. }),
                "id {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Healthz { keep_alive: false, .. }, _)
        ));
    }

    #[test]
    fn trace_header_parses_and_survives_garbage() {
        let req = b"GET /healthz HTTP/1.1\r\nX-IGCN-Trace: 00000000deadbeef\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Healthz { trace: 0xDEAD_BEEF, .. }, _)
        ));
        // Case-insensitive header name, like every other header.
        let req = b"GET /healthz HTTP/1.1\r\nx-igcn-trace: ff\r\n\r\n";
        assert!(matches!(
            parse(req),
            HttpParse::Request(HttpRequest::Healthz { trace: 0xFF, .. }, _)
        ));
        // An unparseable value means "mint one", never a 400.
        let req = b"GET /healthz HTTP/1.1\r\nX-IGCN-Trace: not-hex\r\n\r\n";
        assert!(matches!(parse(req), HttpParse::Request(HttpRequest::Healthz { trace: 0, .. }, _)));
    }

    #[test]
    fn responses_echo_the_trace_header() {
        let bytes = response(200, &obj([("ok", JsonValue::Bool(true))]), true, 0x1234_5678_9ABC);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("X-IGCN-Trace: 0000123456789abc\r\n"), "got {text}");
        // Trace 0 (unassigned) omits the header rather than lying.
        let bytes = response(200, &obj([("ok", JsonValue::Bool(true))]), true, 0);
        assert!(!String::from_utf8(bytes).unwrap().contains("X-IGCN-Trace"));
    }

    #[test]
    fn bad_routes_and_bodies_are_rejected() {
        assert!(matches!(
            parse(b"GET /nope HTTP/1.1\r\n\r\n"),
            HttpParse::Error { status: 404, .. }
        ));
        assert!(matches!(
            parse(b"DELETE /v1/infer HTTP/1.1\r\n\r\n"),
            HttpParse::Error { status: 405, .. }
        ));
        assert!(matches!(
            parse(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"),
            HttpParse::Error { status: 400, .. }
        ));
        assert!(matches!(
            parse(b"GET /healthz HTTP/0.9\r\n\r\n"),
            HttpParse::Error { status: 505, .. }
        ));
    }

    #[test]
    fn transfer_encoding_is_rejected_not_misread() {
        // A chunked body must not be silently treated as length 0 (its
        // bytes would desync into the next request line).
        let req =
            b"POST /v1/infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n";
        assert!(matches!(parse(req), HttpParse::Error { status: 501, .. }));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let req = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}x";
        assert!(matches!(parse(&req[..]), HttpParse::Error { status: 400, .. }));
        // Agreeing duplicates stay accepted (lenient).
        let req = b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 0\r\n\r\n";
        assert!(matches!(parse(&req[..]), HttpParse::Request(HttpRequest::Healthz { .. }, _)));
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let req = format!("POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(req.as_bytes()), HttpParse::Error { status: 413, .. }));
    }

    #[test]
    fn ok_body_round_trips_bit_exactly() {
        let output = DenseMatrix::from_vec(2, 2, vec![1.0e-30, -0.0, 123.456, f32::MAX]);
        let body = infer_ok_body(9, &output);
        let parsed = JsonValue::parse(&body.encode()).unwrap();
        let (id, decoded) = infer_ok_from_json(&parsed).unwrap();
        assert_eq!(id, 9);
        let bits = |m: &DenseMatrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded), bits(&output));
    }
}
