//! Named stand-ins for the five evaluation datasets.
//!
//! The paper evaluates on Cora, Citeseer, Pubmed, NELL and Reddit. The raw
//! datasets are not redistributable here, so each dataset is represented by
//! a [`DatasetSpec`] carrying the published statistics and a deterministic
//! synthetic generator ([`Dataset::generate`]) that matches them:
//!
//! | dataset  | nodes   | undirected edges | features | classes | community strength |
//! |----------|---------|------------------|----------|---------|--------------------|
//! | Cora     | 2 708   | 5 429            | 1 433    | 7       | strong             |
//! | Citeseer | 3 327   | 4 732            | 3 703    | 6       | strong             |
//! | Pubmed   | 19 717  | 44 338           | 500      | 3       | strong             |
//! | NELL     | 65 755  | 266 144          | 61 278   | 186     | very strong        |
//! | Reddit   | 232 965 | ~57 M            | 602      | 41      | weak               |
//!
//! "Community strength" is expressed through the noise fraction of the
//! hub-and-island generator: NELL has the most significant component
//! structure (per §4.2 of the paper), Reddit the least (per §4.6, which is
//! why I-GCN's speedup over AWB-GCN is smallest there).

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::features::SparseFeatures;
use crate::generate::HubIslandConfig;

/// The five evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Cora citation network (2,708 papers).
    Cora,
    /// Citeseer citation network (3,327 papers).
    Citeseer,
    /// Pubmed citation network (19,717 papers).
    Pubmed,
    /// NELL knowledge graph (65,755 entities), extremely sparse.
    Nell,
    /// Reddit post-to-post graph (232,965 posts), dense and weakly
    /// clustered.
    Reddit,
}

impl Dataset {
    /// All five datasets in the order the paper reports them.
    pub const ALL: [Dataset; 5] =
        [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed, Dataset::Nell, Dataset::Reddit];

    /// The published statistics and generator parameters for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Cora => DatasetSpec {
                name: "Cora",
                num_nodes: 2_708,
                num_undirected_edges: 5_429,
                feature_dim: 1_433,
                feature_density: 0.0127,
                num_classes: 7,
                hidden_algo: 16,
                noise_fraction: 0.02,
                island_size_range: (4, 7),
                island_density: 0.95,
                hub_fraction: 0.02,
            },
            Dataset::Citeseer => DatasetSpec {
                name: "Citeseer",
                num_nodes: 3_327,
                num_undirected_edges: 4_732,
                feature_dim: 3_703,
                feature_density: 0.0085,
                num_classes: 6,
                hidden_algo: 16,
                noise_fraction: 0.02,
                island_size_range: (3, 5),
                island_density: 0.95,
                hub_fraction: 0.015,
            },
            Dataset::Pubmed => DatasetSpec {
                name: "Pubmed",
                num_nodes: 19_717,
                num_undirected_edges: 44_338,
                feature_dim: 500,
                feature_density: 0.10,
                num_classes: 3,
                hidden_algo: 16,
                noise_fraction: 0.015,
                island_size_range: (4, 8),
                island_density: 0.9,
                hub_fraction: 0.02,
            },
            Dataset::Nell => DatasetSpec {
                name: "NELL",
                num_nodes: 65_755,
                num_undirected_edges: 266_144,
                feature_dim: 61_278,
                feature_density: 0.0001,
                num_classes: 186,
                hidden_algo: 64,
                noise_fraction: 0.005,
                island_size_range: (4, 10),
                island_density: 0.95,
                hub_fraction: 0.02,
            },
            Dataset::Reddit => DatasetSpec {
                name: "Reddit",
                num_nodes: 232_965,
                num_undirected_edges: 57_307_946,
                feature_dim: 602,
                feature_density: 1.0,
                num_classes: 41,
                hidden_algo: 128,
                noise_fraction: 0.0002,
                island_size_range: (6, 12),
                island_density: 0.85,
                hub_fraction: 0.05,
            },
        }
    }

    /// Short lowercase identifier (e.g. `"cora"`).
    pub fn id(self) -> &'static str {
        match self {
            Dataset::Cora => "cora",
            Dataset::Citeseer => "citeseer",
            Dataset::Pubmed => "pubmed",
            Dataset::Nell => "nell",
            Dataset::Reddit => "reddit",
        }
    }

    /// Generates the full-scale synthetic stand-in (deterministic per
    /// `seed`). Prefer [`Dataset::generate_scaled`] for Reddit in tests and
    /// CI — the full Reddit stand-in has ~57 M edges.
    pub fn generate(self, seed: u64) -> GraphData {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the stand-in at `scale` (0 < scale ≤ 1) of the published
    /// node count, preserving average degree, feature width/sparsity and
    /// community strength.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate_scaled(self, scale: f64, seed: u64) -> GraphData {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let spec = self.spec();
        let num_nodes = ((spec.num_nodes as f64 * scale).round() as usize).max(16);
        let avg_degree = 2.0 * spec.num_undirected_edges as f64 / spec.num_nodes as f64;
        let num_hubs = ((num_nodes as f64 * spec.hub_fraction).round() as usize).max(2);
        let (lo, hi) = spec.island_size_range;
        // Island interiors are small and dense (the shared-neighbor
        // structure redundancy removal feeds on); the hub attachment
        // budget absorbs the remaining degree toward the published
        // average.
        let generated = HubIslandConfig::new(num_nodes, num_hubs)
            .island_size_range(lo, hi)
            .island_density(spec.island_density)
            .noise_fraction(spec.noise_fraction)
            .target_avg_degree(avg_degree)
            .generate(seed ^ hash_name(spec.name));
        let features = SparseFeatures::random(
            num_nodes,
            spec.feature_dim,
            spec.feature_density,
            seed.wrapping_add(0x5EED) ^ hash_name(spec.name),
        );
        GraphData { dataset: self, scale, graph: generated.graph, features, spec }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each dataset draws from an independent stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Published statistics and generator parameters of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Published node count.
    pub num_nodes: usize,
    /// Published undirected edge count.
    pub num_undirected_edges: usize,
    /// Input feature width.
    pub feature_dim: usize,
    /// Fraction of non-zero feature entries.
    pub feature_density: f64,
    /// Number of output classes.
    pub num_classes: usize,
    /// Hidden width used by the "algo" model configurations.
    pub hidden_algo: usize,
    /// Fraction of structure-violating edges in the stand-in (community
    /// weakness).
    pub noise_fraction: f64,
    /// Planted island size range.
    pub island_size_range: (usize, usize),
    /// Probability of each intra-island node pair being connected
    /// (tuned so measured pruning rates land in the paper's band).
    pub island_density: f64,
    /// Fraction of nodes planted as hubs.
    pub hub_fraction: f64,
}

/// A generated dataset: graph plus node features.
#[derive(Debug, Clone, Serialize)]
pub struct GraphData {
    /// Which dataset this stands in for.
    pub dataset: Dataset,
    /// Node-count scale relative to the published size.
    pub scale: f64,
    /// The symmetric adjacency.
    pub graph: CsrGraph,
    /// Sparse input features.
    pub features: SparseFeatures,
    /// The published statistics this stand-in was generated from.
    pub spec: DatasetSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_standinn_matches_published_scale() {
        let d = Dataset::Cora.generate(1);
        assert_eq!(d.graph.num_nodes(), 2_708);
        let avg = d.graph.avg_degree();
        let published_avg = 2.0 * 5_429.0 / 2_708.0;
        assert!(
            (avg - published_avg).abs() / published_avg < 0.5,
            "avg degree {avg} too far from published {published_avg}"
        );
        assert_eq!(d.features.num_cols(), 1_433);
    }

    #[test]
    fn scaled_generation_shrinks_nodes_keeps_degree() {
        let full_avg = 2.0 * 44_338.0 / 19_717.0;
        let d = Dataset::Pubmed.generate_scaled(0.1, 2);
        assert!((d.graph.num_nodes() as f64 - 1_972.0).abs() < 2.0);
        assert!((d.graph.avg_degree() - full_avg).abs() / full_avg < 0.6);
    }

    #[test]
    fn all_small_datasets_generate_symmetric() {
        for ds in [Dataset::Cora, Dataset::Citeseer] {
            let d = ds.generate(3);
            assert!(d.graph.is_symmetric(), "{ds} stand-in asymmetric");
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_per_dataset() {
        let a = Dataset::Cora.generate_scaled(0.2, 7);
        let b = Dataset::Cora.generate_scaled(0.2, 7);
        assert_eq!(a.graph, b.graph);
        let c = Dataset::Citeseer.generate_scaled(0.2, 7);
        assert_ne!(a.graph.num_nodes(), c.graph.num_nodes());
    }

    #[test]
    fn display_and_id() {
        assert_eq!(Dataset::Nell.to_string(), "NELL");
        assert_eq!(Dataset::Nell.id(), "nell");
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_panics() {
        let _ = Dataset::Cora.generate_scaled(0.0, 1);
    }

    #[test]
    fn reddit_spec_is_weakly_clustered() {
        // Reddit's weak community structure is expressed through hub
        // domination: the largest hub fraction of the suite, so most
        // edges route hub-member or hub-hub rather than island-internal.
        let reddit = Dataset::Reddit.spec();
        for other in [Dataset::Cora, Dataset::Citeseer, Dataset::Pubmed, Dataset::Nell] {
            assert!(
                reddit.hub_fraction > other.spec().hub_fraction,
                "Reddit must be the most hub-dominated stand-in"
            );
        }
    }
}
