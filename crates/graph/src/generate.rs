//! Synthetic graph generators.
//!
//! The I-GCN evaluation uses five real-world graphs. Those datasets are not
//! redistributable inside this repository, so the generators here produce
//! synthetic stand-ins that match the statistics that matter to the
//! accelerator: node/edge counts, power-law degree distributions, and —
//! crucially for islandization — planted hub-and-island community
//! structure of controllable strength (see [`islands`]).

pub mod erdos;
pub mod islands;
pub mod powerlaw;
pub mod rmat;

pub use erdos::erdos_renyi;
pub use islands::{HubIslandConfig, HubIslandGraph};
pub use powerlaw::barabasi_albert;
pub use rmat::{rmat, RmatConfig};
