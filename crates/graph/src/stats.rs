//! Graph statistics and density ("spy plot") grids.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::node::NodeId;
use crate::permutation::Permutation;

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Gini coefficient of the degree distribution (0 = perfectly even,
    /// →1 = all mass on one node). Power-law graphs score high; this is the
    /// imbalance that motivates AWB-GCN's autotuning.
    pub gini: f64,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let mut degrees = graph.degrees();
    if degrees.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0, gini: 0.0 };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let total: u64 = degrees.iter().map(|&d| d as u64).sum();
    let mean = total as f64 / n as f64;
    // Gini over the sorted distribution.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * total as f64)
    };
    DegreeStats {
        min: degrees[0] as usize,
        max: degrees[n - 1] as usize,
        mean,
        median: degrees[n / 2] as usize,
        gini,
    }
}

/// Histogram of degrees in power-of-two buckets: bucket `i` counts nodes
/// with degree in `[2^i, 2^(i+1))`; bucket 0 additionally counts isolated
/// nodes.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in graph.iter_nodes() {
        let d = graph.degree(v);
        let bucket = if d == 0 { 0 } else { (usize::BITS - 1 - d.leading_zeros()) as usize };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// A coarse `grid x grid` non-zero density map of the adjacency matrix
/// under an optional node ordering — the data behind the paper's Figure 9
/// and Figure 13 spy plots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityGrid {
    grid: usize,
    counts: Vec<u64>,
    num_nodes: usize,
    total_nnz: u64,
}

impl DensityGrid {
    /// Computes the density grid of `graph` with node `ordering` applied
    /// (`None` = natural order).
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0` or the ordering length mismatches.
    pub fn compute(graph: &CsrGraph, ordering: Option<&Permutation>, grid: usize) -> Self {
        assert!(grid > 0, "grid must be positive");
        if let Some(p) = ordering {
            assert_eq!(p.len(), graph.num_nodes(), "ordering length mismatch");
        }
        let n = graph.num_nodes().max(1);
        let mut counts = vec![0u64; grid * grid];
        let map = |v: NodeId| -> usize {
            let idx = match ordering {
                Some(p) => p.map(v).index(),
                None => v.index(),
            };
            (idx * grid) / n
        };
        let mut total = 0u64;
        for (u, v) in graph.iter_edges() {
            let r = map(u).min(grid - 1);
            let c = map(v).min(grid - 1);
            counts[r * grid + c] += 1;
            total += 1;
        }
        DensityGrid { grid, counts, num_nodes: graph.num_nodes(), total_nnz: total }
    }

    /// Grid dimension.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Non-zero count in cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> u64 {
        assert!(row < self.grid && col < self.grid, "cell out of range");
        self.counts[row * self.grid + col]
    }

    /// Total non-zeros.
    pub fn total_nnz(&self) -> u64 {
        self.total_nnz
    }

    /// Fraction of non-zeros that lie within `band` cells of the diagonal.
    pub fn diagonal_band_fraction(&self, band: usize) -> f64 {
        if self.total_nnz == 0 {
            return 1.0;
        }
        let mut in_band = 0u64;
        for r in 0..self.grid {
            for c in 0..self.grid {
                if r.abs_diff(c) <= band {
                    in_band += self.counts[r * self.grid + c];
                }
            }
        }
        in_band as f64 / self.total_nnz as f64
    }

    /// Renders the grid as ASCII art (denser cells → darker glyphs), for
    /// terminal spy plots.
    pub fn to_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
        let mut out = String::with_capacity(self.grid * (self.grid + 1));
        for r in 0..self.grid {
            for c in 0..self.grid {
                let v = self.counts[r * self.grid + c] as f64;
                let shade = if v == 0.0 {
                    0
                } else {
                    // Log scale keeps sparse cells visible.
                    let t = (1.0 + v).ln() / (1.0 + max).ln();
                    ((t * (SHADES.len() - 1) as f64).ceil() as usize).min(SHADES.len() - 1)
                };
                out.push(SHADES[shade] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the grid as a binary PPM (P6) grayscale image for external
    /// viewing; cell intensity is log-scaled density.
    pub fn to_ppm(&self) -> Vec<u8> {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
        let mut out = format!("P6\n{} {}\n255\n", self.grid, self.grid).into_bytes();
        for &c in &self.counts {
            let v = c as f64;
            let t = if v == 0.0 { 0.0 } else { (1.0 + v).ln() / (1.0 + max).ln() };
            let px = 255 - (t * 255.0) as u8;
            out.extend_from_slice(&[px, px, px]);
        }
        out
    }
}

/// Average graph distance of each edge under an ordering:
/// `mean(|pos(u) - pos(v)|)` over all edges. Reordering algorithms aim to
/// minimise it; it is the scalar behind Figure 13's qualitative comparison.
pub fn mean_edge_span(graph: &CsrGraph, ordering: Option<&Permutation>) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for (u, v) in graph.iter_edges() {
        let (pu, pv) = match ordering {
            Some(p) => (p.map(u).index(), p.map(v).index()),
            None => (u.index(), v.index()),
        };
        total += pu.abs_diff(pv) as u64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Average local clustering coefficient, exactly over all nodes with
/// degree ≥ 2 (triangle density of each neighborhood). Real-world
/// community graphs score high; Erdős–Rényi graphs near `avg_degree / n` —
/// the statistic that separates islandizable from unislandizable inputs.
pub fn clustering_coefficient(graph: &CsrGraph) -> f64 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for v in graph.iter_nodes() {
        let neighbors: Vec<u32> =
            graph.neighbors(v).iter().copied().filter(|&nb| nb != v.value()).collect();
        let d = neighbors.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for i in 0..d {
            for j in (i + 1)..d {
                if graph.has_edge(NodeId::new(neighbors[i]), NodeId::new(neighbors[j])) {
                    links += 1;
                }
            }
        }
        total += links as f64 / (d * (d - 1) / 2) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Maximum-likelihood power-law exponent of the degree distribution
/// (Clauset-Shalizi-Newman continuous estimator over degrees ≥ `d_min`).
/// Real-world graphs land around 2–3; the statistic behind the
/// workload-imbalance argument of AWB-GCN and I-GCN's hub detection.
pub fn powerlaw_alpha(graph: &CsrGraph, d_min: usize) -> f64 {
    let d_min = d_min.max(1) as f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for v in graph.iter_nodes() {
        let d = graph.degree(v) as f64;
        if d >= d_min {
            sum += (d / d_min).ln();
            count += 1;
        }
    }
    if count == 0 || sum == 0.0 {
        0.0
    } else {
        1.0 + count as f64 / sum
    }
}

/// Newman modularity of a labelled partition of the nodes (labels need not
/// be contiguous; `u32::MAX` is treated as its own label per node —
/// convenient for hub ground truth).
pub fn modularity(graph: &CsrGraph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), graph.num_nodes(), "label length mismatch");
    let m2 = graph.num_directed_edges() as f64; // = 2m for symmetric graphs
    if m2 == 0.0 {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut internal: HashMap<u64, f64> = HashMap::new();
    let mut degree_sum: HashMap<u64, f64> = HashMap::new();
    let label_of = |v: NodeId| -> u64 {
        let l = labels[v.index()];
        if l == u32::MAX {
            // Unique label per unlabeled node.
            (1u64 << 32) | v.index() as u64
        } else {
            l as u64
        }
    };
    for (u, v) in graph.iter_edges() {
        let lu = label_of(u);
        if lu == label_of(v) {
            *internal.entry(lu).or_default() += 1.0;
        }
    }
    for v in graph.iter_nodes() {
        *degree_sum.entry(label_of(v)).or_default() += graph.degree(v) as f64;
    }
    let mut q = 0.0;
    for (label, din) in &internal {
        let d = degree_sum.get(label).copied().unwrap_or(0.0);
        q += din / m2 - (d / m2) * (d / m2);
    }
    // Communities with no internal edges still contribute their -(d/2m)^2.
    for (label, d) in &degree_sum {
        if !internal.contains_key(label) {
            q -= (d / m2) * (d / m2);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, HubIslandConfig};

    fn star(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        CsrGraph::from_undirected_edges(n, &edges).unwrap()
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&star(10));
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 1);
        assert!((s.mean - 1.8).abs() < 1e-9);
        assert!(s.gini > 0.3, "star graph is unequal, gini {}", s.gini);
    }

    #[test]
    fn degree_stats_empty() {
        let g = CsrGraph::from_directed_edges(0, &[]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star(10));
        // Nine nodes of degree 1 (bucket 0), one of degree 9 (bucket 3).
        assert_eq!(h[0], 9);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn density_grid_totals_match() {
        let g = erdos_renyi(100, 250, 3);
        let grid = DensityGrid::compute(&g, None, 16);
        assert_eq!(grid.total_nnz() as usize, g.num_directed_edges());
        let sum: u64 =
            (0..16).flat_map(|r| (0..16).map(move |c| (r, c))).map(|(r, c)| grid.cell(r, c)).sum();
        assert_eq!(sum, grid.total_nnz());
    }

    #[test]
    fn density_grid_band_fraction_bounds() {
        let g = erdos_renyi(100, 250, 3);
        let grid = DensityGrid::compute(&g, None, 16);
        let f0 = grid.diagonal_band_fraction(0);
        let fall = grid.diagonal_band_fraction(16);
        assert!(f0 <= fall);
        assert!((fall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_dimensions() {
        let g = star(20);
        let grid = DensityGrid::compute(&g, None, 8);
        let art = grid.to_ascii();
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().all(|l| l.chars().count() == 8));
    }

    #[test]
    fn ppm_header_and_size() {
        let g = star(20);
        let grid = DensityGrid::compute(&g, None, 4);
        let ppm = grid.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 4\n255\n"));
        assert_eq!(ppm.len(), b"P6\n4 4\n255\n".len() + 4 * 4 * 3);
    }

    #[test]
    fn mean_edge_span_identity_vs_reorder() {
        // Path graph in natural order has span 1.
        let g =
            CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert!((mean_edge_span(&g, None) - 1.0).abs() < 1e-12);
        // Scrambling increases it.
        let p = Permutation::from_forward(vec![0, 5, 1, 4, 2, 3]).unwrap();
        assert!(mean_edge_span(&g, Some(&p)) > 1.0);
    }

    #[test]
    fn modularity_of_planted_structure_is_positive() {
        let g = HubIslandConfig::new(400, 12).noise_fraction(0.0).generate(8);
        let q = modularity(&g.graph, &g.membership);
        assert!(q > 0.2, "planted structure should have high modularity, got {q}");
    }

    #[test]
    fn clustering_high_on_cliques_low_on_random() {
        // A 5-clique has coefficient 1.0 everywhere.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let clique = CsrGraph::from_undirected_edges(5, &edges).unwrap();
        assert!((clustering_coefficient(&clique) - 1.0).abs() < 1e-12);
        // Sparse random graphs cluster weakly.
        let random = erdos_renyi(300, 600, 5);
        assert!(clustering_coefficient(&random) < 0.1);
        // Planted dense islands cluster strongly.
        let islands = HubIslandConfig::new(300, 10)
            .island_density(0.8)
            .island_size_range(4, 8)
            .noise_fraction(0.0)
            .generate(6);
        assert!(clustering_coefficient(&islands.graph) > 0.3);
    }

    #[test]
    fn clustering_degenerate_inputs() {
        let g = CsrGraph::from_directed_edges(0, &[]).unwrap();
        assert_eq!(clustering_coefficient(&g), 0.0);
        let path = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(clustering_coefficient(&path), 0.0);
    }

    #[test]
    fn powerlaw_alpha_detects_skew() {
        use crate::generate::barabasi_albert;
        let ba = barabasi_albert(3000, 2, 7);
        let alpha = powerlaw_alpha(&ba, 3);
        assert!((1.8..4.0).contains(&alpha), "BA graphs should have alpha near 3, got {alpha}");
        let empty = CsrGraph::from_directed_edges(4, &[]).unwrap();
        assert_eq!(powerlaw_alpha(&empty, 1), 0.0);
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = erdos_renyi(50, 100, 1);
        let labels = vec![0u32; 50];
        let q = modularity(&g, &labels);
        assert!(q.abs() < 1e-9, "single community modularity should be 0, got {q}");
    }
}
