//! Node relabellings.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::node::NodeId;

/// A bijection over node identifiers `0..n`, used to express graph
/// reorderings.
///
/// `forward[old] = new`: applying the permutation relabels node `old` as
/// node `new`. The reordering baselines of the paper (Rabbit, DBG, HubSort,
/// …) all produce values of this type, as does the ordering induced by
/// islandization for the Figure 9/13 spy plots.
///
/// # Example
///
/// ```
/// use igcn_graph::{NodeId, Permutation};
///
/// let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.map(NodeId::new(0)), NodeId::new(2));
/// assert_eq!(p.inverse().map(NodeId::new(2)), NodeId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// The identity permutation over `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation { forward: (0..n as u32).collect() }
    }

    /// Builds a permutation from its forward map (`forward[old] = new`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if the map is not a
    /// bijection over `0..forward.len()`.
    pub fn from_forward(forward: Vec<u32>) -> Result<Self, GraphError> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &img in &forward {
            let idx = img as usize;
            if idx >= n {
                return Err(GraphError::InvalidPermutation {
                    detail: format!("image {img} out of range for {n} elements"),
                });
            }
            if seen[idx] {
                return Err(GraphError::InvalidPermutation {
                    detail: format!("image {img} appears more than once"),
                });
            }
            seen[idx] = true;
        }
        Ok(Permutation { forward })
    }

    /// Builds the permutation that relabels `order[i]` as `i`; i.e. `order`
    /// lists the old node IDs in their new positions. This is the natural
    /// output of ordering algorithms that emit a node sequence.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `order` is not a
    /// bijection.
    pub fn from_order(order: &[u32]) -> Result<Self, GraphError> {
        let n = order.len();
        let mut forward = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            let idx = old as usize;
            if idx >= n {
                return Err(GraphError::InvalidPermutation {
                    detail: format!("node {old} out of range for {n} elements"),
                });
            }
            if forward[idx] != u32::MAX {
                return Err(GraphError::InvalidPermutation {
                    detail: format!("node {old} appears more than once in order"),
                });
            }
            forward[idx] = new as u32;
        }
        Ok(Permutation { forward })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn map(&self, node: NodeId) -> NodeId {
        NodeId::new(self.forward[node.index()])
    }

    /// The forward map as a slice (`forward[old] = new`).
    pub fn as_forward(&self) -> &[u32] {
        &self.forward
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Permutation { forward: inv }
    }

    /// Composition: applies `self` first, then `after`.
    ///
    /// # Panics
    ///
    /// Panics if the permutations have different lengths.
    pub fn then(&self, after: &Permutation) -> Permutation {
        assert_eq!(self.len(), after.len(), "composed permutations must have equal length");
        let forward = self.forward.iter().map(|&mid| after.forward[mid as usize]).collect();
        Permutation { forward }
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.map(NodeId::new(2)), NodeId::new(2));
    }

    #[test]
    fn from_forward_rejects_duplicates_and_oob() {
        assert!(Permutation::from_forward(vec![0, 0]).is_err());
        assert!(Permutation::from_forward(vec![0, 5]).is_err());
        assert!(Permutation::from_forward(vec![1, 0]).is_ok());
    }

    #[test]
    fn from_order_is_inverse_of_sequence() {
        // order: old node 2 comes first, then 0, then 1.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.map(NodeId::new(2)), NodeId::new(0));
        assert_eq!(p.map(NodeId::new(0)), NodeId::new(1));
        assert_eq!(p.map(NodeId::new(1)), NodeId::new(2));
    }

    #[test]
    fn from_order_rejects_invalid() {
        assert!(Permutation::from_order(&[0, 0]).is_err());
        assert!(Permutation::from_order(&[0, 9]).is_err());
    }

    #[test]
    fn inverse_roundtrips() {
        let p = Permutation::from_forward(vec![3, 1, 0, 2]).unwrap();
        let composed = p.then(&p.inverse());
        assert!(composed.is_identity());
    }

    #[test]
    fn composition_order() {
        let first = Permutation::from_forward(vec![1, 2, 0]).unwrap();
        let second = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        let c = first.then(&second);
        // node 0: first -> 1, second -> 0.
        assert_eq!(c.map(NodeId::new(0)), NodeId::new(0));
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
