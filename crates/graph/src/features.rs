//! Sparse node-feature matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// A sparse node-feature matrix in row-CSR form.
///
/// Real GCN inputs (bag-of-words document features, one-hot entity
/// features) are extremely sparse — Cora's feature matrix is ~1.3% dense,
/// NELL's ~0.01%. Accelerators such as AWB-GCN and I-GCN exploit this in
/// the first-layer combination `X·W`, so the reproduction must track
/// feature sparsity faithfully: operation counts, off-chip traffic and the
/// aggregation/combination ratio of Figure 10 all depend on `nnz(X)`.
///
/// # Example
///
/// ```
/// use igcn_graph::SparseFeatures;
///
/// let x = SparseFeatures::random(100, 32, 0.1, 42);
/// assert_eq!(x.num_rows(), 100);
/// assert_eq!(x.num_cols(), 32);
/// let density = x.density();
/// assert!(density > 0.02 && density < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseFeatures {
    num_rows: usize,
    num_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseFeatures {
    /// Builds a feature matrix from per-row `(column, value)` entries.
    ///
    /// Entries within a row are sorted by column; duplicate columns keep the
    /// last value.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != num_rows` or any column is out of range.
    pub fn from_rows(num_rows: usize, num_cols: usize, rows: Vec<Vec<(u32, f32)>>) -> Self {
        assert_eq!(rows.len(), num_rows, "row count mismatch");
        let mut row_ptr = Vec::with_capacity(num_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for mut row in rows {
            row.sort_by_key(|&(c, _)| c);
            row.dedup_by_key(|&mut (c, _)| c);
            for (c, v) in row {
                assert!((c as usize) < num_cols, "feature column {c} out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        SparseFeatures { num_rows, num_cols, row_ptr, col_idx, values }
    }

    /// Rebuilds a feature matrix from raw CSR arrays — the
    /// deserialisation twin of the raw accessors
    /// ([`SparseFeatures::row_ptr`] and friends), validating instead of
    /// panicking so corrupt stored bytes surface as typed errors.
    ///
    /// # Errors
    ///
    /// [`GraphError::MalformedRowPtr`] if `row_ptr` has the wrong
    /// length, is non-monotone, or does not end at `col_idx.len()`;
    /// [`GraphError::NodeOutOfBounds`] if a column index is `>=
    /// num_cols` (the node field carries the offending column).
    pub fn from_raw_parts(
        num_rows: usize,
        num_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, crate::error::GraphError> {
        use crate::error::GraphError;
        if row_ptr.len() != num_rows + 1 {
            return Err(GraphError::MalformedRowPtr {
                detail: format!("expected {} entries, got {}", num_rows + 1, row_ptr.len()),
            });
        }
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(GraphError::MalformedRowPtr {
                detail: "row_ptr must start at 0 and end at col_idx.len()".to_string(),
            });
        }
        if values.len() != col_idx.len() {
            return Err(GraphError::MalformedRowPtr {
                detail: format!(
                    "values length {} does not match col_idx length {}",
                    values.len(),
                    col_idx.len()
                ),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(GraphError::MalformedRowPtr {
                    detail: "row_ptr must be non-decreasing".to_string(),
                });
            }
        }
        for &c in &col_idx {
            if c as usize >= num_cols {
                return Err(GraphError::NodeOutOfBounds { node: c, num_nodes: num_cols });
            }
        }
        Ok(SparseFeatures { num_rows, num_cols, row_ptr, col_idx, values })
    }

    /// Generates a random sparse feature matrix with approximately the given
    /// density. Each row receives `round(density * num_cols)` distinct
    /// non-zero columns (at least one), with values uniform in `[0, 1)` —
    /// matching the bag-of-words-after-normalisation shape of the citation
    /// datasets.
    pub fn random(num_rows: usize, num_cols: usize, density: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let per_row = ((density * num_cols as f64).round() as usize).clamp(1, num_cols);
        let mut rows = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            let mut cols = std::collections::BTreeSet::new();
            while cols.len() < per_row {
                cols.insert(rng.gen_range(0..num_cols as u32));
            }
            let row: Vec<(u32, f32)> = cols.into_iter().map(|c| (c, rng.gen::<f32>())).collect();
            rows.push(row);
        }
        Self::from_rows(num_rows, num_cols, rows)
    }

    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (feature channels).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of entries stored.
    pub fn density(&self) -> f64 {
        if self.num_rows == 0 || self.num_cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.num_rows as f64 * self.num_cols as f64)
        }
    }

    /// The non-zeros of one row, as parallel `(columns, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn row(&self, node: NodeId) -> (&[u32], &[f32]) {
        let r = node.index();
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Number of non-zeros in one row.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn row_nnz(&self, node: NodeId) -> usize {
        let r = node.index();
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Expands to a dense row-major buffer (`num_rows * num_cols`).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.num_rows * self.num_cols];
        for r in 0..self.num_rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[r * self.num_cols + self.col_idx[i] as usize] = self.values[i];
            }
        }
        out
    }

    /// Builds a new matrix whose row `i` is this matrix's row
    /// `order[i]` — the row-permutation primitive behind schedule-order
    /// physical layouts (`order` lists source rows in their new
    /// positions, e.g. a [`Permutation`]'s inverse forward map).
    ///
    /// # Panics
    ///
    /// Panics if any entry of `order` is out of range.
    ///
    /// [`Permutation`]: crate::Permutation
    pub fn gather_rows(&self, order: &[u32]) -> SparseFeatures {
        let mut out = SparseFeatures {
            num_rows: 0,
            num_cols: self.num_cols,
            row_ptr: Vec::new(),
            col_idx: Vec::new(),
            values: Vec::new(),
        };
        self.gather_rows_into(order, &mut out);
        out
    }

    /// In-place variant of [`SparseFeatures::gather_rows`]: rebuilds
    /// `out` as the gathered matrix, reusing its buffers (no allocation
    /// once the buffers have grown to the steady-state size — the
    /// requirement of the zero-allocation serving hot path).
    ///
    /// # Panics
    ///
    /// Panics if any entry of `order` is out of range.
    pub fn gather_rows_into(&self, order: &[u32], out: &mut SparseFeatures) {
        out.num_rows = order.len();
        out.num_cols = self.num_cols;
        out.row_ptr.clear();
        out.col_idx.clear();
        out.values.clear();
        out.row_ptr.reserve(order.len() + 1);
        out.col_idx.reserve(self.col_idx.len());
        out.values.reserve(self.values.len());
        out.row_ptr.push(0);
        for &src in order {
            let r = src as usize;
            assert!(r < self.num_rows, "row {src} out of range for {} rows", self.num_rows);
            let range = self.row_ptr[r]..self.row_ptr[r + 1];
            out.col_idx.extend_from_slice(&self.col_idx[range.clone()]);
            out.values.extend_from_slice(&self.values[range]);
            out.row_ptr.push(out.col_idx.len());
        }
    }

    /// Clears this matrix and returns a writer that rebuilds it row by
    /// row **in place**, reusing the existing buffers (no allocation
    /// once they have grown to their steady-state size — the same
    /// contract as [`SparseFeatures::gather_rows_into`]). Producers
    /// that transform another CSR matrix row-wise (e.g. the int8
    /// dequantizing gather in `igcn-linalg`) stream entries through
    /// [`CsrRowWriter::push_entry`] / [`CsrRowWriter::finish_row`].
    ///
    /// Rows not finished before the writer is dropped are simply absent;
    /// the matrix is valid at every point (`num_rows` tracks finished
    /// rows only).
    pub fn begin_rebuild(&mut self, num_cols: usize) -> CsrRowWriter<'_> {
        self.num_rows = 0;
        self.num_cols = num_cols;
        self.row_ptr.clear();
        self.col_idx.clear();
        self.values.clear();
        self.row_ptr.push(0);
        CsrRowWriter { target: self }
    }

    /// Raw row-pointer array (length `num_rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw value array, parallel to [`SparseFeatures::col_idx`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }
}

/// Streams rows into a [`SparseFeatures`] being rebuilt in place; see
/// [`SparseFeatures::begin_rebuild`].
#[derive(Debug)]
pub struct CsrRowWriter<'a> {
    target: &'a mut SparseFeatures,
}

impl CsrRowWriter<'_> {
    /// Reserves capacity for `rows` further rows and `nnz` further
    /// entries (a hint — the buffers grow on demand regardless).
    pub fn reserve(&mut self, rows: usize, nnz: usize) {
        self.target.row_ptr.reserve(rows);
        self.target.col_idx.reserve(nnz);
        self.target.values.reserve(nnz);
    }

    /// Appends one `(column, value)` entry to the row under
    /// construction. Columns must be pushed in strictly ascending order
    /// within a row (the CSR invariant every producer in this workspace
    /// already has).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or not strictly ascending within
    /// the current row.
    pub fn push_entry(&mut self, col: u32, v: f32) {
        let t = &mut *self.target;
        assert!((col as usize) < t.num_cols, "feature column {col} out of range");
        let row_start = *t.row_ptr.last().expect("row_ptr is never empty");
        if let Some(&prev) = t.col_idx.get(row_start..).and_then(<[u32]>::last) {
            assert!(
                prev < col,
                "columns must be strictly ascending within a row ({prev} >= {col})"
            );
        }
        t.col_idx.push(col);
        t.values.push(v);
    }

    /// Seals the row under construction (possibly empty) and starts the
    /// next one.
    pub fn finish_row(&mut self) {
        self.target.num_rows += 1;
        self.target.row_ptr.push(self.target.col_idx.len());
    }

    /// Finished rows so far.
    pub fn rows_written(&self) -> usize {
        self.target.num_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_sorts_and_dedups() {
        let x = SparseFeatures::from_rows(2, 4, vec![vec![(3, 1.0), (1, 2.0), (3, 5.0)], vec![]]);
        let (cols, vals) = x.row(NodeId::new(0));
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals.len(), 2);
        assert_eq!(x.row_nnz(NodeId::new(1)), 0);
    }

    #[test]
    fn random_has_requested_density() {
        let x = SparseFeatures::random(50, 100, 0.1, 1);
        assert_eq!(x.nnz(), 50 * 10);
        assert!((x.density() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn random_minimum_one_per_row() {
        let x = SparseFeatures::random(10, 1000, 0.00001, 2);
        for r in 0..10 {
            assert_eq!(x.row_nnz(NodeId::new(r)), 1);
        }
    }

    #[test]
    fn random_is_deterministic() {
        let a = SparseFeatures::random(20, 30, 0.2, 9);
        let b = SparseFeatures::random(20, 30, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn to_dense_places_values() {
        let x = SparseFeatures::from_rows(2, 3, vec![vec![(2, 7.0)], vec![(0, 1.0)]]);
        let d = x.to_dense();
        assert_eq!(d, vec![0.0, 0.0, 7.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let _ = SparseFeatures::from_rows(1, 2, vec![vec![(5, 1.0)]]);
    }

    #[test]
    fn gather_rows_reorders_and_duplicates() {
        let x = SparseFeatures::from_rows(
            3,
            4,
            vec![vec![(0, 1.0)], vec![(1, 2.0), (3, 3.0)], vec![(2, 4.0)]],
        );
        let g = x.gather_rows(&[2, 0, 1, 0]);
        assert_eq!(g.num_rows(), 4);
        assert_eq!(g.num_cols(), 4);
        assert_eq!(g.row(NodeId::new(0)), x.row(NodeId::new(2)));
        assert_eq!(g.row(NodeId::new(1)), x.row(NodeId::new(0)));
        assert_eq!(g.row(NodeId::new(2)), x.row(NodeId::new(1)));
        assert_eq!(g.row(NodeId::new(3)), x.row(NodeId::new(0)));
    }

    #[test]
    fn gather_rows_roundtrips_through_permutation() {
        let x = SparseFeatures::random(40, 16, 0.2, 5);
        let perm = crate::Permutation::from_order(&(0..40u32).rev().collect::<Vec<_>>()).unwrap();
        // order[new] = old: the inverse forward map.
        let order = perm.inverse();
        let permuted = x.gather_rows(order.as_forward());
        for old in 0..40u32 {
            let new = perm.map(NodeId::new(old));
            assert_eq!(permuted.row(new), x.row(NodeId::new(old)));
        }
        // Gathering back with the forward map restores the original.
        let back = permuted.gather_rows(perm.as_forward());
        assert_eq!(back, x);
    }

    #[test]
    fn gather_rows_into_reuses_buffers() {
        let x = SparseFeatures::random(30, 8, 0.3, 7);
        let order: Vec<u32> = (0..30u32).rev().collect();
        let mut out = x.gather_rows(&order);
        let cap = (out.row_ptr.capacity(), out.col_idx.capacity(), out.values.capacity());
        x.gather_rows_into(&order, &mut out);
        assert_eq!(
            (out.row_ptr.capacity(), out.col_idx.capacity(), out.values.capacity()),
            cap,
            "steady-state gather must not reallocate"
        );
        assert_eq!(out, x.gather_rows(&order));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_rejects_bad_index() {
        let x = SparseFeatures::random(3, 4, 0.5, 1);
        let _ = x.gather_rows(&[0, 9]);
    }

    #[test]
    fn begin_rebuild_streams_rows_in_place() {
        let mut m = SparseFeatures::random(10, 6, 0.4, 3);
        let mut w = m.begin_rebuild(4);
        w.push_entry(1, 2.0);
        w.push_entry(3, -1.0);
        w.finish_row();
        w.finish_row(); // empty row
        w.push_entry(0, 5.0);
        w.finish_row();
        assert_eq!(w.rows_written(), 3);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 4);
        assert_eq!(
            m,
            SparseFeatures::from_rows(
                3,
                4,
                vec![vec![(1, 2.0), (3, -1.0)], vec![], vec![(0, 5.0)]]
            )
        );
    }

    #[test]
    fn begin_rebuild_reuses_buffers_at_steady_state() {
        let x = SparseFeatures::random(30, 8, 0.3, 11);
        let mut out = x.clone();
        let cap = (out.row_ptr.capacity(), out.col_idx.capacity(), out.values.capacity());
        let mut w = out.begin_rebuild(8);
        for r in 0..30 {
            let (cols, vals) = x.row(NodeId::new(r));
            for (&c, &v) in cols.iter().zip(vals) {
                w.push_entry(c, v * 2.0);
            }
            w.finish_row();
        }
        assert_eq!(
            (out.row_ptr.capacity(), out.col_idx.capacity(), out.values.capacity()),
            cap,
            "steady-state rebuild must not reallocate"
        );
        assert_eq!(out.nnz(), x.nnz());
        assert_eq!(out.row_ptr(), x.row_ptr());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn begin_rebuild_rejects_unsorted_columns() {
        let mut m = SparseFeatures::from_rows(0, 0, vec![]);
        let mut w = m.begin_rebuild(4);
        w.push_entry(2, 1.0);
        w.push_entry(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn begin_rebuild_rejects_bad_column() {
        let mut m = SparseFeatures::from_rows(0, 0, vec![]);
        let mut w = m.begin_rebuild(4);
        w.push_entry(4, 1.0);
    }
}
