//! Compressed-sparse-row adjacency.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::node::NodeId;
use crate::permutation::Permutation;

/// An unweighted graph stored in compressed-sparse-row (CSR) form.
///
/// This mirrors the adjacency-list layout the I-GCN hardware streams from
/// global memory: one contiguous neighbor array (`col_idx`) indexed by a
/// per-node offset array (`row_ptr`). Neighbor lists are kept sorted, which
/// makes [`CsrGraph::has_edge`] a binary search and gives deterministic
/// iteration order to the islandization algorithm.
///
/// For GCN processing the adjacency is *symmetric* (undirected graph); all
/// dataset generators in this crate produce symmetric graphs and
/// [`CsrGraph::is_symmetric`] verifies the property.
///
/// # Example
///
/// ```
/// use igcn_graph::{CsrGraph, NodeId};
///
/// let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(2), NodeId::new(1)));
/// assert_eq!(g.num_directed_edges(), 6);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph from *directed* edge pairs.
    ///
    /// Duplicate edges are collapsed; neighbor lists are sorted. Self-loops
    /// are kept (GCN's `A + I` handling strips/reinstates them explicitly at
    /// a higher layer).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>= num_nodes`.
    pub fn from_directed_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u as usize >= num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: u, num_nodes });
            }
            if v as usize >= num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: v, num_nodes });
            }
        }
        // Counting sort by source, then per-row sort + dedup.
        let mut counts = vec![0usize; num_nodes + 1];
        for &(u, _) in edges {
            counts[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; edges.len()];
        let mut cursor = counts.clone();
        for &(u, v) in edges {
            col_idx[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(num_nodes + 1);
        row_ptr.push(0);
        let mut dedup = Vec::with_capacity(col_idx.len());
        for u in 0..num_nodes {
            let row = &mut col_idx[counts[u]..counts[u + 1]];
            row.sort_unstable();
            let mut prev: Option<u32> = None;
            for &v in row.iter() {
                if prev != Some(v) {
                    dedup.push(v);
                    prev = Some(v);
                }
            }
            row_ptr.push(dedup.len());
        }
        Ok(CsrGraph { num_nodes, row_ptr, col_idx: dedup })
    }

    /// Builds a symmetric graph from *undirected* edge pairs: each pair
    /// `(u, v)` with `u != v` inserts both `(u, v)` and `(v, u)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is `>= num_nodes`.
    pub fn from_undirected_edges(
        num_nodes: usize,
        edges: &[(u32, u32)],
    ) -> Result<Self, GraphError> {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            directed.push((u, v));
            if u != v {
                directed.push((v, u));
            }
        }
        Self::from_directed_edges(num_nodes, &directed)
    }

    /// Builds a graph directly from raw CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedRowPtr`] if `row_ptr` has the wrong
    /// length, is non-monotone, or does not end at `col_idx.len()`;
    /// [`GraphError::NodeOutOfBounds`] if a column index is out of range.
    pub fn from_raw_parts(
        num_nodes: usize,
        row_ptr: Vec<usize>,
        mut col_idx: Vec<u32>,
    ) -> Result<Self, GraphError> {
        if row_ptr.len() != num_nodes + 1 {
            return Err(GraphError::MalformedRowPtr {
                detail: format!("expected {} entries, got {}", num_nodes + 1, row_ptr.len()),
            });
        }
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap() != col_idx.len() {
            return Err(GraphError::MalformedRowPtr {
                detail: "row_ptr must start at 0 and end at col_idx.len()".to_string(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(GraphError::MalformedRowPtr {
                    detail: "row_ptr must be non-decreasing".to_string(),
                });
            }
        }
        for &v in &col_idx {
            if v as usize >= num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: v, num_nodes });
            }
        }
        for u in 0..num_nodes {
            col_idx[row_ptr[u]..row_ptr[u + 1]].sort_unstable();
        }
        Ok(CsrGraph { num_nodes, row_ptr, col_idx })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored (directed) adjacency entries. For a symmetric graph
    /// this is twice the number of undirected edges plus the number of
    /// self-loops.
    pub fn num_directed_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of undirected edges, assuming a symmetric adjacency.
    /// Self-loops count once.
    pub fn num_undirected_edges(&self) -> usize {
        let self_loops = self.count_self_loops();
        (self.col_idx.len() - self_loops) / 2 + self_loops
    }

    /// Number of self-loop entries `(v, v)`.
    pub fn count_self_loops(&self) -> usize {
        (0..self.num_nodes)
            .filter(|&u| self.neighbors_raw(u).binary_search(&(u as u32)).is_ok())
            .count()
    }

    /// The sorted neighbor list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        self.neighbors_raw(node.index())
    }

    fn neighbors_raw(&self, u: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[u]..self.row_ptr[u + 1]]
    }

    /// Degree (number of stored adjacency entries) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn degree(&self, node: NodeId) -> usize {
        let u = node.index();
        self.row_ptr[u + 1] - self.row_ptr[u]
    }

    /// Degrees of all nodes, indexable by [`NodeId::index`].
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_nodes).map(|u| (self.row_ptr[u + 1] - self.row_ptr[u]) as u32).collect()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes).map(|u| self.row_ptr[u + 1] - self.row_ptr[u]).max().unwrap_or(0)
    }

    /// Mean degree over all nodes (0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.col_idx.len() as f64 / self.num_nodes as f64
        }
    }

    /// Density of the adjacency matrix: stored entries over `n^2`.
    pub fn density(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.col_idx.len() as f64 / (self.num_nodes as f64 * self.num_nodes as f64)
        }
    }

    /// Whether the directed edge `(from, to)` is present.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of bounds.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.neighbors(from).binary_search(&to.value()).is_ok()
    }

    /// Iterates over all stored directed edges in row-major order.
    pub fn iter_edges(&self) -> EdgeIter<'_> {
        EdgeIter { graph: self, row: 0, pos: 0 }
    }

    /// Iterates over all node identifiers `0..num_nodes`.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes as u32).map(NodeId::new)
    }

    /// Whether every edge `(u, v)` has its reverse `(v, u)`.
    pub fn is_symmetric(&self) -> bool {
        self.check_symmetric().is_ok()
    }

    /// Verifies symmetry, reporting the first unpaired edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSymmetric`] with the first unpaired edge.
    pub fn check_symmetric(&self) -> Result<(), GraphError> {
        for (u, v) in self.iter_edges() {
            if !self.has_edge(v, u) {
                return Err(GraphError::NotSymmetric { from: u.value(), to: v.value() });
            }
        }
        Ok(())
    }

    /// Returns the transpose (reverse of every edge). For symmetric graphs
    /// this is equal to the input.
    pub fn transpose(&self) -> CsrGraph {
        let edges: Vec<(u32, u32)> =
            self.iter_edges().map(|(u, v)| (v.value(), u.value())).collect();
        CsrGraph::from_directed_edges(self.num_nodes, &edges)
            .expect("transpose of a valid graph is valid")
    }

    /// Returns the symmetric closure: every edge plus its reverse.
    pub fn symmetrize(&self) -> CsrGraph {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.col_idx.len() * 2);
        for (u, v) in self.iter_edges() {
            edges.push((u.value(), v.value()));
            edges.push((v.value(), u.value()));
        }
        CsrGraph::from_directed_edges(self.num_nodes, &edges)
            .expect("symmetrization of a valid graph is valid")
    }

    /// Returns a copy with all self-loops removed.
    pub fn without_self_loops(&self) -> CsrGraph {
        let edges: Vec<(u32, u32)> = self
            .iter_edges()
            .filter(|(u, v)| u != v)
            .map(|(u, v)| (u.value(), v.value()))
            .collect();
        CsrGraph::from_directed_edges(self.num_nodes, &edges)
            .expect("filtered edges of a valid graph are valid")
    }

    /// Relabels nodes: node `v` becomes `perm.map(v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPermutation`] if `perm` is not over
    /// exactly `num_nodes` elements.
    pub fn permute(&self, perm: &Permutation) -> Result<CsrGraph, GraphError> {
        if perm.len() != self.num_nodes {
            return Err(GraphError::InvalidPermutation {
                detail: format!(
                    "permutation over {} elements applied to graph with {} nodes",
                    perm.len(),
                    self.num_nodes
                ),
            });
        }
        let edges: Vec<(u32, u32)> =
            self.iter_edges().map(|(u, v)| (perm.map(u).value(), perm.map(v).value())).collect();
        CsrGraph::from_directed_edges(self.num_nodes, &edges)
    }

    /// Raw CSR row-pointer array (length `num_nodes + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw CSR column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_directed_edges", &self.col_idx.len())
            .finish()
    }
}

/// Iterator over the directed edges of a [`CsrGraph`], produced by
/// [`CsrGraph::iter_edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a CsrGraph,
    row: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.graph.num_nodes {
            if self.pos < self.graph.row_ptr[self.row + 1] {
                let v = self.graph.col_idx[self.pos];
                let u = self.row as u32;
                self.pos += 1;
                return Some((NodeId::new(u), NodeId::new(v)));
            }
            self.row += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.graph.col_idx.len() - self.pos;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn from_undirected_builds_symmetric() {
        let g = path4();
        assert!(g.is_symmetric());
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.num_undirected_edges(), 3);
    }

    #[test]
    fn neighbors_are_sorted_and_deduped() {
        let g = CsrGraph::from_directed_edges(3, &[(0, 2), (0, 1), (0, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(NodeId::new(0)), &[1, 2]);
        assert_eq!(g.degree(NodeId::new(0)), 2);
    }

    #[test]
    fn out_of_bounds_edge_rejected() {
        let err = CsrGraph::from_directed_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfBounds { node: 5, num_nodes: 2 });
    }

    #[test]
    fn has_edge_binary_search() {
        let g = path4();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn self_loops_counted_once() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.count_self_loops(), 1);
        assert_eq!(g.num_undirected_edges(), 2);
        assert_eq!(g.num_directed_edges(), 3);
    }

    #[test]
    fn transpose_of_asymmetric() {
        let g = CsrGraph::from_directed_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let t = g.transpose();
        assert!(t.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(t.has_edge(NodeId::new(2), NodeId::new(1)));
        assert!(!t.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn symmetrize_adds_reverses() {
        let g = CsrGraph::from_directed_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let s = g.symmetrize();
        assert!(s.is_symmetric());
        assert_eq!(s.num_directed_edges(), 4);
    }

    #[test]
    fn without_self_loops_strips_diagonal() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 0), (0, 1), (2, 2)]).unwrap();
        let s = g.without_self_loops();
        assert_eq!(s.count_self_loops(), 0);
        assert_eq!(s.num_directed_edges(), 2);
    }

    #[test]
    fn permute_relabels_consistently() {
        let g = path4();
        // Reverse order: 0<->3, 1<->2.
        let p = Permutation::from_forward(vec![3, 2, 1, 0]).unwrap();
        let h = g.permute(&p).unwrap();
        assert!(h.has_edge(NodeId::new(3), NodeId::new(2)));
        assert!(h.has_edge(NodeId::new(1), NodeId::new(0)));
        assert_eq!(h.num_directed_edges(), g.num_directed_edges());
    }

    #[test]
    fn permute_wrong_size_rejected() {
        let g = path4();
        let p = Permutation::identity(3);
        assert!(matches!(g.permute(&p), Err(GraphError::InvalidPermutation { .. })));
    }

    #[test]
    fn edge_iter_covers_all_entries() {
        let g = path4();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), g.num_directed_edges());
        assert_eq!(edges[0], (NodeId::new(0), NodeId::new(1)));
        let iter = g.iter_edges();
        assert_eq!(iter.len(), 6);
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 0]).is_ok());
        assert!(CsrGraph::from_raw_parts(2, vec![0, 2], vec![1, 0]).is_err());
        assert!(CsrGraph::from_raw_parts(2, vec![0, 1, 1], vec![1, 0]).is_err());
        assert!(CsrGraph::from_raw_parts(2, vec![0, 2, 1], vec![1, 0]).is_err());
        assert!(CsrGraph::from_raw_parts(2, vec![0, 1, 2], vec![1, 9]).is_err());
    }

    #[test]
    fn empty_graph_degenerate_stats() {
        let g = CsrGraph::from_directed_edges(0, &[]).unwrap();
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.density(), 0.0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", path4());
        assert!(s.contains("CsrGraph"));
        assert!(s.contains("num_nodes"));
    }
}
