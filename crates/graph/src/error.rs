//! Error types for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was at least the declared number of nodes.
    NodeOutOfBounds {
        /// The offending endpoint.
        node: u32,
        /// Number of nodes declared for the graph.
        num_nodes: usize,
    },
    /// The CSR row-pointer array was malformed (wrong length or
    /// non-monotone).
    MalformedRowPtr {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The adjacency was expected to be symmetric but an edge `(u, v)` had
    /// no reverse `(v, u)`.
    NotSymmetric {
        /// Source of the unpaired edge.
        from: u32,
        /// Destination of the unpaired edge.
        to: u32,
    },
    /// A permutation was not a bijection over `0..n`.
    InvalidPermutation {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Parsing a textual graph format failed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A parsed artefact's dimensions disagree with what the caller
    /// declared (e.g. a feature CSV whose row count does not match the
    /// graph's node count, or a ragged row).
    DimensionMismatch {
        /// What was being matched.
        what: String,
        /// The expected extent.
        expected: usize,
        /// The extent actually found.
        got: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for graph with {num_nodes} nodes")
            }
            GraphError::MalformedRowPtr { detail } => {
                write!(f, "malformed CSR row pointer: {detail}")
            }
            GraphError::NotSymmetric { from, to } => {
                write!(f, "edge ({from}, {to}) has no reverse edge; adjacency is not symmetric")
            }
            GraphError::InvalidPermutation { detail } => {
                write!(f, "invalid permutation: {detail}")
            }
            GraphError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            GraphError::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch: {what} expected {expected}, got {got}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfBounds { node: 9, num_nodes: 4 };
        assert_eq!(e.to_string(), "node 9 out of bounds for graph with 4 nodes");
        let e = GraphError::NotSymmetric { from: 1, to: 2 };
        assert!(e.to_string().contains("(1, 2)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
