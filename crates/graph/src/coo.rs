//! Coordinate-format edge lists.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::node::NodeId;

/// An edge list in coordinate (COO) form.
///
/// COO is the natural output format of the synthetic generators and the
/// input format of text edge-list files; [`CooGraph::to_csr`] converts to
/// the [`CsrGraph`] form consumed everywhere else.
///
/// # Example
///
/// ```
/// use igcn_graph::CooGraph;
///
/// let mut coo = CooGraph::new(3);
/// coo.push_undirected(0, 1);
/// coo.push_undirected(1, 2);
/// let g = coo.to_csr().unwrap();
/// assert_eq!(g.num_undirected_edges(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CooGraph {
    num_nodes: usize,
    edges: Vec<(u32, u32)>,
}

impl CooGraph {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        CooGraph { num_nodes, edges: Vec::new() }
    }

    /// Creates an edge list with pre-allocated capacity.
    pub fn with_capacity(num_nodes: usize, capacity: usize) -> Self {
        CooGraph { num_nodes, edges: Vec::with_capacity(capacity) }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of stored (directed) edge records, duplicates included.
    pub fn num_records(&self) -> usize {
        self.edges.len()
    }

    /// Appends a directed edge record.
    pub fn push_directed(&mut self, from: u32, to: u32) {
        self.edges.push((from, to));
    }

    /// Appends an undirected edge: both directions when `u != v`, a single
    /// self-loop record otherwise.
    pub fn push_undirected(&mut self, u: u32, v: u32) {
        self.edges.push((u, v));
        if u != v {
            self.edges.push((v, u));
        }
    }

    /// The stored edge records.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Converts to CSR, deduplicating and sorting neighbor lists.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if an endpoint is out of
    /// range.
    pub fn to_csr(&self) -> Result<CsrGraph, GraphError> {
        CsrGraph::from_directed_edges(self.num_nodes, &self.edges)
    }

    /// Whether the directed record `(from, to)` occurs at least once.
    pub fn contains(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.contains(&(from.value(), to.value()))
    }
}

impl Extend<(u32, u32)> for CooGraph {
    fn extend<T: IntoIterator<Item = (u32, u32)>>(&mut self, iter: T) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_undirected_adds_both_directions() {
        let mut coo = CooGraph::new(4);
        coo.push_undirected(1, 2);
        assert_eq!(coo.num_records(), 2);
        assert!(coo.contains(NodeId::new(1), NodeId::new(2)));
        assert!(coo.contains(NodeId::new(2), NodeId::new(1)));
    }

    #[test]
    fn self_loop_pushed_once() {
        let mut coo = CooGraph::new(4);
        coo.push_undirected(3, 3);
        assert_eq!(coo.num_records(), 1);
    }

    #[test]
    fn to_csr_dedups() {
        let mut coo = CooGraph::new(3);
        coo.push_directed(0, 1);
        coo.push_directed(0, 1);
        let g = coo.to_csr().unwrap();
        assert_eq!(g.num_directed_edges(), 1);
    }

    #[test]
    fn extend_appends_records() {
        let mut coo = CooGraph::new(5);
        coo.extend(vec![(0, 1), (1, 2)]);
        assert_eq!(coo.num_records(), 2);
    }

    #[test]
    fn to_csr_propagates_bounds_error() {
        let mut coo = CooGraph::new(2);
        coo.push_directed(0, 7);
        assert!(coo.to_csr().is_err());
    }
}
