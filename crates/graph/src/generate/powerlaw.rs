//! Preferential-attachment (Barabási–Albert) power-law graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::csr::CsrGraph;

/// Generates a Barabási–Albert preferential-attachment graph: nodes arrive
/// one at a time and connect `edges_per_node` edges to existing nodes with
/// probability proportional to current degree.
///
/// This produces the power-law degree distribution that drives AWB-GCN's
/// workload-imbalance problem (and I-GCN's hub detection), without planted
/// island structure.
///
/// # Example
///
/// ```
/// use igcn_graph::generate::barabasi_albert;
///
/// let g = barabasi_albert(500, 3, 11);
/// assert_eq!(g.num_nodes(), 500);
/// assert!(g.max_degree() > 3 * 5, "head of the distribution should be heavy");
/// ```
///
/// # Panics
///
/// Panics if `edges_per_node == 0`.
pub fn barabasi_albert(num_nodes: usize, edges_per_node: usize, seed: u64) -> CsrGraph {
    assert!(edges_per_node > 0, "edges_per_node must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let m = edges_per_node;
    let seed_nodes = (m + 1).min(num_nodes);
    let mut coo = CooGraph::with_capacity(num_nodes, num_nodes * m * 2);
    // `targets` holds one entry per edge endpoint, so uniform sampling from
    // it is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(num_nodes * m * 2);

    // Seed clique over the first few nodes.
    for i in 0..seed_nodes {
        for j in (i + 1)..seed_nodes {
            coo.push_undirected(i as u32, j as u32);
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }

    for v in seed_nodes..num_nodes {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v as u32)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != v as u32 {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            coo.push_undirected(v as u32, t);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    coo.to_csr().expect("BA endpoints in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_late_node_has_min_degree() {
        let g = barabasi_albert(300, 2, 1);
        for v in g.iter_nodes() {
            assert!(g.degree(v) >= 1, "node {v} isolated");
        }
    }

    #[test]
    fn power_law_head() {
        let g = barabasi_albert(2000, 3, 2);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        assert!(max > 8.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_m_panics() {
        let _ = barabasi_albert(10, 0, 0);
    }
}
