//! The hub-and-island planted-structure generator.
//!
//! This is the workhorse stand-in for the paper's real-world graphs. It
//! plants exactly the structure islandization is designed to discover:
//!
//! * **islands** — small groups of nodes with dense internal connectivity
//!   and *no* edges leaving the group except to hubs;
//! * **hubs** — a small set of high-degree nodes with power-law-ish degrees
//!   that attach to many islands (and to each other), acting as the points
//!   of contact between islands;
//! * **noise** — a configurable fraction of island-to-island "violating"
//!   edges that weaken the community structure (Reddit-like graphs get a
//!   high noise fraction, NELL-like graphs a very low one).
//!
//! The generator also returns ground truth (which node belongs to which
//! island, which nodes are hubs) so tests can score how well the runtime
//! islandization recovers the planted structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::csr::CsrGraph;

/// Configuration of the hub-and-island generator.
///
/// # Example
///
/// ```
/// use igcn_graph::generate::HubIslandConfig;
///
/// let g = HubIslandConfig::new(1_000, 40)
///     .island_size_range(4, 24)
///     .island_density(0.45)
///     .noise_fraction(0.02)
///     .generate(7);
/// assert_eq!(g.graph.num_nodes(), 1_000);
/// assert!(g.graph.is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HubIslandConfig {
    num_nodes: usize,
    num_hubs: usize,
    island_min: usize,
    island_max: usize,
    island_density: f64,
    hub_attach_islands_mean: f64,
    hub_degree_alpha: f64,
    inter_hub_density: f64,
    noise_fraction: f64,
    target_avg_degree: Option<f64>,
}

impl HubIslandConfig {
    /// Creates a configuration for `num_nodes` nodes of which `num_hubs`
    /// are hubs, with sensible citation-network-like defaults.
    ///
    /// # Panics
    ///
    /// Panics if `num_hubs >= num_nodes` and `num_nodes > 0`.
    pub fn new(num_nodes: usize, num_hubs: usize) -> Self {
        assert!(
            num_nodes == 0 || num_hubs < num_nodes,
            "hubs ({num_hubs}) must be fewer than nodes ({num_nodes})"
        );
        HubIslandConfig {
            num_nodes,
            num_hubs,
            island_min: 3,
            island_max: 24,
            island_density: 0.4,
            hub_attach_islands_mean: 6.0,
            hub_degree_alpha: 1.8,
            inter_hub_density: 0.08,
            noise_fraction: 0.01,
            target_avg_degree: None,
        }
    }

    /// Sets the minimum and maximum planted island size (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn island_size_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid island size range [{min}, {max}]");
        self.island_min = min;
        self.island_max = max;
        self
    }

    /// Sets the probability of each intra-island node pair being connected.
    pub fn island_density(mut self, p: f64) -> Self {
        self.island_density = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the mean number of islands each hub attaches to (scaled by the
    /// hub's power-law rank weight).
    pub fn hub_attachment(mut self, mean_islands: f64) -> Self {
        self.hub_attach_islands_mean = mean_islands.max(0.0);
        self
    }

    /// Sets the power-law exponent shaping hub degrees (larger = more
    /// skewed toward the top hub).
    pub fn hub_degree_alpha(mut self, alpha: f64) -> Self {
        self.hub_degree_alpha = alpha.max(0.0);
        self
    }

    /// Sets the probability of each hub pair being connected.
    pub fn inter_hub_density(mut self, p: f64) -> Self {
        self.inter_hub_density = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the fraction of edges that violate the island structure
    /// (island-to-island edges between different islands). `0.0` yields a
    /// perfectly islandizable graph; Reddit-like graphs use values around
    /// `0.15`.
    pub fn noise_fraction(mut self, f: f64) -> Self {
        self.noise_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Requests extra random island–hub edges until the average degree
    /// reaches approximately `avg` (useful for matching published dataset
    /// statistics).
    pub fn target_avg_degree(mut self, avg: f64) -> Self {
        self.target_avg_degree = Some(avg.max(0.0));
        self
    }

    /// Generates the graph with the given RNG seed.
    pub fn generate(&self, seed: u64) -> HubIslandGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_nodes;
        let h = self.num_hubs.min(n);

        // Hubs occupy IDs scattered through the space (not a contiguous
        // prefix) so that nothing downstream can cheat on ordering.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let hub_ids: Vec<u32> = ids[..h].to_vec();
        let island_pool: Vec<u32> = ids[h..].to_vec();

        // Partition the non-hub pool into islands.
        let mut islands: Vec<Vec<u32>> = Vec::new();
        let mut cursor = 0usize;
        while cursor < island_pool.len() {
            let remaining = island_pool.len() - cursor;
            let size = if remaining <= self.island_min {
                remaining
            } else {
                rng.gen_range(self.island_min..=self.island_max.min(remaining))
            };
            islands.push(island_pool[cursor..cursor + size].to_vec());
            cursor += size;
        }

        let mut membership = vec![u32::MAX; n];
        for (k, isl) in islands.iter().enumerate() {
            for &v in isl {
                membership[v as usize] = k as u32;
            }
        }

        let mut coo = CooGraph::new(n);

        // 1. Dense island interiors: each pair connected w.p. island_density,
        //    plus a Hamiltonian path to guarantee connectivity.
        for isl in &islands {
            for w in isl.windows(2) {
                coo.push_undirected(w[0], w[1]);
            }
            for i in 0..isl.len() {
                for j in (i + 2)..isl.len() {
                    if rng.gen_bool(self.island_density) {
                        coo.push_undirected(isl[i], isl[j]);
                    }
                }
            }
        }

        // 2. Hub attachments with power-law weights. The total hub edge
        //    budget is either derived from the target average degree (so
        //    the generated graph matches published dataset statistics) or,
        //    absent a target, from the per-hub island attachment mean. Hub
        //    ranked r receives a share proportional to (r+1)^-alpha.
        if h > 0 && !islands.is_empty() {
            // Every island contacts at least one hub — islands are defined
            // as hanging off hubs (Figure 1), and the Island Locator can
            // only seed BFS from hub neighbors, so an unattached island
            // would be undiscoverable until its own members hubify.
            for (k, isl) in islands.iter().enumerate() {
                let hub = hub_ids[k % h];
                let v = isl[rng.gen_range(0..isl.len())];
                coo.push_undirected(hub, v);
            }
            let weights: Vec<f64> =
                (0..h).map(|r| ((r + 1) as f64).powf(-self.hub_degree_alpha)).collect();
            let weight_total: f64 = weights.iter().sum();
            let budget: usize = match self.target_avg_degree {
                Some(target) => {
                    let want_records = (target * n as f64) as usize;
                    want_records.saturating_sub(coo.num_records()) / 2
                }
                None => {
                    let avg_island = (self.island_min + self.island_max) as f64 / 2.0;
                    (self.hub_attach_islands_mean * avg_island * h as f64 / 2.0) as usize
                }
            };
            // Hubs must be clearly separable from island interiors by
            // degree (that is what the Island Locator thresholds on), so
            // every hub receives at least ~2.5x a dense member's internal
            // degree — and on high-degree graphs, where members also
            // receive many hub edges, at least ~2x the average degree.
            let density_floor =
                (2.5 * self.island_density * self.island_max as f64).ceil() as usize + 4;
            let degree_floor =
                self.target_avg_degree.map(|d| (2.0 * d).ceil() as usize).unwrap_or(0);
            let min_quota = density_floor.max(degree_floor);
            for (r, &hub) in hub_ids.iter().enumerate() {
                let mut quota = ((weights[r] / weight_total) * budget as f64)
                    .round()
                    .max(min_quota as f64) as usize;
                while quota > 0 {
                    let isl = &islands[rng.gen_range(0..islands.len())];
                    // Attach to a contiguous run of distinct members: hubs
                    // contact many members of an island (the dense
                    // L-shapes of Figure 3), and distinct targets keep the
                    // edge budget honest after deduplication.
                    let attach = rng.gen_range(1..=isl.len()).min(quota);
                    let start = rng.gen_range(0..isl.len());
                    for i in 0..attach {
                        let v = isl[(start + i) % isl.len()];
                        coo.push_undirected(hub, v);
                    }
                    quota -= attach;
                }
            }
        }

        // 3. Inter-hub edges.
        for i in 0..h {
            for j in (i + 1)..h {
                if rng.gen_bool(self.inter_hub_density) {
                    coo.push_undirected(hub_ids[i], hub_ids[j]);
                }
            }
        }

        // 5. Structure-violating noise edges between distinct islands.
        if self.noise_fraction > 0.0 && islands.len() >= 2 {
            let noise_edges = (coo.num_records() as f64 / 2.0 * self.noise_fraction) as usize;
            for _ in 0..noise_edges {
                let a = island_pool[rng.gen_range(0..island_pool.len())];
                let b = island_pool[rng.gen_range(0..island_pool.len())];
                if membership[a as usize] != membership[b as usize] {
                    coo.push_undirected(a, b);
                }
            }
        }

        let graph = coo.to_csr().expect("generator produced in-range edges");
        HubIslandGraph { graph, hub_ids, islands, membership }
    }
}

/// A generated hub-and-island graph along with its planted ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HubIslandGraph {
    /// The generated symmetric graph.
    pub graph: CsrGraph,
    /// IDs of the planted hubs.
    pub hub_ids: Vec<u32>,
    /// The planted islands (lists of member node IDs).
    pub islands: Vec<Vec<u32>>,
    /// For each node, the planted island index, or `u32::MAX` for hubs.
    pub membership: Vec<u32>,
}

impl HubIslandGraph {
    /// Fraction of undirected edges that violate the planted structure
    /// (connect two different islands without going through a hub).
    pub fn violation_fraction(&self) -> f64 {
        let mut violations = 0usize;
        let mut total = 0usize;
        for (u, v) in self.graph.iter_edges() {
            if u >= v {
                continue;
            }
            total += 1;
            let mu = self.membership[u.index()];
            let mv = self.membership[v.index()];
            if mu != u32::MAX && mv != u32::MAX && mu != mv {
                violations += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            violations as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = HubIslandConfig::new(500, 20).generate(1);
        assert_eq!(g.graph.num_nodes(), 500);
        assert!(g.graph.num_undirected_edges() > 0);
        assert_eq!(g.hub_ids.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HubIslandConfig::new(300, 10).generate(42);
        let b = HubIslandConfig::new(300, 10).generate(42);
        assert_eq!(a.graph, b.graph);
        let c = HubIslandConfig::new(300, 10).generate(43);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn symmetric_output() {
        let g = HubIslandConfig::new(400, 16).generate(5);
        assert!(g.graph.is_symmetric());
    }

    #[test]
    fn zero_noise_has_no_violations() {
        let g = HubIslandConfig::new(600, 24).noise_fraction(0.0).generate(3);
        assert_eq!(g.violation_fraction(), 0.0);
    }

    #[test]
    fn noise_creates_violations() {
        let g = HubIslandConfig::new(600, 24).noise_fraction(0.3).generate(3);
        assert!(g.violation_fraction() > 0.0);
    }

    #[test]
    fn islands_respect_size_bounds() {
        let g = HubIslandConfig::new(800, 30).island_size_range(4, 10).generate(2);
        // All but possibly the final leftover island respect the bounds.
        for isl in &g.islands[..g.islands.len().saturating_sub(1)] {
            assert!(isl.len() >= 4 && isl.len() <= 10, "island size {}", isl.len());
        }
    }

    #[test]
    fn hubs_have_high_degree() {
        let g = HubIslandConfig::new(1000, 10).generate(11);
        let degrees = g.graph.degrees();
        let hub_avg: f64 = g.hub_ids.iter().map(|&v| degrees[v as usize] as f64).sum::<f64>()
            / g.hub_ids.len() as f64;
        let all_avg = g.graph.avg_degree();
        assert!(
            hub_avg > 2.0 * all_avg,
            "hub avg degree {hub_avg} not clearly above graph avg {all_avg}"
        );
    }

    #[test]
    fn target_avg_degree_reached() {
        let g = HubIslandConfig::new(500, 25).target_avg_degree(20.0).generate(9);
        assert!(g.graph.avg_degree() > 10.0, "avg degree {}", g.graph.avg_degree());
    }

    #[test]
    fn membership_consistent() {
        let g = HubIslandConfig::new(200, 8).generate(4);
        for (k, isl) in g.islands.iter().enumerate() {
            for &v in isl {
                assert_eq!(g.membership[v as usize], k as u32);
            }
        }
        for &hub in &g.hub_ids {
            assert_eq!(g.membership[hub as usize], u32::MAX);
        }
    }
}
