//! Recursive-matrix (R-MAT) power-law graph generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coo::CooGraph;
use crate::csr::CsrGraph;

/// Configuration of the R-MAT generator (Chakrabarti et al.).
///
/// R-MAT recursively subdivides the adjacency matrix into quadrants with
/// probabilities `(a, b, c, d)`; skewed probabilities yield the power-law,
/// self-similar non-zero distribution typical of real-world graphs. The
/// paper's Reddit stand-in uses R-MAT-style skew combined with weak planted
/// communities.
///
/// # Example
///
/// ```
/// use igcn_graph::generate::RmatConfig;
///
/// let g = RmatConfig::new(10, 8).generate(3);
/// assert_eq!(g.num_nodes(), 1024);
/// assert!(g.is_symmetric());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatConfig {
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
}

impl RmatConfig {
    /// Creates a configuration for a graph with `2^scale` nodes and
    /// `edge_factor * 2^scale` undirected edges, with the Graph500
    /// default quadrant probabilities `(0.57, 0.19, 0.19, 0.05)`.
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        RmatConfig { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19 }
    }

    /// Overrides the quadrant probabilities; `d` is implied as
    /// `1 - a - b - c`.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum above 1.
    pub fn probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0, "invalid R-MAT quadrants");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Number of nodes the generated graph will have.
    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }

    /// Generates the symmetric graph.
    pub fn generate(&self, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_nodes();
        let m = self.edge_factor * n;
        let mut coo = CooGraph::with_capacity(n, m * 2);
        for _ in 0..m {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..self.scale {
                let r: f64 = rng.gen();
                let (du, dv) = if r < self.a {
                    (0, 0)
                } else if r < self.a + self.b {
                    (0, 1)
                } else if r < self.a + self.b + self.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            if u != v {
                coo.push_undirected(u as u32, v as u32);
            }
        }
        coo.to_csr().expect("R-MAT endpoints are in range by construction")
    }
}

/// Generates an R-MAT graph with `2^scale` nodes; convenience wrapper over
/// [`RmatConfig`].
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    RmatConfig::new(scale, edge_factor).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(8, 4, 1);
        assert_eq!(g.num_nodes(), 256);
    }

    #[test]
    fn deterministic() {
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_ne!(rmat(8, 4, 7), rmat(8, 4, 8));
    }

    #[test]
    fn skew_produces_heavy_head() {
        let g = rmat(10, 8, 2);
        let mut degrees = g.degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = degrees[..degrees.len() / 10].iter().map(|&d| d as u64).sum();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        assert!(
            top_decile as f64 > 0.35 * total as f64,
            "top decile holds {top_decile} of {total} degree mass"
        );
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT quadrants")]
    fn bad_probabilities_panic() {
        let _ = RmatConfig::new(4, 4).probabilities(0.9, 0.2, 0.2);
    }
}
