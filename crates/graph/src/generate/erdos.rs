//! Erdős–Rényi random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooGraph;
use crate::csr::CsrGraph;

/// Generates a `G(n, m)` Erdős–Rényi graph: `num_edges` undirected edges
/// drawn uniformly (with rejection of self-loops).
///
/// Erdős–Rényi graphs have *no* community structure, making them the
/// adversarial input for islandization: nearly every node should end up a
/// hub or a tiny island, and the locality benefit should shrink — a useful
/// negative control in tests and ablation benches.
///
/// # Example
///
/// ```
/// use igcn_graph::generate::erdos_renyi;
///
/// let g = erdos_renyi(100, 300, 5);
/// assert_eq!(g.num_nodes(), 100);
/// assert!(g.is_symmetric());
/// ```
pub fn erdos_renyi(num_nodes: usize, num_edges: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooGraph::with_capacity(num_nodes, num_edges * 2);
    if num_nodes >= 2 {
        for _ in 0..num_edges {
            loop {
                let u = rng.gen_range(0..num_nodes as u32);
                let v = rng.gen_range(0..num_nodes as u32);
                if u != v {
                    coo.push_undirected(u, v);
                    break;
                }
            }
        }
    }
    coo.to_csr().expect("erdos-renyi endpoints in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_about_requested_edges() {
        let g = erdos_renyi(200, 500, 1);
        // Duplicates collapse, so at most 500.
        assert!(g.num_undirected_edges() <= 500);
        assert!(g.num_undirected_edges() > 400);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(50, 200, 2);
        assert_eq!(g.count_self_loops(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(64, 100, 3), erdos_renyi(64, 100, 3));
    }

    #[test]
    fn degenerate_sizes() {
        let g = erdos_renyi(0, 10, 4);
        assert_eq!(g.num_nodes(), 0);
        let g = erdos_renyi(1, 10, 4);
        assert_eq!(g.num_directed_edges(), 0);
    }
}
