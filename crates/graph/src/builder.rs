//! Incremental graph construction.

use crate::coo::CooGraph;
use crate::csr::CsrGraph;
use crate::error::GraphError;

/// Builder for [`CsrGraph`] values.
///
/// A thin, non-consuming builder over a [`CooGraph`] that supports the
/// common "accumulate undirected edges, then freeze" construction used by
/// the generators, plus optional self-loop and symmetry policies.
///
/// # Example
///
/// ```
/// use igcn_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(5)
///     .undirected_edge(0, 1)
///     .undirected_edge(1, 2)
///     .undirected_edge(3, 4)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_undirected_edges(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    coo: CooGraph,
    drop_self_loops: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { coo: CooGraph::new(num_nodes), drop_self_loops: false, symmetrize: false }
    }

    /// Adds an undirected edge (both directions).
    pub fn undirected_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.coo.push_undirected(u, v);
        self
    }

    /// Adds a directed edge.
    pub fn directed_edge(&mut self, from: u32, to: u32) -> &mut Self {
        self.coo.push_directed(from, to);
        self
    }

    /// Adds many undirected edges.
    pub fn undirected_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.coo.push_undirected(u, v);
        }
        self
    }

    /// Drop self-loop records at build time.
    pub fn drop_self_loops(&mut self, yes: bool) -> &mut Self {
        self.drop_self_loops = yes;
        self
    }

    /// Add the reverse of every record at build time, guaranteeing a
    /// symmetric result.
    pub fn symmetrize(&mut self, yes: bool) -> &mut Self {
        self.symmetrize = yes;
        self
    }

    /// Number of edge records accumulated so far.
    pub fn num_records(&self) -> usize {
        self.coo.num_records()
    }

    /// Freezes the accumulated edges into a [`CsrGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if any endpoint is out of
    /// range.
    pub fn build(&self) -> Result<CsrGraph, GraphError> {
        let mut edges: Vec<(u32, u32)> = self.coo.edges().to_vec();
        if self.drop_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        if self.symmetrize {
            let mut extra: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (v, u)).collect();
            edges.append(&mut extra);
        }
        CsrGraph::from_directed_edges(self.coo.num_nodes(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn builder_chains() {
        let g = GraphBuilder::new(3)
            .undirected_edge(0, 1)
            .directed_edge(2, 0)
            .symmetrize(true)
            .build()
            .unwrap();
        assert!(g.is_symmetric());
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn drop_self_loops_filters() {
        let g = GraphBuilder::new(2)
            .undirected_edge(0, 0)
            .undirected_edge(0, 1)
            .drop_self_loops(true)
            .build()
            .unwrap();
        assert_eq!(g.count_self_loops(), 0);
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    fn undirected_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.undirected_edges(vec![(0, 1), (2, 3)]);
        assert_eq!(b.num_records(), 4);
        let g = b.build().unwrap();
        assert_eq!(g.num_undirected_edges(), 2);
    }
}
