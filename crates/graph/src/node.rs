//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (vertex) in a graph.
///
/// A newtype over `u32`, which bounds graphs at ~4.2 billion nodes — far
/// beyond anything the I-GCN evaluation touches (Reddit, the largest, has
/// 233 K nodes) while keeping adjacency arrays compact, exactly as the
/// hardware stores node IDs in its FIFOs and tables.
///
/// # Example
///
/// ```
/// use igcn_graph::NodeId;
///
/// let n = NodeId::new(42);
/// assert_eq!(n.index(), 42usize);
/// assert_eq!(u32::from(n), 42u32);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its raw `u32` value.
    pub const fn new(value: u32) -> Self {
        NodeId(value)
    }

    /// Creates a node identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "node index {index} exceeds u32::MAX");
        NodeId(index as u32)
    }

    /// Returns the identifier as a `usize` suitable for indexing arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let n = NodeId::new(17);
        assert_eq!(u32::from(n), 17);
        assert_eq!(NodeId::from(17u32), n);
    }

    #[test]
    fn index_matches_value() {
        let n = NodeId::from_index(1234);
        assert_eq!(n.index(), 1234);
        assert_eq!(n.value(), 1234);
    }

    #[test]
    fn ordering_follows_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5).max(NodeId::new(3)), NodeId::new(5));
    }

    #[test]
    fn debug_display_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", NodeId::new(3)), "3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
