//! Textual graph I/O.
//!
//! A minimal self-describing edge-list format:
//!
//! ```text
//! # comment lines start with '#'
//! nodes <n>
//! <u> <v>
//! <u> <v>
//! ...
//! ```
//!
//! Edges are stored directed; symmetric graphs round-trip exactly.

use std::io::{BufRead, Write};

use crate::csr::CsrGraph;
use crate::error::GraphError;

/// Writes a graph in the edge-list format.
///
/// A `&mut` reference can be passed for `writer` since `Write` is
/// implemented for `&mut W`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# igcn edge list v1")?;
    writeln!(writer, "nodes {}", graph.num_nodes())?;
    for (u, v) in graph.iter_edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a graph from the edge-list format.
///
/// A `&mut` reference can be passed for `reader` since `BufRead` is
/// implemented for `&mut R`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed input; I/O errors are
/// converted to a parse error carrying the line number.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut num_nodes: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: lineno, detail: format!("i/o error: {e}") })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            let n = rest.trim().parse::<usize>().map_err(|_| GraphError::Parse {
                line: lineno,
                detail: format!("invalid node count {rest:?}"),
            })?;
            num_nodes = Some(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let u = parts.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| {
            GraphError::Parse { line: lineno, detail: "expected source node id".to_string() }
        })?;
        let v = parts.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| {
            GraphError::Parse { line: lineno, detail: "expected destination node id".to_string() }
        })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                detail: "trailing tokens after edge".to_string(),
            });
        }
        edges.push((u, v));
    }
    let num_nodes = num_nodes
        .ok_or(GraphError::Parse { line: 0, detail: "missing `nodes <n>` header".to_string() })?;
    CsrGraph::from_directed_edges(num_nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nnodes 3\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_directed_edges(), 2);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_edge_list("0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn malformed_edge_rejected() {
        let err = read_edge_list("nodes 2\n0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("destination"));
        let err = read_edge_list("nodes 2\n0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn out_of_bounds_edge_rejected() {
        let err = read_edge_list("nodes 2\n0 9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }
}
