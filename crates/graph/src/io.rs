//! Textual graph I/O.
//!
//! Two ingestion paths:
//!
//! * [`read_edge_list`] — the crate's own self-describing format
//!   (strict: exactly one `nodes <n>` header, then edges);
//! * [`read_edge_list_flexible`] — streaming ingest of real-world
//!   edge-list dumps (SNAP-style `.txt`, Matrix-Market-ish pair lines):
//!   headerless files infer the node count, directed dumps can be
//!   symmetrised on the fly, and lines are consumed one at a time from
//!   any `BufRead` so arbitrarily large files never need to be held as
//!   text. The snapshot tool (`igcn-bench`'s `snapshot_tool build
//!   --edge-list`) feeds dataset dumps through this into binary
//!   snapshots.
//!
//! The strict format:
//!
//! ```text
//! # comment lines start with '#'
//! nodes <n>
//! <u> <v>
//! <u> <v>
//! ...
//! ```
//!
//! Edges are stored directed; symmetric graphs round-trip exactly.

use std::io::{BufRead, Write};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::features::SparseFeatures;

/// Writes a graph in the edge-list format.
///
/// A `&mut` reference can be passed for `writer` since `Write` is
/// implemented for `&mut W`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# igcn edge list v1")?;
    writeln!(writer, "nodes {}", graph.num_nodes())?;
    for (u, v) in graph.iter_edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Parses one `<u> <v>` edge line.
fn parse_edge(line: &str, lineno: usize) -> Result<(u32, u32), GraphError> {
    let mut parts = line.split_whitespace();
    let u = parts.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| GraphError::Parse {
        line: lineno,
        detail: "expected source node id".to_string(),
    })?;
    let v = parts.next().and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| GraphError::Parse {
        line: lineno,
        detail: "expected destination node id".to_string(),
    })?;
    if parts.next().is_some() {
        return Err(GraphError::Parse {
            line: lineno,
            detail: "trailing tokens after edge".to_string(),
        });
    }
    Ok((u, v))
}

/// Reads a graph from the strict edge-list format.
///
/// The header is mandatory and unique: a missing `nodes <n>` line, an
/// edge *before* the header, or a second (even identical) header are
/// all rejected — a duplicated header is the signature of concatenated
/// dumps, and silently keeping the last value would mis-size the graph.
///
/// A `&mut` reference can be passed for `reader` since `BufRead` is
/// implemented for `&mut R`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed input; I/O errors are
/// converted to a parse error carrying the line number.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut num_nodes: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: lineno, detail: format!("i/o error: {e}") })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            if num_nodes.is_some() {
                return Err(GraphError::Parse {
                    line: lineno,
                    detail: "duplicate `nodes <n>` header".to_string(),
                });
            }
            let n = rest.trim().parse::<usize>().map_err(|_| GraphError::Parse {
                line: lineno,
                detail: format!("invalid node count {rest:?}"),
            })?;
            num_nodes = Some(n);
            continue;
        }
        if num_nodes.is_none() {
            return Err(GraphError::Parse {
                line: lineno,
                detail: "edge before the `nodes <n>` header".to_string(),
            });
        }
        edges.push(parse_edge(line, lineno)?);
    }
    let num_nodes = num_nodes
        .ok_or(GraphError::Parse { line: 0, detail: "missing `nodes <n>` header".to_string() })?;
    CsrGraph::from_directed_edges(num_nodes, &edges)
}

/// Options for [`read_edge_list_flexible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListOptions {
    /// Insert the reverse of every edge (GCN adjacency must be
    /// symmetric; most real-world dumps list each undirected edge
    /// once).
    pub symmetrize: bool,
    /// Drop `(v, v)` lines instead of storing them (the I-GCN engine
    /// rejects self-loops; many dumps contain a few).
    pub drop_self_loops: bool,
}

impl Default for EdgeListOptions {
    /// Symmetrise and drop self-loops — what an I-GCN serving graph
    /// needs.
    fn default() -> Self {
        EdgeListOptions { symmetrize: true, drop_self_loops: true }
    }
}

/// Streaming ingest of a real-world edge-list dump.
///
/// Consumes `reader` line by line: `#`/`%`-prefixed comments and blank
/// lines are skipped, an optional `nodes <n>` header (ours) is honored
/// if it appears *before* any edge (duplicates are rejected exactly as
/// in [`read_edge_list`]), and otherwise the node count is inferred as
/// `max endpoint + 1`. Endpoint pairs may be separated by any
/// whitespace (SNAP dumps use tabs).
///
/// # Errors
///
/// [`GraphError::Parse`] for malformed lines or a header appearing
/// after edges; [`GraphError::NodeOutOfBounds`] if a declared header is
/// smaller than an endpoint.
pub fn read_edge_list_flexible<R: BufRead>(
    reader: R,
    opts: EdgeListOptions,
) -> Result<CsrGraph, GraphError> {
    let mut declared_nodes: Option<usize> = None;
    let mut max_endpoint: Option<u32> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: lineno, detail: format!("i/o error: {e}") })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            if declared_nodes.is_some() {
                return Err(GraphError::Parse {
                    line: lineno,
                    detail: "duplicate `nodes <n>` header".to_string(),
                });
            }
            if !edges.is_empty() {
                return Err(GraphError::Parse {
                    line: lineno,
                    detail: "`nodes <n>` header after edges".to_string(),
                });
            }
            declared_nodes = Some(rest.trim().parse::<usize>().map_err(|_| GraphError::Parse {
                line: lineno,
                detail: format!("invalid node count {rest:?}"),
            })?);
            continue;
        }
        let (u, v) = parse_edge(line, lineno)?;
        // Every mentioned endpoint sizes the graph — including the
        // endpoints of dropped self-loop lines, which still name a
        // node the dump considers present.
        max_endpoint = Some(max_endpoint.map_or(u.max(v), |m| m.max(u).max(v)));
        if u == v && opts.drop_self_loops {
            continue;
        }
        edges.push((u, v));
        if opts.symmetrize && u != v {
            edges.push((v, u));
        }
    }
    let num_nodes = match declared_nodes {
        Some(n) => n,
        None => max_endpoint.map_or(0, |m| m as usize + 1),
    };
    CsrGraph::from_directed_edges(num_nodes, &edges)
}

/// Reads a dense feature matrix from CSV: one row per node,
/// comma-separated floats, all rows the same width. `#`-prefixed
/// comments and blank lines are skipped. Zero entries are not stored
/// (the result is a [`SparseFeatures`] matrix, which is what bag-of-
/// words feature dumps amount to).
///
/// When `expected_rows` is given (the node count of the graph the
/// features belong to), a row-count disagreement is a typed
/// [`GraphError::DimensionMismatch`] instead of a downstream shape
/// failure — the contract `snapshot_tool build --features-csv` relies
/// on.
///
/// # Errors
///
/// [`GraphError::Parse`] for unparseable values,
/// [`GraphError::DimensionMismatch`] for ragged rows or a row count
/// that disagrees with `expected_rows`.
pub fn read_features_csv<R: BufRead>(
    reader: R,
    expected_rows: Option<usize>,
) -> Result<SparseFeatures, GraphError> {
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: lineno, detail: format!("i/o error: {e}") })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row: Vec<(u32, f32)> = Vec::new();
        let mut cols = 0usize;
        for (c, tok) in line.split(',').enumerate() {
            let v: f32 = tok.trim().parse().map_err(|_| GraphError::Parse {
                line: lineno,
                detail: format!("invalid feature value {:?} in column {c}", tok.trim()),
            })?;
            if v != 0.0 {
                row.push((c as u32, v));
            }
            cols = c + 1;
        }
        match width {
            None => width = Some(cols),
            Some(w) if w != cols => {
                return Err(GraphError::DimensionMismatch {
                    what: format!("feature CSV row {lineno} width"),
                    expected: w,
                    got: cols,
                });
            }
            Some(_) => {}
        }
        rows.push(row);
    }
    if let Some(expected) = expected_rows {
        if rows.len() != expected {
            return Err(GraphError::DimensionMismatch {
                what: "feature CSV rows vs graph nodes".to_string(),
                expected,
                got: rows.len(),
            });
        }
    }
    let num_rows = rows.len();
    let num_cols = width.unwrap_or(0);
    Ok(SparseFeatures::from_rows(num_rows, num_cols, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nnodes 3\n0 1\n# another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_directed_edges(), 2);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_edge_list("# only comments\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn duplicate_header_rejected() {
        // Same value twice: still rejected (concatenated-dump signature).
        let err = read_edge_list("nodes 3\nnodes 3\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        assert!(err.to_string().contains("duplicate"));
        // Conflicting value: rejected, not silently last-wins.
        let err = read_edge_list("nodes 3\n0 1\nnodes 9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn edge_before_header_rejected() {
        let err = read_edge_list("0 1\nnodes 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("before"));
    }

    #[test]
    fn malformed_edge_rejected() {
        let err = read_edge_list("nodes 2\n0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("destination"));
        let err = read_edge_list("nodes 2\n0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn out_of_bounds_edge_rejected() {
        let err = read_edge_list("nodes 2\n0 9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }

    #[test]
    fn flexible_infers_nodes_and_symmetrizes() {
        // SNAP-style: comments with '#', tabs, no header, one direction.
        let text = "# Directed graph\n% another comment style\n0\t1\n1\t2\n4\t0\n";
        let g = read_edge_list_flexible(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.is_symmetric());
        assert_eq!(g.num_undirected_edges(), 3);
    }

    #[test]
    fn flexible_drops_self_loops_and_honors_header() {
        let text = "nodes 6\n0 0\n0 1\n";
        let g = read_edge_list_flexible(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.count_self_loops(), 0);
        assert_eq!(g.num_undirected_edges(), 1);
        // Raw mode keeps the dump as-is.
        let raw = EdgeListOptions { symmetrize: false, drop_self_loops: false };
        let g = read_edge_list_flexible(text.as_bytes(), raw).unwrap();
        assert_eq!(g.count_self_loops(), 1);
        assert_eq!(g.num_directed_edges(), 2);
    }

    #[test]
    fn flexible_rejects_late_or_duplicate_header() {
        let err = read_edge_list_flexible("0 1\nnodes 5\n".as_bytes(), EdgeListOptions::default())
            .unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err =
            read_edge_list_flexible("nodes 5\nnodes 5\n".as_bytes(), EdgeListOptions::default())
                .unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn flexible_dropped_self_loops_still_size_the_graph() {
        // The highest node ID appears only in a dropped self-loop
        // line; the node must still exist in the inferred graph.
        let text = "5 5\n0 1\n";
        let g = read_edge_list_flexible(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.count_self_loops(), 0);
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    fn features_csv_parses_and_sparsifies() {
        let text = "# id-less dense rows\n1.0, 0.0, 2.5\n0, 3, 0\n0.5,0.5,0.5\n";
        let x = read_features_csv(text.as_bytes(), Some(3)).unwrap();
        assert_eq!(x.num_rows(), 3);
        assert_eq!(x.num_cols(), 3);
        assert_eq!(x.nnz(), 6);
        let (cols, vals) = x.row(crate::NodeId::new(0));
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.5]);
    }

    #[test]
    fn features_csv_row_count_mismatch_is_typed() {
        let err = read_features_csv("1,2\n3,4\n".as_bytes(), Some(5)).unwrap_err();
        assert!(matches!(err, GraphError::DimensionMismatch { expected: 5, got: 2, .. }));
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn features_csv_ragged_row_is_typed() {
        let err = read_features_csv("1,2,3\n4,5\n".as_bytes(), None).unwrap_err();
        assert!(matches!(err, GraphError::DimensionMismatch { expected: 3, got: 2, .. }));
    }

    #[test]
    fn features_csv_bad_value_is_a_parse_error() {
        let err = read_features_csv("1,zebra\n".as_bytes(), None).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn flexible_empty_input_is_an_empty_graph() {
        let g =
            read_edge_list_flexible("# nothing\n".as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        // A declared header with no edges sizes the graph.
        let g =
            read_edge_list_flexible("nodes 7\n".as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 7);
    }

    #[test]
    fn flexible_undeclared_small_header_is_out_of_bounds() {
        let err = read_edge_list_flexible("nodes 2\n0 5\n".as_bytes(), EdgeListOptions::default())
            .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfBounds { .. }));
    }
}
