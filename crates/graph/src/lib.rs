//! Graph substrate for the I-GCN reproduction.
//!
//! This crate provides the graph data structures and synthetic workloads on
//! which the islandization algorithm of
//! *I-GCN: A Graph Convolutional Network Accelerator with Runtime Locality
//! Enhancement through Islandization* (MICRO 2021) operates:
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency, the format streamed by
//!   the accelerator's Task Generator and TP-BFS engines.
//! * [`generate`] — synthetic graph generators, including the
//!   hub-and-island planted-structure model used as a stand-in for the
//!   paper's real-world datasets.
//! * [`datasets`] — named stand-ins for Cora, Citeseer, Pubmed, NELL and
//!   Reddit, matched to the published statistics (node/edge counts, feature
//!   width and sparsity, community strength).
//! * [`features`] — sparse node-feature matrices.
//! * [`permutation`] — node relabellings used by the reordering baselines.
//! * [`stats`] — degree/community/locality statistics and density grids
//!   ("spy plots") used by the Figure 9/13 harnesses.
//!
//! # Example
//!
//! ```
//! use igcn_graph::datasets::Dataset;
//!
//! let data = Dataset::Cora.generate_scaled(0.25, 7);
//! assert!(data.graph.num_nodes() > 0);
//! assert!(data.graph.is_symmetric());
//! ```

pub mod builder;
pub mod coo;
pub mod csr;
pub mod datasets;
pub mod error;
pub mod features;
pub mod generate;
pub mod io;
pub mod node;
pub mod permutation;
pub mod stats;

pub use builder::GraphBuilder;
pub use coo::CooGraph;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use features::{CsrRowWriter, SparseFeatures};
pub use node::NodeId;
pub use permutation::Permutation;
