//! The materialised island execution schedule.
//!
//! The Island Collector issues island tasks to PEs in waves of
//! `num_pes`; within a wave the islands are data-independent — they
//! touch disjoint island-node output rows, and their hub partial
//! results accumulate in separate DHUB-PRC transactions that the merge
//! phase (software) or the ring network (hardware) serialises. This
//! module materialises that structure as an explicit [`IslandSchedule`]:
//! the wavefront ranges, a per-island work estimate, and the modelled
//! worker occupancy for any software thread count.
//!
//! The schedule is what makes parallel execution *deterministic*: the
//! sequential path iterates the waves in order, and the parallel path
//! fans the same waves across a thread pool but merges per-island
//! results back in wave order, so outputs and statistics are identical
//! at every thread count.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, NodeId};

use crate::partition::IslandPartition;
use crate::stats::OccupancyStats;

/// Wavefronts of data-independent island tasks plus per-island work
/// estimates.
///
/// # Example
///
/// ```
/// use igcn_core::schedule::IslandSchedule;
/// use igcn_core::{islandize, IslandizationConfig};
/// use igcn_graph::generate::HubIslandConfig;
///
/// let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(5);
/// let p = islandize(&g.graph, &IslandizationConfig::default());
/// let schedule = IslandSchedule::new(&g.graph, &p, 8);
/// assert_eq!(schedule.num_islands(), p.num_islands());
/// assert!(schedule.occupancy(4).utilisation() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandSchedule {
    num_islands: usize,
    wave_width: usize,
    /// Work estimate per island: bitmap adjacency entries (member
    /// degrees) plus one combination unit per member.
    work: Vec<u64>,
}

impl IslandSchedule {
    /// Builds the schedule for `partition` with issue waves of
    /// `wave_width` islands (the consumer's PE count).
    ///
    /// # Panics
    ///
    /// Panics if `wave_width == 0`.
    pub fn new(graph: &CsrGraph, partition: &IslandPartition, wave_width: usize) -> Self {
        assert!(wave_width > 0, "wave width must be positive");
        let work = partition
            .islands()
            .iter()
            .map(|isl| {
                let degree_sum: u64 =
                    isl.nodes.iter().map(|&v| graph.degree(NodeId::new(v)) as u64).sum();
                degree_sum + (isl.nodes.len() + isl.hubs.len()) as u64
            })
            .collect();
        IslandSchedule { num_islands: partition.num_islands(), wave_width, work }
    }

    /// Reassembles a schedule from externally stored parts (the
    /// deserialisation path of the snapshot store): one work estimate
    /// per island, issued in waves of `wave_width`.
    ///
    /// # Errors
    ///
    /// Returns a description of the defect if `wave_width` is zero.
    pub fn from_raw_parts(wave_width: usize, work: Vec<u64>) -> Result<Self, String> {
        if wave_width == 0 {
            return Err("schedule wave width must be positive".to_string());
        }
        Ok(IslandSchedule { num_islands: work.len(), wave_width, work })
    }

    /// Number of scheduled islands.
    pub fn num_islands(&self) -> usize {
        self.num_islands
    }

    /// Islands issued per wave.
    pub fn wave_width(&self) -> usize {
        self.wave_width
    }

    /// Number of issue waves (the last may be narrower).
    pub fn num_waves(&self) -> usize {
        self.num_islands.div_ceil(self.wave_width)
    }

    /// Iterates the island-index ranges of each wave, in issue order.
    pub fn waves(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        let width = self.wave_width;
        let n = self.num_islands;
        (0..self.num_waves()).map(move |w| (w * width)..((w + 1) * width).min(n))
    }

    /// Per-island work estimates, indexed by island.
    pub fn work(&self) -> &[u64] {
        &self.work
    }

    /// Total work units across all islands.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Models the occupancy of `workers` software threads: islands are
    /// assigned round-robin by their position within each wave, which is
    /// the deterministic equivalent of the pool's dynamic claiming.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn occupancy(&self, workers: usize) -> OccupancyStats {
        assert!(workers > 0, "occupancy needs at least one worker");
        let mut busy = vec![0u64; workers];
        for wave in self.waves() {
            for (pos, island) in wave.enumerate() {
                busy[pos % workers] += self.work[island];
            }
        }
        OccupancyStats { worker_busy_cycles: busy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::locator::islandize;
    use igcn_graph::generate::HubIslandConfig;

    fn schedule() -> IslandSchedule {
        let g = HubIslandConfig::new(400, 16).noise_fraction(0.02).generate(11);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        IslandSchedule::new(&g.graph, &p, 8)
    }

    #[test]
    fn waves_cover_every_island_once() {
        let s = schedule();
        let mut seen = vec![false; s.num_islands()];
        for wave in s.waves() {
            assert!(wave.len() <= s.wave_width());
            for i in wave {
                assert!(!seen[i], "island {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "every island must be scheduled");
    }

    #[test]
    fn occupancy_conserves_work() {
        let s = schedule();
        for workers in [1, 2, 4, 8, 64] {
            let occ = s.occupancy(workers);
            assert_eq!(occ.workers(), workers);
            assert_eq!(occ.total_busy(), s.total_work(), "workers={workers}");
            let u = occ.utilisation();
            assert!((0.0..=1.0).contains(&u), "utilisation {u} out of range");
        }
        // One worker is trivially fully utilised.
        assert!((s.occupancy(1).utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_workers_never_increase_makespan() {
        let s = schedule();
        let mut last = u64::MAX;
        for workers in [1, 2, 4, 8] {
            let makespan = s.occupancy(workers).makespan();
            assert!(makespan <= last, "makespan grew at {workers} workers");
            last = makespan;
        }
    }

    #[test]
    fn empty_partition_schedules_nothing() {
        let g = igcn_graph::CsrGraph::from_undirected_edges(2, &[(0, 1)]).unwrap();
        let p = islandize(&g, &IslandizationConfig::default());
        let s = IslandSchedule::new(&g, &p, 4);
        assert_eq!(s.num_islands(), p.num_islands());
        let occ = s.occupancy(3);
        assert_eq!(occ.total_busy(), s.total_work());
    }
}
