//! Error types for islandization and island execution.

use std::error::Error;
use std::fmt;

/// Errors raised by partition validation and island execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A node was left unclassified, or classified more than once.
    ClassificationViolation {
        /// The offending node.
        node: u32,
        /// Human-readable description.
        detail: String,
    },
    /// An edge was covered zero or multiple times by the partition's tasks.
    CoverageViolation {
        /// Source endpoint.
        from: u32,
        /// Destination endpoint.
        to: u32,
        /// Number of times the edge was covered.
        times: usize,
    },
    /// An island exceeded `c_max`.
    IslandTooLarge {
        /// Index of the island in the partition.
        island: usize,
        /// Number of nodes in the island.
        size: usize,
        /// The configured bound.
        c_max: usize,
    },
    /// An island node has a neighbor that is neither in the island nor a
    /// hub — the "space between L-shapes" would not be blank.
    ClosureViolation {
        /// The island node.
        node: u32,
        /// Its out-of-island, non-hub neighbor.
        neighbor: u32,
    },
    /// The graph passed to islandization contained self-loops (strip them
    /// first; GCN self-contributions are handled by the normalisation).
    SelfLoops {
        /// A node with a self-loop.
        node: u32,
    },
    /// The locator exceeded its round bound without classifying every node.
    RoundLimitExceeded {
        /// The configured bound.
        max_rounds: u32,
        /// Nodes still unclassified.
        remaining: usize,
    },
    /// A dimension of a request, weight matrix or graph update does not
    /// match what the backend expects.
    ShapeMismatch {
        /// Which dimension mismatched, e.g. `"feature rows vs graph
        /// nodes"`.
        what: String,
        /// The expected size.
        expected: usize,
        /// The size actually supplied.
        got: usize,
    },
    /// `infer`/`report` was called before `prepare` installed a model.
    NotPrepared {
        /// Name of the backend that was not prepared.
        backend: String,
    },
    /// The graph has no nodes or no edges — there is nothing to
    /// islandize or aggregate, so the engine refuses to build rather
    /// than panic deep inside the locator or consumer.
    EmptyGraph {
        /// Node count of the offending graph.
        num_nodes: usize,
        /// Directed edge count of the offending graph.
        num_edges: usize,
    },
    /// A [`GraphUpdate`](crate::accel::GraphUpdate) asked to remove an
    /// edge that is not present in the serving graph.
    MissingEdge {
        /// One endpoint of the missing edge.
        from: u32,
        /// The other endpoint.
        to: u32,
    },
    /// A parallel island task referenced a hub absent from the
    /// precomputed hub XW table — the table is stale (e.g. captured
    /// before a graph update promoted new hubs). Rebuild the table for
    /// the current partition and retry.
    HubTableMiss {
        /// The hub missing from the table.
        hub: u32,
    },
    /// A component of the backend (a shard of a fleet, a worker…)
    /// failed mid-request — typically a contained panic. The request
    /// was not served; the backend reports
    /// [`BackendHealth::Degraded`](crate::accel::BackendHealth) until
    /// the component is repaired (e.g. `ShardedEngine::heal`).
    BackendFailed {
        /// Name of the failed component, e.g. `"shard 2"`.
        backend: String,
        /// Human-readable failure description (panic message).
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ClassificationViolation { node, detail } => {
                write!(f, "classification violation at node {node}: {detail}")
            }
            CoreError::CoverageViolation { from, to, times } => {
                write!(f, "edge ({from}, {to}) covered {times} times, expected exactly once")
            }
            CoreError::IslandTooLarge { island, size, c_max } => {
                write!(f, "island {island} has {size} nodes, exceeding c_max {c_max}")
            }
            CoreError::ClosureViolation { node, neighbor } => {
                write!(
                    f,
                    "island node {node} has neighbor {neighbor} outside its island and not a hub"
                )
            }
            CoreError::SelfLoops { node } => {
                write!(f, "graph contains a self-loop at node {node}; strip self-loops first")
            }
            CoreError::RoundLimitExceeded { max_rounds, remaining } => {
                write!(
                    f,
                    "island locator did not converge in {max_rounds} rounds ({remaining} nodes left)"
                )
            }
            CoreError::ShapeMismatch { what, expected, got } => {
                write!(f, "shape mismatch ({what}): expected {expected}, got {got}")
            }
            CoreError::NotPrepared { backend } => {
                write!(f, "backend {backend} has no prepared model; call prepare() first")
            }
            CoreError::EmptyGraph { num_nodes, num_edges } => {
                write!(
                    f,
                    "graph is empty ({num_nodes} nodes, {num_edges} directed edges); \
                     the engine needs at least one node and one edge"
                )
            }
            CoreError::MissingEdge { from, to } => {
                write!(f, "edge ({from}, {to}) is not present in the graph and cannot be removed")
            }
            CoreError::HubTableMiss { hub } => {
                write!(
                    f,
                    "hub {hub} is missing from the precomputed hub XW table; \
                     the table is stale for the current partition"
                )
            }
            CoreError::BackendFailed { backend, detail } => {
                write!(f, "backend component {backend} failed: {detail}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::CoverageViolation { from: 1, to: 2, times: 0 };
        assert!(e.to_string().contains("covered 0 times"));
        let e = CoreError::IslandTooLarge { island: 3, size: 40, c_max: 32 };
        assert!(e.to_string().contains("exceeding c_max 32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
