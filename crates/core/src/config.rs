//! Configuration of the Island Locator and Island Consumer.

use serde::{Deserialize, Serialize};

/// How the initial hub threshold `TH_o` (Algorithm 1 input) is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdInit {
    /// `TH_o = max(2, fraction · max_degree)`. The paper's Island Locator
    /// starts from a high threshold so only the strongest hubs are peeled
    /// first; half the maximum degree is a robust default.
    MaxDegreeFraction(f64),
    /// A fixed absolute threshold.
    Absolute(u32),
}

impl ThresholdInit {
    /// Resolves the initial threshold for a graph with the given maximum
    /// degree.
    pub fn resolve(self, max_degree: usize) -> u32 {
        match self {
            ThresholdInit::MaxDegreeFraction(f) => ((max_degree as f64 * f).round() as u32).max(2),
            ThresholdInit::Absolute(t) => t.max(1),
        }
    }
}

/// The per-round threshold decay `Decay()` of Algorithm 1 (line 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayPolicy {
    /// `TH ← max(floor, TH / 2)` — geometric decay, the default.
    Halve,
    /// `TH ← max(floor, TH − step)` — linear decay.
    Linear {
        /// Amount subtracted each round.
        step: u32,
    },
}

impl DecayPolicy {
    /// Applies one round of decay; the result never goes below 1.
    pub fn apply(self, threshold: u32) -> u32 {
        match self {
            DecayPolicy::Halve => (threshold / 2).max(1),
            DecayPolicy::Linear { step } => threshold.saturating_sub(step.max(1)).max(1),
        }
    }
}

/// Configuration of the Island Locator (Algorithm 1 inputs).
///
/// # Example
///
/// ```
/// use igcn_core::IslandizationConfig;
///
/// let cfg = IslandizationConfig::default()
///     .with_c_max(16)
///     .with_engines(32);
/// assert_eq!(cfg.c_max, 16);
/// assert_eq!(cfg.p2_engines, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IslandizationConfig {
    /// Initial hub threshold `TH_o`.
    pub threshold_init: ThresholdInit,
    /// Per-round threshold decay.
    pub decay: DecayPolicy,
    /// Maximum number of nodes in an island (`c_max`). TP-BFS drops tasks
    /// that grow beyond it.
    pub c_max: usize,
    /// Parallel factor of hub detection (`P1`): node-degree FIFO lanes.
    pub p1_lanes: usize,
    /// Parallel factor of island search (`P2`): TP-BFS engines.
    pub p2_engines: usize,
    /// Safety bound on locator rounds (the algorithm terminates on its own;
    /// this converts a would-be hang into a panic in debug runs).
    pub max_rounds: u32,
}

impl Default for IslandizationConfig {
    /// The configuration the paper evaluates: 64 TP-BFS engines, 16 hub
    /// FIFO lanes, islands of at most 64 nodes, halving decay from half
    /// the maximum degree. (The paper leaves `c_max` unspecified; 64
    /// gives enough headroom for a few noise-merged communities to close
    /// as one island while keeping the bitmap buffer at 64×64 bits per
    /// engine.)
    fn default() -> Self {
        IslandizationConfig {
            threshold_init: ThresholdInit::MaxDegreeFraction(0.5),
            decay: DecayPolicy::Halve,
            c_max: 64,
            p1_lanes: 16,
            p2_engines: 64,
            max_rounds: 512,
        }
    }
}

impl IslandizationConfig {
    /// Sets `c_max`.
    ///
    /// # Panics
    ///
    /// Panics if `c_max == 0`.
    pub fn with_c_max(mut self, c_max: usize) -> Self {
        assert!(c_max > 0, "c_max must be positive");
        self.c_max = c_max;
        self
    }

    /// Sets the TP-BFS engine count (`P2`).
    ///
    /// # Panics
    ///
    /// Panics if `engines == 0`.
    pub fn with_engines(mut self, engines: usize) -> Self {
        assert!(engines > 0, "at least one TP-BFS engine is required");
        self.p2_engines = engines;
        self
    }

    /// Sets the hub-detection lane count (`P1`).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "at least one hub-detection lane is required");
        self.p1_lanes = lanes;
        self
    }

    /// Sets the initial threshold policy.
    pub fn with_threshold_init(mut self, init: ThresholdInit) -> Self {
        self.threshold_init = init;
        self
    }

    /// Sets the decay policy.
    pub fn with_decay(mut self, decay: DecayPolicy) -> Self {
        self.decay = decay;
        self
    }

    /// The minimum loop-free degree a node must keep to remain a hub
    /// when edges are *removed* (`apply_update` demotes hubs that fall
    /// below it). This is the lowest threshold the configured
    /// [`ThresholdInit`] can resolve to: the floor of `Absolute`, and 2
    /// for `MaxDegreeFraction` (which never resolves lower).
    pub fn hub_floor(&self) -> u32 {
        match self.threshold_init {
            ThresholdInit::Absolute(t) => t.max(1),
            ThresholdInit::MaxDegreeFraction(_) => 2,
        }
    }
}

/// How pre-aggregation groups are materialised in the Island Consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreaggPolicy {
    /// Pre-aggregate every group of `k` consecutive members at combination
    /// time, as §3.3.1 describes ("conducts pre-aggregation at the
    /// completion of the combination of every k node").
    Eager,
    /// Materialise a group sum only when the window scan first uses it
    /// (an ablation; saves work on very sparse islands).
    Lazy,
}

/// Configuration of the Island Consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumerConfig {
    /// Pre-aggregation group width `k` (the `1×k` scan-window size).
    pub k: usize,
    /// Number of processing elements.
    pub num_pes: usize,
    /// Pre-aggregation materialisation policy.
    pub preagg: PreaggPolicy,
    /// Whether shared-neighbor redundancy removal is enabled (disable for
    /// the ablation baseline of Figure 10).
    pub redundancy_removal: bool,
}

impl Default for ConsumerConfig {
    /// Evaluation defaults: `k = 4` pre-aggregation window (Figure 7's
    /// walk-through uses k = 2 "for clarity"; k is customisable and 4
    /// prunes more on the dense islands real graphs contain), 8 PEs,
    /// eager pre-aggregation, redundancy removal on.
    fn default() -> Self {
        ConsumerConfig { k: 4, num_pes: 8, preagg: PreaggPolicy::Eager, redundancy_removal: true }
    }
}

impl ConsumerConfig {
    /// Sets the pre-aggregation window width `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a window of 1 cannot share anything) or `k > 64`
    /// (the scan window is a packed 64-bit mask).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 2, "pre-aggregation window must be at least 2");
        assert!(k <= 64, "pre-aggregation window must be at most 64");
        self.k = k;
        self
    }

    /// Sets the PE count.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    pub fn with_pes(mut self, num_pes: usize) -> Self {
        assert!(num_pes > 0, "at least one PE is required");
        self.num_pes = num_pes;
        self
    }

    /// Enables or disables redundancy removal.
    pub fn with_redundancy_removal(mut self, on: bool) -> Self {
        self.redundancy_removal = on;
        self
    }

    /// Sets the pre-aggregation policy.
    pub fn with_preagg(mut self, policy: PreaggPolicy) -> Self {
        self.preagg = policy;
        self
    }
}

/// Configuration of software parallel execution (thread-level fan-out
/// of the island schedule and of request batches).
///
/// With `num_threads == 1` (the default) every path runs the original
/// sequential code and is bit-for-bit identical to the pre-parallel
/// engine. With more threads, outputs are still bit-identical at any
/// thread count: island results merge in schedule order and per-request
/// work is independent, so no floating-point reassociation depends on
/// thread timing.
///
/// # Example
///
/// ```
/// use igcn_core::ExecConfig;
///
/// let cfg = ExecConfig::default().with_threads(4).with_parallel_batch(false);
/// assert_eq!(cfg.num_threads, 4);
/// assert!(cfg.parallel_islands);
/// assert!(!cfg.parallel_batch);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Worker threads available to the engine (including the calling
    /// thread). 1 = fully sequential.
    pub num_threads: usize,
    /// Fan per-island aggregation work across the pool inside a single
    /// inference.
    pub parallel_islands: bool,
    /// Fan `infer_batch` requests across the pool (each request then
    /// executes its layers sequentially to avoid nested pools).
    pub parallel_batch: bool,
    /// Quantize request features to per-column symmetric int8 before
    /// gathering (LW-GCN-style; see `igcn_linalg::quant`). Values are
    /// dequantized to f32 before any arithmetic, the CSR structure is
    /// preserved bit for bit (so `ExecStats` and `account` are
    /// unaffected), and the dequantization error is bounded by
    /// `QuantizedFeatures::error_bound`. Default **off**: outputs carry
    /// the bounded quantization error, so enable only when the 4×
    /// smaller feature value stream is worth it.
    pub quantized_features: bool,
}

impl Default for ExecConfig {
    /// Sequential execution over the physical layout: one thread, both
    /// fan-out dimensions armed for when the thread count is raised,
    /// exact f32 features.
    fn default() -> Self {
        ExecConfig {
            num_threads: 1,
            parallel_islands: true,
            parallel_batch: true,
            quantized_features: false,
        }
    }
}

impl ExecConfig {
    /// Sets the worker thread count.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        assert!(num_threads > 0, "at least one thread is required");
        self.num_threads = num_threads;
        self
    }

    /// Enables or disables intra-request island fan-out.
    pub fn with_parallel_islands(mut self, on: bool) -> Self {
        self.parallel_islands = on;
        self
    }

    /// Enables or disables cross-request batch fan-out.
    pub fn with_parallel_batch(mut self, on: bool) -> Self {
        self.parallel_batch = on;
        self
    }

    /// Enables or disables the int8 quantized feature path.
    pub fn with_quantized_features(mut self, on: bool) -> Self {
        self.quantized_features = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_config_defaults_are_sequential() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.num_threads, 1);
        assert!(cfg.parallel_islands);
        assert!(cfg.parallel_batch);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ExecConfig::default().with_threads(0);
    }

    #[test]
    fn threshold_init_resolution() {
        assert_eq!(ThresholdInit::MaxDegreeFraction(0.5).resolve(100), 50);
        assert_eq!(ThresholdInit::MaxDegreeFraction(0.5).resolve(1), 2);
        assert_eq!(ThresholdInit::Absolute(7).resolve(100), 7);
        assert_eq!(ThresholdInit::Absolute(0).resolve(100), 1);
    }

    #[test]
    fn decay_floors_at_one() {
        assert_eq!(DecayPolicy::Halve.apply(8), 4);
        assert_eq!(DecayPolicy::Halve.apply(1), 1);
        assert_eq!(DecayPolicy::Linear { step: 3 }.apply(5), 2);
        assert_eq!(DecayPolicy::Linear { step: 3 }.apply(2), 1);
        assert_eq!(DecayPolicy::Linear { step: 0 }.apply(5), 4);
    }

    #[test]
    fn builder_chains() {
        let cfg = IslandizationConfig::default()
            .with_c_max(8)
            .with_engines(4)
            .with_lanes(2)
            .with_threshold_init(ThresholdInit::Absolute(10))
            .with_decay(DecayPolicy::Linear { step: 2 });
        assert_eq!(cfg.c_max, 8);
        assert_eq!(cfg.p2_engines, 4);
        assert_eq!(cfg.p1_lanes, 2);
    }

    #[test]
    #[should_panic(expected = "c_max must be positive")]
    fn zero_cmax_panics() {
        let _ = IslandizationConfig::default().with_c_max(0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_below_two_panics() {
        let _ = ConsumerConfig::default().with_k(1);
    }

    #[test]
    fn consumer_defaults_match_paper() {
        let c = ConsumerConfig::default();
        assert_eq!(c.k, 4);
        assert!(c.redundancy_removal);
        assert_eq!(c.preagg, PreaggPolicy::Eager);
    }
}
