//! Island types: member lists and the local adjacency bitmap.

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, NodeId};

/// One discovered island: a group of nodes with strong internal
/// connections whose only external connections are to hubs.
///
/// Members are stored in BFS discovery order (the order `v_local` filled
/// up in Algorithm 4); connected hubs in first-contact order. The
/// [`IslandBitmap`] orders columns hubs-first, exactly like the Figure 7
/// walk-through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Island {
    /// Island member node IDs (BFS order).
    pub nodes: Vec<u32>,
    /// Hubs this island connects to (first-contact order, deduplicated).
    pub hubs: Vec<u32>,
    /// The locator round (0-based) in which the island was found.
    pub round: u32,
    /// The TP-BFS engine that found it (for utilization accounting).
    pub engine: u32,
}

impl Island {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the island has no members (never produced by the locator;
    /// exists for container-convention completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds the island-local adjacency bitmap from the graph, without
    /// diagonal entries.
    ///
    /// Rows and columns are ordered `[hubs..., nodes...]`. The bitmap holds
    /// island↔island and island↔hub adjacency in both orientations but
    /// *no* hub↔hub entries (those are covered by inter-hub tasks).
    pub fn bitmap(&self, graph: &CsrGraph) -> IslandBitmap {
        IslandBitmap::build(graph, &self.hubs, &self.nodes, false)
    }

    /// Builds the bitmap with the `Ã = A + I` diagonal set on island-node
    /// rows — the layout the Island Consumer scans, so self-contributions
    /// ride the same pre-aggregated windows as neighbor contributions.
    /// Hub rows carry no diagonal (a hub appears in many islands; its
    /// self-contribution is added exactly once when its partial-result row
    /// is initialised).
    pub fn bitmap_with_self(&self, graph: &CsrGraph) -> IslandBitmap {
        IslandBitmap::build(graph, &self.hubs, &self.nodes, true)
    }
}

/// The dense local adjacency of one island task — the structure the
/// Island Consumer's `1×k` scan window walks (Figure 7).
///
/// # Example
///
/// ```
/// use igcn_core::IslandBitmap;
/// use igcn_graph::CsrGraph;
///
/// // Hub 0 connected to island {1, 2}; 1-2 connected internally.
/// let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
/// let bm = IslandBitmap::build(&g, &[0], &[1, 2], false);
/// assert_eq!(bm.dim(), 3);
/// assert!(bm.get(0, 1)); // hub row ↔ island col
/// assert!(!bm.get(0, 0)); // no diagonal
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandBitmap {
    dim: usize,
    num_hubs: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Global node IDs in bitmap order: `[hubs..., nodes...]`.
    members: Vec<u32>,
}

impl IslandBitmap {
    /// Builds the bitmap for `hubs` + `nodes` from graph adjacency;
    /// `include_diagonal` sets the `Ã = A + I` self bits on island-node
    /// rows (hub rows never carry a diagonal).
    ///
    /// # Panics
    ///
    /// Panics if a member ID is out of range for the graph.
    pub fn build(graph: &CsrGraph, hubs: &[u32], nodes: &[u32], include_diagonal: bool) -> Self {
        let num_hubs = hubs.len();
        let dim = num_hubs + nodes.len();
        let words_per_row = dim.div_ceil(64);
        let mut bits = vec![0u64; dim * words_per_row];
        let members: Vec<u32> = hubs.iter().chain(nodes.iter()).copied().collect();

        // Local index lookup. Islands are small (≤ c_max + a few hubs), so
        // a sorted probe vector beats a HashMap here.
        let mut index: Vec<(u32, usize)> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        index.sort_unstable_by_key(|&(v, _)| v);
        let local_of = |v: u32| -> Option<usize> {
            index.binary_search_by_key(&v, |&(x, _)| x).ok().map(|pos| index[pos].1)
        };

        // Walk island-node adjacency only: island↔island entries are seen
        // from both endpoints; island↔hub entries are mirrored manually.
        // This mirrors the hardware, which fills the bitmap from the
        // adjacency lists streamed during TP-BFS (island rows only).
        for (local_row, &v) in nodes.iter().enumerate() {
            let row = num_hubs + local_row;
            if include_diagonal {
                set_bit(&mut bits, words_per_row, row, row);
            }
            for &nb in graph.neighbors(NodeId::new(v)) {
                if nb == v {
                    continue; // defensive: self-loops are excluded
                }
                if let Some(col) = local_of(nb) {
                    set_bit(&mut bits, words_per_row, row, col);
                    if col < num_hubs {
                        // Mirror the hub row (hub adjacency is never read).
                        set_bit(&mut bits, words_per_row, col, row);
                    }
                }
            }
        }
        IslandBitmap { dim, num_hubs, words_per_row, bits, members }
    }

    /// Reassembles a bitmap from externally stored parts (the
    /// deserialisation path of the snapshot store).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (member count vs
    /// hub count, bit-array length vs the row stride).
    pub fn from_raw_parts(
        num_hubs: usize,
        members: Vec<u32>,
        bits: Vec<u64>,
    ) -> Result<Self, String> {
        let dim = members.len();
        if num_hubs > dim {
            return Err(format!("bitmap claims {num_hubs} hubs but only {dim} members"));
        }
        let words_per_row = dim.div_ceil(64);
        if bits.len() != dim * words_per_row {
            return Err(format!(
                "bitmap bit array has {} words, expected {} ({dim} rows × {words_per_row})",
                bits.len(),
                dim * words_per_row
            ));
        }
        Ok(IslandBitmap { dim, num_hubs, words_per_row, bits, members })
    }

    /// Side length of the (square) bitmap: hubs + island nodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `u64` words per bitmap row (`ceil(dim / 64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The raw packed bit rows (`dim × words_per_row` words, row-major)
    /// — the serialisation twin of [`IslandBitmap::from_raw_parts`].
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// Number of leading rows/columns that are hubs.
    pub fn num_hubs(&self) -> usize {
        self.num_hubs
    }

    /// Number of island-node rows/columns.
    pub fn num_nodes(&self) -> usize {
        self.dim - self.num_hubs
    }

    /// Global node ID of local index `i` (hubs first).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn member(&self, i: usize) -> u32 {
        self.members[i]
    }

    /// All members in bitmap order (`[hubs..., nodes...]`).
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Whether local `(row, col)` is connected.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.dim && col < self.dim, "bitmap index out of range");
        let w = self.bits[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    /// Total set bits (directed adjacency entries covered by this task).
    pub fn nnz(&self) -> u64 {
        self.bits.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Set bits in row `row` within the half-open column window
    /// `[start, start + width)` (clamped to `dim`), returned as a packed
    /// little-endian mask — exactly what the `1×k` scan window sees.
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()` or `width > 64`.
    pub fn window(&self, row: usize, start: usize, width: usize) -> u64 {
        assert!(row < self.dim, "row out of range");
        assert!(width <= 64, "window wider than 64 is not supported");
        let end = (start + width).min(self.dim);
        if start >= end {
            return 0;
        }
        let mut mask = 0u64;
        for (offset, col) in (start..end).enumerate() {
            if self.get(row, col) {
                mask |= 1 << offset;
            }
        }
        mask
    }

    /// Iterates over the set columns of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= dim()`.
    pub fn row_cols(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(row < self.dim, "row out of range");
        (0..self.dim).filter(move |&c| self.get(row, c))
    }
}

fn set_bit(bits: &mut [u64], words_per_row: usize, row: usize, col: usize) {
    bits[row * words_per_row + col / 64] |= 1 << (col % 64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub 0; island {1,2,3} as a triangle, all touching the hub.
    fn example() -> (CsrGraph, IslandBitmap) {
        let g =
            CsrGraph::from_undirected_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (1, 3)])
                .unwrap();
        let bm = IslandBitmap::build(&g, &[0], &[1, 2, 3], false);
        (g, bm)
    }

    #[test]
    fn dims_and_membership() {
        let (_, bm) = example();
        assert_eq!(bm.dim(), 4);
        assert_eq!(bm.num_hubs(), 1);
        assert_eq!(bm.num_nodes(), 3);
        assert_eq!(bm.member(0), 0);
        assert_eq!(bm.members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn symmetry_and_no_diagonal() {
        let (_, bm) = example();
        for r in 0..4 {
            assert!(!bm.get(r, r), "diagonal must be empty");
            for c in 0..4 {
                assert_eq!(bm.get(r, c), bm.get(c, r), "bitmap must be symmetric");
            }
        }
    }

    #[test]
    fn nnz_counts_directed_entries() {
        let (_, bm) = example();
        // 6 undirected edges → 12 directed, all inside the task.
        assert_eq!(bm.nnz(), 12);
    }

    #[test]
    fn no_hub_hub_entries() {
        // Hubs 0, 1 connected to each other and both to island {2, 3}.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let bm = IslandBitmap::build(&g, &[0, 1], &[2, 3], false);
        assert!(!bm.get(0, 1), "hub-hub edge must not be in the island task");
        assert!(bm.get(0, 2)); // hub0 - node2
        assert!(bm.get(3, 1)); // node3 - hub1
    }

    #[test]
    fn window_masks() {
        let (_, bm) = example();
        // Row 1 (island node 1): connected to hub 0 (col 0), nodes 2,3 (cols 2,3).
        assert_eq!(bm.window(1, 0, 2), 0b01);
        assert_eq!(bm.window(1, 2, 2), 0b11);
        // Clamped window at the edge.
        assert_eq!(bm.window(1, 3, 2), 0b1);
        // Empty window beyond the edge.
        assert_eq!(bm.window(1, 4, 2), 0);
    }

    #[test]
    fn row_cols_iterates_set_columns() {
        let (_, bm) = example();
        let cols: Vec<usize> = bm.row_cols(0).collect();
        assert_eq!(cols, vec![1, 2, 3]);
    }

    #[test]
    fn wide_islands_use_multiple_words() {
        // A star with 70 leaves forced into one bitmap exercises >1 word/row.
        let edges: Vec<(u32, u32)> = (1..=70).map(|v| (0u32, v)).collect();
        let g = CsrGraph::from_undirected_edges(71, &edges).unwrap();
        let nodes: Vec<u32> = (1..=70).collect();
        let bm = IslandBitmap::build(&g, &[0], &nodes, false);
        assert_eq!(bm.dim(), 71);
        assert_eq!(bm.nnz(), 140);
        assert!(bm.get(0, 70));
        assert!(bm.get(70, 0));
    }

    #[test]
    fn island_struct_helpers() {
        let (g, _) = example();
        let isl = Island { nodes: vec![1, 2, 3], hubs: vec![0], round: 0, engine: 0 };
        assert_eq!(isl.len(), 3);
        assert!(!isl.is_empty());
        let bm = isl.bitmap(&g);
        assert_eq!(bm.dim(), 4);
    }
}
