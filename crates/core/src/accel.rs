//! The unified `Accelerator` serving API.
//!
//! The paper's evaluation is a *cross-platform* story — I-GCN against
//! HyGCN-style hybrid architectures, the AWB-GCN/SIGMA dataflows and the
//! PyG/DGL software stacks — and a serving system needs every one of
//! those execution backends behind one interface. This module defines
//! that interface:
//!
//! * [`Accelerator`] — `prepare` / `infer` / `infer_batch` / `report`,
//!   object-safe and `Send + Sync` so prepared backends can be stored in
//!   an `Arc` and shared across request-handling threads;
//! * [`InferenceRequest`] / [`InferenceResponse`] — the owned request
//!   and response envelopes batched-serving paths pass around;
//! * [`ExecReport`] — one backend-agnostic cost report (ops, traffic,
//!   cycles, latency, energy) every backend fills as far as its model
//!   can;
//! * [`GraphUpdate`] / [`UpdateReport`] — evolving-graph maintenance,
//!   consumed by `IGcnEngine::apply_update`;
//! * [`CpuReference`] — the plain software forward pass of `igcn-gnn`
//!   behind the same trait, serving as ground truth for every other
//!   backend.
//!
//! Implementations in this workspace: [`crate::IGcnEngine`] (islandized
//! execution), [`CpuReference`], and — through `igcn_sim::SimBackend` —
//! the I-GCN timing model plus the AWB-GCN, HyGCN, SIGMA and CPU/GPU
//! platform simulators of `igcn-baselines`.

use std::sync::Arc;
use std::time::Instant;

use igcn_gnn::{reference_forward, GnnModel, ModelWeights, ModelWorkload};
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_linalg::DenseMatrix;
use igcn_obs::TraceCtx;

use crate::error::CoreError;
use crate::stats::{ExecStats, LocatorStats};

/// One inference request: the node features to push through the
/// prepared model, plus a caller-chosen correlation id that is echoed in
/// the [`InferenceResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Caller-chosen correlation id (echoed back; not interpreted).
    pub id: u64,
    /// Input node features; rows must match the backend's graph.
    pub features: SparseFeatures,
    /// Trace-tree context the serving edge attached
    /// ([`TraceCtx::NONE`] = untraced; engines parent their layer spans
    /// under it). Never affects outputs — only observability.
    pub trace: TraceCtx,
}

impl InferenceRequest {
    /// Wraps `features` with correlation id 0 and no trace attached.
    pub fn new(features: SparseFeatures) -> Self {
        InferenceRequest { id: 0, features, trace: TraceCtx::NONE }
    }

    /// Sets the correlation id.
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Attaches a trace-tree context.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }
}

/// The response to one [`InferenceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Output features, one row per node.
    pub output: DenseMatrix,
    /// Cost report of this inference on this backend.
    pub report: ExecReport,
}

/// A backend-agnostic execution cost report.
///
/// Every backend fills the fields its model defines and leaves the rest
/// at zero: the islandized engine reports exact operation/traffic
/// counts and locator cycles but no wall-clock; the hardware simulators
/// report modelled latency and energy; the CPU reference measures host
/// wall-clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Backend name as shown in result tables.
    pub backend: String,
    /// Scalar operations executed (after any pruning).
    pub total_ops: u64,
    /// Off-chip traffic in bytes (host traffic for software backends).
    pub offchip_bytes: u64,
    /// Clock cycles, when the backend models a clock (0 otherwise).
    pub cycles: u64,
    /// End-to-end latency in seconds (0 when the backend has no time
    /// model).
    pub latency_s: f64,
    /// Energy in joules (0 when the backend has no energy model).
    pub energy_j: f64,
    /// Fraction of aggregation work pruned by redundancy removal
    /// (I-GCN backends only; 0 elsewhere).
    pub aggregation_pruning_rate: f64,
    /// Modelled busy work-unit cycles per parallel worker (empty when
    /// the backend has no parallel occupancy model — equivalent to one
    /// fully utilised worker).
    pub worker_busy_cycles: Vec<u64>,
    /// Parallel worker utilisation in `[0, 1]` (1.0 when there is no
    /// occupancy model or a single worker).
    pub utilisation: f64,
}

impl ExecReport {
    /// Builds a report from the islandized engine's exact statistics.
    pub fn from_stats(backend: impl Into<String>, stats: &ExecStats) -> Self {
        let total_ops = stats.layers.iter().map(|l| l.total_scalar_ops()).sum();
        let offchip_bytes = stats.layers.iter().map(|l| l.traffic.total_bytes()).sum();
        ExecReport {
            backend: backend.into(),
            total_ops,
            offchip_bytes,
            cycles: stats.locator.virtual_cycles,
            latency_s: 0.0,
            energy_j: 0.0,
            aggregation_pruning_rate: stats.aggregation_pruning_rate(),
            worker_busy_cycles: stats.occupancy.worker_busy_cycles.clone(),
            utilisation: stats.occupancy.utilisation(),
        }
    }

    /// Number of parallel workers the report models (1 without an
    /// occupancy model).
    pub fn num_workers(&self) -> usize {
        self.worker_busy_cycles.len().max(1)
    }

    /// Latency in microseconds (the unit the paper's tables report).
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Speedup of `self` over `other` (> 1 means `self` is faster).
    /// Meaningful only between backends that model time.
    pub fn speedup_over(&self, other: &ExecReport) -> f64 {
        other.latency_s / self.latency_s
    }

    /// Table 2's energy-efficiency metric (0 when the backend has no
    /// energy model).
    pub fn graphs_per_kilojoule(&self) -> f64 {
        if self.energy_j <= 0.0 {
            0.0
        } else {
            1000.0 / self.energy_j
        }
    }
}

/// A batch of structural changes to an evolving graph: undirected edges
/// to add and/or remove, with optional node growth.
///
/// Removals are applied before additions, so an edge listed in both
/// vectors ends up present.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphUpdate {
    /// Undirected edges to add, as `(a, b)` node pairs.
    pub added_edges: Vec<(u32, u32)>,
    /// Undirected edges to remove; every pair must currently be present
    /// (in either orientation).
    pub removed_edges: Vec<(u32, u32)>,
    /// New total node count, when the update also appends nodes. `None`
    /// keeps the current count (endpoints must then be in range).
    pub new_num_nodes: Option<usize>,
}

impl GraphUpdate {
    /// An update that adds `edges` between existing nodes.
    pub fn add_edges(edges: Vec<(u32, u32)>) -> Self {
        GraphUpdate { added_edges: edges, ..Default::default() }
    }

    /// An update that removes currently present `edges`.
    pub fn remove_edges(edges: Vec<(u32, u32)>) -> Self {
        GraphUpdate { removed_edges: edges, ..Default::default() }
    }

    /// Adds `edges` to whatever the update already carries.
    pub fn and_add_edges(mut self, edges: Vec<(u32, u32)>) -> Self {
        self.added_edges.extend(edges);
        self
    }

    /// Removes `edges` in addition to whatever the update already
    /// carries.
    pub fn and_remove_edges(mut self, edges: Vec<(u32, u32)>) -> Self {
        self.removed_edges.extend(edges);
        self
    }

    /// Grows the graph to `n` nodes (appended at the end).
    pub fn with_num_nodes(mut self, n: usize) -> Self {
        self.new_num_nodes = Some(n);
        self
    }
}

/// Outcome of applying a [`GraphUpdate`] through
/// `IGcnEngine::apply_update`.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Islands dissolved because an added or removed edge touched them
    /// (directly, or through a demoted hub they contact).
    pub dissolved_islands: usize,
    /// Nodes reclassified (dissolved members plus demoted hubs plus
    /// appended nodes).
    pub reclassified_nodes: usize,
    /// Hubs demoted because edge removals dropped their degree below
    /// the hub floor.
    pub demoted_hubs: usize,
    /// Node count after the update.
    pub num_nodes: usize,
    /// Locator statistics of the incremental rounds only — the runtime
    /// restructuring cost that overlaps the next inference.
    pub locator_stats: LocatorStats,
}

/// A GCN inference backend behind the unified serving API.
///
/// The lifecycle is: construct over an `Arc<CsrGraph>`, [`prepare`]
/// once with a model and its weights, then serve [`infer`] /
/// [`infer_batch`] / [`report`] calls from shared references (all three
/// take `&self`, and the supertraits make prepared backends shareable
/// across threads).
///
/// [`prepare`]: Accelerator::prepare
/// [`infer`]: Accelerator::infer
/// [`infer_batch`]: Accelerator::infer_batch
/// [`report`]: Accelerator::report
pub trait Accelerator: Send + Sync {
    /// Backend name as reported in result tables.
    fn name(&self) -> String;

    /// The graph this backend serves.
    fn graph(&self) -> &CsrGraph;

    /// Validates and installs a model + weights pair. Must be called
    /// before [`Accelerator::infer`]; may be called again to swap
    /// models.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if the weights do not match the
    /// model's layer dimensions.
    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError>;

    /// Runs one inference with the prepared model.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPrepared`] before [`Accelerator::prepare`];
    /// [`CoreError::ShapeMismatch`] if the request's features do not
    /// match the graph or the model's input width.
    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError>;

    /// Runs a batch of requests, preserving order.
    ///
    /// The default maps [`Accelerator::infer`] over the slice; backends
    /// with per-call setup (normalisation, consumer state) override it
    /// to amortise that setup across the batch.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::infer`]; the first failing request aborts the
    /// batch.
    fn infer_batch(
        &self,
        requests: &[InferenceRequest],
    ) -> Result<Vec<InferenceResponse>, CoreError> {
        requests.iter().map(|r| self.infer(r)).collect()
    }

    /// Produces the cost report of `request` without doing the
    /// floating-point work (the accounting path used by timing models
    /// on large graphs).
    ///
    /// # Errors
    ///
    /// As [`Accelerator::infer`].
    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError>;

    /// The backend's live health. The default is [`BackendHealth::Ready`]
    /// — a backend with no internal failure domains is healthy exactly
    /// when it exists. Composite backends (shard fleets, serving tiers)
    /// override this to report contained component failures; serving
    /// edges poll it to publish readiness.
    fn health(&self) -> BackendHealth {
        BackendHealth::Ready
    }

    /// Per-component health, for backends with internal failure
    /// domains: one `(component name, health)` pair per domain (e.g.
    /// one per shard for a sharded fleet). The default is empty — a
    /// monolithic backend has no components to enumerate. Serving
    /// edges surface this on `/healthz` and `/stats` so an operator
    /// can see *which* shard is down, not just that one is.
    fn component_health(&self) -> Vec<(String, BackendHealth)> {
        Vec::new()
    }
}

/// Live health of an [`Accelerator`], as reported by
/// [`Accelerator::health`].
///
/// `Degraded` means the backend still *exists* but some internal
/// component has failed (a shard is down, a worker is wedged):
/// requests may be rejected with typed errors until the component is
/// repaired. It is a reporting state, not an error — the decision of
/// whether to keep routing traffic belongs to the serving edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendHealth {
    /// Every component is serving.
    Ready,
    /// One or more components have failed; requests may be rejected
    /// until repair.
    Degraded {
        /// Human-readable summary of what is down.
        detail: String,
    },
}

impl BackendHealth {
    /// `true` exactly for [`BackendHealth::Ready`].
    pub fn is_ready(&self) -> bool {
        matches!(self, BackendHealth::Ready)
    }
}

/// Checks that `weights` matches `model` layer by layer (shared by
/// every backend's [`Accelerator::prepare`]).
///
/// # Errors
///
/// [`CoreError::ShapeMismatch`] naming the first mismatching dimension.
pub fn validate_weights(model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
    if weights.num_layers() != model.num_layers() {
        return Err(CoreError::ShapeMismatch {
            what: "weight layer count vs model layers".to_string(),
            expected: model.num_layers(),
            got: weights.num_layers(),
        });
    }
    for (i, layer) in model.layers().iter().enumerate() {
        let w = weights.layer(i);
        if w.rows() != layer.in_dim {
            return Err(CoreError::ShapeMismatch {
                what: format!("layer {i} weight rows vs in_dim"),
                expected: layer.in_dim,
                got: w.rows(),
            });
        }
        if w.cols() != layer.out_dim {
            return Err(CoreError::ShapeMismatch {
                what: format!("layer {i} weight cols vs out_dim"),
                expected: layer.out_dim,
                got: w.cols(),
            });
        }
    }
    Ok(())
}

/// Checks that a request's features match the serving graph and the
/// prepared model's input width (shared by every backend's
/// [`Accelerator::infer`]).
///
/// # Errors
///
/// [`CoreError::ShapeMismatch`] naming the offending dimension.
pub fn validate_request(
    graph: &CsrGraph,
    model: &GnnModel,
    request: &InferenceRequest,
) -> Result<(), CoreError> {
    if request.features.num_rows() != graph.num_nodes() {
        return Err(CoreError::ShapeMismatch {
            what: "feature rows vs graph nodes".to_string(),
            expected: graph.num_nodes(),
            got: request.features.num_rows(),
        });
    }
    let in_dim = model.layers().first().map(|l| l.in_dim).unwrap_or(0);
    if request.features.num_cols() != in_dim {
        return Err(CoreError::ShapeMismatch {
            what: "feature cols vs model input width".to_string(),
            expected: in_dim,
            got: request.features.num_cols(),
        });
    }
    Ok(())
}

/// The plain software forward pass of `igcn-gnn` behind the
/// [`Accelerator`] trait.
///
/// Every other backend is verified against this one (the conformance
/// suite runs them all on the same graph and compares outputs). Its
/// [`ExecReport`] carries the *unpruned* operation/traffic workload and
/// measured host wall-clock.
#[derive(Debug, Clone)]
pub struct CpuReference {
    graph: Arc<CsrGraph>,
    prepared: Option<(GnnModel, ModelWeights)>,
}

impl CpuReference {
    /// Creates the backend over `graph`.
    pub fn new(graph: Arc<CsrGraph>) -> Self {
        CpuReference { graph, prepared: None }
    }

    fn prepared(&self) -> Result<&(GnnModel, ModelWeights), CoreError> {
        self.prepared.as_ref().ok_or_else(|| CoreError::NotPrepared { backend: self.name() })
    }
}

impl Accelerator for CpuReference {
    fn name(&self) -> String {
        "CPU-reference".to_string()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
        validate_weights(model, weights)?;
        self.prepared = Some((model.clone(), weights.clone()));
        Ok(())
    }

    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
        let (model, weights) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        let start = Instant::now();
        let output = reference_forward(&self.graph, &request.features, model, weights);
        // Stop the clock before the workload accounting below — the
        // report prices the forward pass, not its own bookkeeping.
        let latency_s = start.elapsed().as_secs_f64();
        let mut report = self.report(request)?;
        report.latency_s = latency_s;
        Ok(InferenceResponse { id: request.id, output, report })
    }

    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
        let (model, _) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        let workload = ModelWorkload::compute(&self.graph, &request.features, model);
        Ok(ExecReport {
            backend: self.name(),
            total_ops: workload.total_ops(),
            offchip_bytes: workload.total_bytes(),
            cycles: 0,
            latency_s: 0.0,
            energy_j: 0.0,
            aggregation_pruning_rate: 0.0,
            // The single-threaded software pass has no occupancy model.
            worker_busy_cycles: Vec::new(),
            utilisation: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::HubIslandConfig;

    fn setup() -> (Arc<CsrGraph>, SparseFeatures, GnnModel, ModelWeights) {
        let g = HubIslandConfig::new(120, 5).noise_fraction(0.0).generate(3);
        let x = SparseFeatures::random(120, 12, 0.3, 4);
        let model = GnnModel::gcn(12, 8, 4);
        let weights = ModelWeights::glorot(&model, 5);
        (Arc::new(g.graph), x, model, weights)
    }

    #[test]
    fn cpu_reference_round_trip() {
        let (graph, x, model, weights) = setup();
        let mut backend = CpuReference::new(Arc::clone(&graph));
        backend.prepare(&model, &weights).unwrap();
        let resp = backend.infer(&InferenceRequest::new(x.clone()).with_id(9)).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.output.rows(), 120);
        assert_eq!(resp.output.cols(), 4);
        assert!(resp.report.total_ops > 0);
        assert!(resp.report.latency_s > 0.0);
        let expected = reference_forward(&graph, &x, &model, &weights);
        assert_eq!(resp.output, expected);
    }

    #[test]
    fn infer_before_prepare_errors() {
        let (graph, x, ..) = setup();
        let backend = CpuReference::new(graph);
        let err = backend.infer(&InferenceRequest::new(x)).unwrap_err();
        assert!(matches!(err, CoreError::NotPrepared { .. }));
    }

    #[test]
    fn wrong_feature_rows_rejected() {
        let (graph, _, model, weights) = setup();
        let mut backend = CpuReference::new(graph);
        backend.prepare(&model, &weights).unwrap();
        let bad = SparseFeatures::random(60, 12, 0.3, 4);
        let err = backend.infer(&InferenceRequest::new(bad)).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { expected: 120, got: 60, .. }));
    }

    #[test]
    fn wrong_weight_shape_rejected_at_prepare() {
        let (graph, _, model, _) = setup();
        let other = GnnModel::gcn(12, 6, 4); // hidden 6, not 8
        let wrong = ModelWeights::glorot(&other, 1);
        let mut backend = CpuReference::new(graph);
        let err = backend.prepare(&model, &wrong).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }));
    }

    #[test]
    fn default_infer_batch_preserves_order() {
        let (graph, _, model, weights) = setup();
        let mut backend = CpuReference::new(graph);
        backend.prepare(&model, &weights).unwrap();
        let reqs: Vec<InferenceRequest> = (0..3)
            .map(|i| InferenceRequest::new(SparseFeatures::random(120, 12, 0.3, 40 + i)).with_id(i))
            .collect();
        let resps = backend.infer_batch(&reqs).unwrap();
        assert_eq!(resps.len(), 3);
        for (req, resp) in reqs.iter().zip(&resps) {
            assert_eq!(req.id, resp.id);
            let solo = backend.infer(req).unwrap();
            assert_eq!(solo.output, resp.output);
        }
    }

    #[test]
    fn exec_report_units() {
        let r = ExecReport { latency_s: 2.5e-6, ..Default::default() };
        assert!((r.latency_us() - 2.5).abs() < 1e-9);
        let slow = ExecReport { latency_s: 2.5e-3, ..Default::default() };
        assert!((r.speedup_over(&slow) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn accelerator_trait_is_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Accelerator>();
        assert_send_sync::<CpuReference>();
        let (graph, ..) = setup();
        let boxed: Box<dyn Accelerator> = Box::new(CpuReference::new(graph));
        assert_eq!(boxed.name(), "CPU-reference");
    }
}
