//! End-to-end islandized GNN inference.

use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::{CsrGraph, NodeId, SparseFeatures};
use igcn_linalg::DenseMatrix;

use crate::config::{ConsumerConfig, IslandizationConfig};
use crate::consumer::{IslandConsumer, LayerInput};
use crate::error::CoreError;
use crate::locator::IslandLocator;
use crate::partition::IslandPartition;
use crate::stats::ExecStats;

/// The I-GCN engine: islandizes a graph once, then executes GNN layers at
/// island granularity with shared-neighbor redundancy removal.
///
/// Islandization runs once per graph — the structure is independent of the
/// layer — and is reused by every layer of every model, exactly as the
/// hardware overlaps the Island Locator with the first layer's Island
/// Consumer and replays the stored islands for deeper layers.
///
/// # Example
///
/// ```
/// use igcn_core::{ConsumerConfig, IGcnEngine, IslandizationConfig};
/// use igcn_gnn::{GnnModel, ModelWeights};
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
///
/// let g = HubIslandConfig::new(200, 8).noise_fraction(0.0).generate(4);
/// let engine = IGcnEngine::new(
///     &g.graph,
///     IslandizationConfig::default(),
///     ConsumerConfig::default(),
/// ).unwrap();
///
/// let x = SparseFeatures::random(200, 16, 0.3, 1);
/// let model = GnnModel::gcn(16, 8, 3);
/// let weights = ModelWeights::glorot(&model, 2);
/// let (out, stats) = engine.run(&x, &model, &weights);
/// assert_eq!(out.rows(), 200);
/// assert!(stats.aggregation_pruning_rate() >= 0.0);
/// ```
#[derive(Debug)]
pub struct IGcnEngine<'g> {
    graph: &'g CsrGraph,
    partition: IslandPartition,
    locator_stats: crate::stats::LocatorStats,
    consumer_cfg: ConsumerConfig,
}

impl<'g> IGcnEngine<'g> {
    /// Islandizes `graph` and prepares the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SelfLoops`] if the graph has self-loops (the
    /// GCN self contribution is handled by the normalisation; strip loops
    /// first), or [`CoreError::RoundLimitExceeded`] if the locator fails
    /// to converge.
    pub fn new(
        graph: &'g CsrGraph,
        island_cfg: IslandizationConfig,
        consumer_cfg: ConsumerConfig,
    ) -> Result<Self, CoreError> {
        for v in graph.iter_nodes() {
            if graph.has_edge(v, v) {
                return Err(CoreError::SelfLoops { node: v.value() });
            }
        }
        let (partition, locator_stats) = IslandLocator::new(graph, &island_cfg).run()?;
        Ok(IGcnEngine { graph, partition, locator_stats, consumer_cfg })
    }

    /// The partition produced by the Island Locator.
    pub fn partition(&self) -> &IslandPartition {
        &self.partition
    }

    /// The Island Locator statistics.
    pub fn locator_stats(&self) -> &crate::stats::LocatorStats {
        &self.locator_stats
    }

    /// Runs full-model inference, returning the output features and the
    /// complete execution statistics.
    ///
    /// # Panics
    ///
    /// Panics if the feature or weight shapes do not match the model.
    pub fn run(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> (DenseMatrix, ExecStats) {
        assert_eq!(
            features.num_rows(),
            self.graph.num_nodes(),
            "feature rows do not match the graph"
        );
        let consumer = IslandConsumer::new(self.graph, &self.partition, self.consumer_cfg);
        let norm = model.normalization(self.graph);
        let mut stats = ExecStats { locator: self.locator_stats.clone(), ..Default::default() };
        let mut current: Option<DenseMatrix> = None;
        for (i, layer) in model.layers().iter().enumerate() {
            let input = match &current {
                None => LayerInput::Sparse(features),
                Some(m) => LayerInput::Dense(m),
            };
            let (out, mut layer_stats) =
                consumer.execute_layer(input, weights.layer(i), &norm, layer.activation);
            if i == 0 {
                // The locator's adjacency streaming is charged to layer 0
                // (restructuring overlaps the first layer's consumption).
                layer_stats.traffic.adjacency_bytes +=
                    self.locator_stats.adjacency_words_read * 4;
            }
            stats.layers.push(layer_stats);
            current = Some(out);
        }
        (current.expect("models have at least one layer"), stats)
    }

    /// Computes the statistics [`IGcnEngine::run`] would produce without
    /// any floating-point work (used by the hardware timing model on large
    /// graphs).
    pub fn account(&self, features: &SparseFeatures, model: &GnnModel) -> ExecStats {
        let consumer = IslandConsumer::new(self.graph, &self.partition, self.consumer_cfg);
        let norm = model.normalization(self.graph);
        let mut stats = ExecStats { locator: self.locator_stats.clone(), ..Default::default() };
        // Dense layer inputs only matter for their width: reuse one dummy
        // per distinct hidden width.
        let mut dense_cache: std::collections::HashMap<usize, DenseMatrix> =
            std::collections::HashMap::new();
        for (i, layer) in model.layers().iter().enumerate() {
            let mut layer_stats = if i == 0 {
                consumer.account_layer(LayerInput::Sparse(features), layer.out_dim, &norm)
            } else {
                let dense = dense_cache
                    .entry(layer.in_dim)
                    .or_insert_with(|| DenseMatrix::zeros(self.graph.num_nodes(), layer.in_dim));
                consumer.account_layer(LayerInput::Dense(dense), layer.out_dim, &norm)
            };
            if i == 0 {
                layer_stats.traffic.adjacency_bytes +=
                    self.locator_stats.adjacency_words_read * 4;
            }
            stats.layers.push(layer_stats);
        }
        stats
    }

    /// Verifies islandized inference against the plain software reference,
    /// returning the maximum absolute output difference.
    pub fn verify(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> f32 {
        let (out, _) = self.run(features, model, weights);
        let reference = igcn_gnn::reference_forward(self.graph, features, model, weights);
        out.max_abs_diff(&reference)
    }

    /// Convenience access to a node's output class (argmax over the final
    /// layer), for the example applications.
    pub fn predict_class(output: &DenseMatrix, node: NodeId) -> usize {
        let row = output.row(node.index());
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::GnnKind;
    use igcn_graph::generate::HubIslandConfig;

    fn engine_setup(
        n: usize,
        noise: f64,
        seed: u64,
    ) -> (CsrGraph, SparseFeatures) {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).noise_fraction(noise).generate(seed);
        let x = SparseFeatures::random(n, 10, 0.4, seed + 100);
        (g.graph, x)
    }

    #[test]
    fn end_to_end_matches_reference_gcn() {
        let (g, x) = engine_setup(200, 0.05, 1);
        let engine =
            IGcnEngine::new(&g, IslandizationConfig::default(), ConsumerConfig::default())
                .unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 2);
        let diff = engine.verify(&x, &model, &w);
        assert!(diff < 1e-4, "output diverges from reference by {diff}");
    }

    #[test]
    fn end_to_end_matches_reference_all_models() {
        let (g, x) = engine_setup(150, 0.0, 2);
        let engine =
            IGcnEngine::new(&g, IslandizationConfig::default(), ConsumerConfig::default())
                .unwrap();
        for model in [
            GnnModel::gcn(10, 6, 3),
            GnnModel::graphsage(10, 6, 3),
            GnnModel::gin(10, 6, 3, 0.2),
        ] {
            let w = ModelWeights::glorot(&model, 4);
            let diff = engine.verify(&x, &model, &w);
            // GIN's unnormalised sum aggregation accumulates larger
            // magnitudes, so FP reassociation noise is larger in absolute
            // terms.
            assert!(diff < 5e-3, "{:?} diverges by {diff}", model.kind());
        }
    }

    #[test]
    fn self_loops_rejected() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 0), (0, 1)]).unwrap();
        let err =
            IGcnEngine::new(&g, IslandizationConfig::default(), ConsumerConfig::default())
                .unwrap_err();
        assert!(matches!(err, CoreError::SelfLoops { node: 0 }));
    }

    #[test]
    fn account_matches_run_stats() {
        let (g, x) = engine_setup(180, 0.05, 3);
        let engine =
            IGcnEngine::new(&g, IslandizationConfig::default(), ConsumerConfig::default())
                .unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 5);
        let (_, run_stats) = engine.run(&x, &model, &w);
        let acc_stats = engine.account(&x, &model);
        assert_eq!(run_stats, acc_stats);
    }

    #[test]
    fn pruning_rate_in_plausible_band() {
        // Densely clustered graphs should prune a substantial fraction of
        // aggregation ops — the paper reports 29–46% across datasets.
        let g = HubIslandConfig::new(500, 20)
            .island_density(0.6)
            .noise_fraction(0.0)
            .generate(7);
        let x = SparseFeatures::random(500, 16, 0.3, 8);
        let engine = IGcnEngine::new(
            &g.graph,
            IslandizationConfig::default(),
            ConsumerConfig::default(),
        )
        .unwrap();
        let model = GnnModel::gcn(16, 8, 4);
        let stats = engine.account(&x, &model);
        let rate = stats.aggregation_pruning_rate();
        assert!(rate > 0.1, "pruning rate {rate} too low for a dense-island graph");
        assert!(rate < 0.8, "pruning rate {rate} implausibly high");
    }

    #[test]
    fn predict_class_argmax() {
        let out = DenseMatrix::from_vec(2, 3, vec![0.1, 0.9, 0.2, 0.5, 0.1, 0.4]);
        assert_eq!(IGcnEngine::predict_class(&out, NodeId::new(0)), 1);
        assert_eq!(IGcnEngine::predict_class(&out, NodeId::new(1)), 0);
    }

    #[test]
    fn gin_kind_marker() {
        // Ensure GnnKind is re-exported usefully for downstream matching.
        assert_eq!(GnnModel::gin(4, 4, 2, 0.1).kind(), GnnKind::Gin);
    }
}
