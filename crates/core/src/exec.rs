//! End-to-end islandized GNN inference: the owned, serving-ready
//! I-GCN engine.

use std::sync::{Arc, Mutex};

use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::{CsrGraph, NodeId, SparseFeatures};
use igcn_linalg::{DenseMatrix, GcnNormalization, QuantizedFeatures};
use threadpool::ThreadPool;

use crate::accel::{
    validate_request, validate_weights, Accelerator, ExecReport, GraphUpdate, InferenceRequest,
    InferenceResponse, UpdateReport,
};
use crate::config::{ConsumerConfig, ExecConfig, IslandizationConfig};
use crate::consumer::hotpath::{self, LayerScratch};
use crate::consumer::{IslandConsumer, LayerInput};
use crate::error::CoreError;
use crate::incremental::apply_update_structural;
use crate::layout::IslandLayout;
use crate::locator::IslandLocator;
use crate::partition::IslandPartition;
use crate::stats::ExecStats;

/// Per-request execution scratch: the layer arena plus the
/// schedule-order feature buffer and the ping-pong layer activations.
/// Pooled by the engine so repeated `infer` calls reuse steady-state
/// buffers instead of reallocating per layer.
struct ExecScratch {
    layer: LayerScratch,
    features: SparseFeatures,
    ping: DenseMatrix,
    pong: DenseMatrix,
    /// Int8 feature staging of the quantized path
    /// (`ExecConfig::quantized_features`); empty otherwise.
    quant: QuantizedFeatures,
}

impl Default for ExecScratch {
    fn default() -> Self {
        ExecScratch {
            layer: LayerScratch::new(),
            features: SparseFeatures::from_rows(0, 0, Vec::new()),
            ping: DenseMatrix::zeros(0, 0),
            pong: DenseMatrix::zeros(0, 0),
            quant: QuantizedFeatures::default(),
        }
    }
}

/// A small lock-guarded pool of [`ExecScratch`] arenas shared by all
/// clones of one engine; concurrent requests each take a private arena
/// and return it when done.
struct ScratchPool {
    inner: Arc<Mutex<Vec<ExecScratch>>>,
}

/// At most this many warm arenas are retained; beyond it (transient
/// concurrency spikes) arenas are simply dropped.
const SCRATCH_POOL_CAP: usize = 16;

impl ScratchPool {
    fn new() -> Self {
        ScratchPool { inner: Arc::new(Mutex::new(Vec::new())) }
    }

    fn take(&self) -> ExecScratch {
        self.inner.lock().expect("scratch pool lock").pop().unwrap_or_default()
    }

    fn put(&self, scratch: ExecScratch) {
        let mut pool = self.inner.lock().expect("scratch pool lock");
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        ScratchPool { inner: Arc::clone(&self.inner) }
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pooled = self.inner.lock().map(|p| p.len()).unwrap_or(0);
        f.debug_struct("ScratchPool").field("pooled", &pooled).finish()
    }
}

/// The I-GCN engine: islandizes a graph once, then executes GNN layers
/// at island granularity with shared-neighbor redundancy removal.
///
/// The engine *owns* its graph (behind an `Arc`, so construction from a
/// shared graph is free) and is `Send + Sync`: prepare it once, wrap it
/// in an `Arc`, and serve [`Accelerator::infer`] /
/// [`Accelerator::infer_batch`] calls from any number of threads.
/// Islandization runs once at build time — the structure is independent
/// of the layer — and is reused by every layer of every request, exactly
/// as the hardware overlaps the Island Locator with the first layer's
/// Island Consumer and replays the stored islands afterwards. Evolving
/// graphs stay inside the same engine through
/// [`IGcnEngine::apply_update`].
///
/// # Example
///
/// ```
/// use igcn_core::accel::{Accelerator, InferenceRequest};
/// use igcn_core::IGcnEngine;
/// use igcn_gnn::{GnnModel, ModelWeights};
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
///
/// let g = HubIslandConfig::new(200, 8).noise_fraction(0.0).generate(4);
/// let mut engine = IGcnEngine::builder(g.graph).build()?;
///
/// let model = GnnModel::gcn(16, 8, 3);
/// let weights = ModelWeights::glorot(&model, 2);
/// engine.prepare(&model, &weights)?;
///
/// let request = InferenceRequest::new(SparseFeatures::random(200, 16, 0.3, 1));
/// let response = engine.infer(&request)?;
/// assert_eq!(response.output.rows(), 200);
/// assert!(response.report.aggregation_pruning_rate >= 0.0);
/// # Ok::<(), igcn_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IGcnEngine {
    graph: Arc<CsrGraph>,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    exec_cfg: ExecConfig,
    partition: IslandPartition,
    locator_stats: crate::stats::LocatorStats,
    prepared: Option<(GnnModel, ModelWeights)>,
    /// The schedule-ordered physical layout (rebuilt by `apply_update`).
    layout: Arc<IslandLayout>,
    /// Persistent worker pool (present when `num_threads > 1`); clones
    /// of the engine share the same workers.
    pool: Option<ThreadPool>,
    /// Warm per-request scratch arenas, shared across clones.
    scratch: ScratchPool,
}

/// Configures and builds an [`IGcnEngine`]; created by
/// [`IGcnEngine::builder`].
#[derive(Debug, Clone)]
pub struct IGcnEngineBuilder {
    graph: Arc<CsrGraph>,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    exec_cfg: ExecConfig,
}

impl IGcnEngineBuilder {
    /// Overrides the Island Locator configuration.
    pub fn island_config(mut self, cfg: IslandizationConfig) -> Self {
        self.island_cfg = cfg;
        self
    }

    /// Overrides the Island Consumer configuration.
    pub fn consumer_config(mut self, cfg: ConsumerConfig) -> Self {
        self.consumer_cfg = cfg;
        self
    }

    /// Overrides the parallel-execution configuration (thread count and
    /// fan-out dimensions). The default is fully sequential.
    pub fn exec_config(mut self, cfg: ExecConfig) -> Self {
        self.exec_cfg = cfg;
        self
    }

    /// Islandizes the graph and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyGraph`] if the graph has no nodes or no
    /// edges (there is nothing to islandize or aggregate),
    /// [`CoreError::SelfLoops`] if the graph has self-loops (the GCN
    /// self contribution is handled by the normalisation; strip loops
    /// first), or [`CoreError::RoundLimitExceeded`] if the locator fails
    /// to converge.
    pub fn build(self) -> Result<IGcnEngine, CoreError> {
        check_not_empty(&self.graph)?;
        check_loop_free(&self.graph)?;
        let (partition, locator_stats) = IslandLocator::new(&self.graph, &self.island_cfg).run()?;
        let layout =
            Arc::new(IslandLayout::new(&self.graph, &partition, self.consumer_cfg.num_pes));
        let pool =
            (self.exec_cfg.num_threads > 1).then(|| ThreadPool::new(self.exec_cfg.num_threads));
        Ok(IGcnEngine {
            graph: self.graph,
            island_cfg: self.island_cfg,
            consumer_cfg: self.consumer_cfg,
            exec_cfg: self.exec_cfg,
            partition,
            locator_stats,
            prepared: None,
            layout,
            pool,
            scratch: ScratchPool::new(),
        })
    }
}

/// Pre-composed islandization state for a warm engine boot: everything
/// [`IGcnEngineBuilder::build`] normally derives from the graph, loaded
/// instead from a snapshot (see `igcn-store`).
#[derive(Debug, Clone)]
pub struct EngineParts {
    /// The islandization partition over *original* node IDs.
    pub partition: IslandPartition,
    /// The locator statistics recorded when the partition was built.
    pub locator_stats: crate::stats::LocatorStats,
    /// The composed physical layout.
    pub layout: Arc<IslandLayout>,
}

impl IGcnEngineBuilder {
    /// Builds the engine from pre-composed islandization parts — the
    /// **warm-start** path: the Island Locator pass and the layout
    /// composition are both skipped, and only cheap structural checks
    /// run (the parts must belong to this builder's graph).
    ///
    /// Snapshot loading (`igcn::store::from_snapshot`) is the intended
    /// caller; the parts it supplies were validated structurally at
    /// decode time by `IslandLayout::from_raw_parts` and
    /// `IslandPartition::from_raw_parts`.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyGraph`] / [`CoreError::SelfLoops`] as
    /// [`IGcnEngineBuilder::build`], plus [`CoreError::ShapeMismatch`]
    /// if the parts do not match the graph (node or edge counts).
    pub fn build_from_parts(self, parts: EngineParts) -> Result<IGcnEngine, CoreError> {
        check_not_empty(&self.graph)?;
        check_loop_free(&self.graph)?;
        let n = self.graph.num_nodes();
        if parts.partition.num_nodes() != n {
            return Err(CoreError::ShapeMismatch {
                what: "warm-start partition vs graph nodes".to_string(),
                expected: n,
                got: parts.partition.num_nodes(),
            });
        }
        if parts.layout.graph().num_nodes() != n {
            return Err(CoreError::ShapeMismatch {
                what: "warm-start layout vs graph nodes".to_string(),
                expected: n,
                got: parts.layout.graph().num_nodes(),
            });
        }
        if parts.layout.graph().num_directed_edges() != self.graph.num_directed_edges() {
            return Err(CoreError::ShapeMismatch {
                what: "warm-start layout vs graph edges".to_string(),
                expected: self.graph.num_directed_edges(),
                got: parts.layout.graph().num_directed_edges(),
            });
        }
        if parts.layout.partition().num_islands() != parts.partition.num_islands() {
            return Err(CoreError::ShapeMismatch {
                what: "warm-start layout islands vs partition islands".to_string(),
                expected: parts.partition.num_islands(),
                got: parts.layout.partition().num_islands(),
            });
        }
        let pool =
            (self.exec_cfg.num_threads > 1).then(|| ThreadPool::new(self.exec_cfg.num_threads));
        Ok(IGcnEngine {
            graph: self.graph,
            island_cfg: self.island_cfg,
            consumer_cfg: self.consumer_cfg,
            exec_cfg: self.exec_cfg,
            partition: parts.partition,
            locator_stats: parts.locator_stats,
            prepared: None,
            layout: parts.layout,
            pool,
            scratch: ScratchPool::new(),
        })
    }
}

impl IGcnEngine {
    /// Starts building an engine over `graph`.
    ///
    /// Accepts either a `CsrGraph` by value or an existing
    /// `Arc<CsrGraph>` (no copy in either case).
    pub fn builder(graph: impl Into<Arc<CsrGraph>>) -> IGcnEngineBuilder {
        IGcnEngineBuilder {
            graph: graph.into(),
            island_cfg: IslandizationConfig::default(),
            consumer_cfg: ConsumerConfig::default(),
            exec_cfg: ExecConfig::default(),
        }
    }

    /// The graph this engine serves (also available through
    /// [`Accelerator::graph`]).
    pub fn graph_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.graph)
    }

    /// The partition produced by the Island Locator.
    pub fn partition(&self) -> &IslandPartition {
        &self.partition
    }

    /// The Island Locator statistics of the most recent (re)structuring
    /// — the initial build, or the incremental rounds of the last
    /// [`IGcnEngine::apply_update`].
    pub fn locator_stats(&self) -> &crate::stats::LocatorStats {
        &self.locator_stats
    }

    /// The Island Locator configuration.
    pub fn island_config(&self) -> IslandizationConfig {
        self.island_cfg
    }

    /// The Island Consumer configuration.
    pub fn consumer_config(&self) -> ConsumerConfig {
        self.consumer_cfg
    }

    /// The parallel-execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_cfg
    }

    /// Replaces the parallel-execution configuration in place.
    ///
    /// Unlike the island/consumer configurations, the thread count is a
    /// pure runtime knob — it never changes outputs (bit-identical at
    /// every setting) or the partition, so it can be retuned on a built
    /// engine without re-islandizing. Changing the thread count
    /// replaces the persistent worker pool.
    pub fn set_exec_config(&mut self, cfg: ExecConfig) {
        if cfg.num_threads != self.exec_cfg.num_threads {
            self.pool = (cfg.num_threads > 1).then(|| ThreadPool::new(cfg.num_threads));
        }
        self.exec_cfg = cfg;
    }

    /// The physical data layout the engine executes over (schedule-order
    /// permutation, permuted graph/partition, prebuilt bitmaps).
    pub fn layout(&self) -> &IslandLayout {
        &self.layout
    }

    /// The layout behind its shared handle (free to clone; used by the
    /// snapshot store to capture an engine image without copying).
    pub fn layout_arc(&self) -> Arc<IslandLayout> {
        Arc::clone(&self.layout)
    }

    /// The model and weights installed by [`Accelerator::prepare`], if
    /// any (used by the snapshot store to persist a complete engine
    /// image).
    pub fn prepared_model(&self) -> Option<(&GnnModel, &ModelWeights)> {
        self.prepared.as_ref().map(|(m, w)| (m, w))
    }

    /// Worker count the island schedule is fanned across inside one
    /// inference (1 when island-level parallelism is off).
    fn island_workers(&self) -> usize {
        if self.exec_cfg.num_threads > 1 && self.exec_cfg.parallel_islands {
            self.exec_cfg.num_threads
        } else {
            1
        }
    }

    /// The persistent pool used for island fan-out inside one inference
    /// (`None` = sequential layers).
    fn island_pool(&self) -> Option<&ThreadPool> {
        if self.island_workers() > 1 {
            self.pool.as_ref()
        } else {
            None
        }
    }

    /// Applies a batch of structural changes to the serving graph,
    /// incrementally re-islandizing only the disturbed neighborhood.
    ///
    /// Added edges dissolve the islands they touch (hubs never dissolve
    /// on additions — their degree only grew). Removed edges dissolve
    /// the islands of their endpoints; a hub endpoint whose loop-free
    /// degree falls below the configured hub floor is *demoted* back
    /// into the unclassified pool along with every island it contacts,
    /// and the locator rounds re-run over the disturbed region.
    /// Subsequent inference runs on the updated graph.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if the update shrinks the graph or
    /// references nodes beyond its (new) size;
    /// [`CoreError::SelfLoops`] if an added edge is a self-loop;
    /// [`CoreError::MissingEdge`] if a removed edge is not present;
    /// [`CoreError::RoundLimitExceeded`] if the incremental rounds fail
    /// to converge.
    pub fn apply_update(&mut self, update: GraphUpdate) -> Result<UpdateReport, CoreError> {
        let mut reports = self.apply_updates_batched(std::slice::from_ref(&update))?;
        Ok(reports.pop().expect("one update yields one report"))
    }

    /// Applies a whole batch of [`GraphUpdate`]s, recomposing the
    /// physical layout **once** at the end instead of once per update —
    /// the boot-time replay path of `igcn-store`'s write-ahead log,
    /// where a long log would otherwise pay the O(n + m) layout
    /// composition per record.
    ///
    /// The observable result (graph, partition, locator statistics,
    /// layout, and the returned [`UpdateReport`]s) is identical to
    /// calling [`IGcnEngine::apply_update`] once per update in order.
    /// On error the engine is left exactly as before the call — no
    /// prefix of the batch is applied.
    ///
    /// # Errors
    ///
    /// As [`IGcnEngine::apply_update`], for the first failing update.
    pub fn apply_updates_batched(
        &mut self,
        updates: &[GraphUpdate],
    ) -> Result<Vec<UpdateReport>, CoreError> {
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        let mut graph = Arc::clone(&self.graph);
        let mut partition = self.partition.clone();
        let mut stats = self.locator_stats.clone();
        let mut reports = Vec::with_capacity(updates.len());
        for update in updates {
            let (new_graph, result) =
                apply_update_structural(&graph, &partition, &self.island_cfg, update)?;
            graph = Arc::new(new_graph);
            partition = result.partition;
            stats = result.stats.clone();
            reports.push(UpdateReport {
                dissolved_islands: result.dissolved_islands,
                reclassified_nodes: result.reclassified_nodes,
                demoted_hubs: result.demoted_hubs,
                num_nodes: graph.num_nodes(),
                locator_stats: result.stats,
            });
        }
        // Commit: one layout recomposition for the whole batch.
        self.layout = Arc::new(IslandLayout::new(&graph, &partition, self.consumer_cfg.num_pes));
        self.graph = graph;
        self.partition = partition;
        self.locator_stats = stats;
        Ok(reports)
    }

    fn check_features(&self, features: &SparseFeatures, model: &GnnModel) -> Result<(), CoreError> {
        check_features_for(&self.graph, features, model)
    }

    /// Computes the Ã normalisation `infer`/`infer_batch` amortise
    /// across a batch. It is computed over the layout-permuted graph
    /// the hot path executes on; degrees are preserved by the layout
    /// permutation, so the scales equal the original-order ones
    /// bitwise.
    fn plan(&self, model: &GnnModel) -> GcnNormalization {
        model.normalization(self.layout.graph())
    }

    /// The zero-allocation hot path: gather features into schedule
    /// order, run every layer over the physical layout with pooled
    /// scratch arenas (ping-pong activations), scatter the final rows
    /// back to original node IDs. `pool` carries the per-island
    /// fan-out (`None` = sequential layers, the path batch-parallel
    /// requests use to avoid nested pools).
    fn execute_layout(
        &self,
        norm: &GcnNormalization,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
        pool: Option<&ThreadPool>,
    ) -> Result<(DenseMatrix, ExecStats), CoreError> {
        assert!(!model.layers().is_empty(), "models have at least one layer");
        let layout = &*self.layout;
        let n = self.graph.num_nodes();
        let mut stats = ExecStats { locator: self.locator_stats.clone(), ..Default::default() };
        stats.occupancy = layout.schedule().occupancy(pool.map_or(1, ThreadPool::threads));

        let mut scratch = self.scratch.take();
        let ExecScratch { layer: layer_scratch, features: gathered, ping, pong, quant } =
            &mut scratch;
        if self.exec_cfg.quantized_features {
            // Int8 feature path: quantize, then gather *dequantized*
            // rows so every downstream kernel still accumulates in f32.
            // The CSR structure is preserved bit for bit, so the
            // statistics (and `account`) are unaffected; only the
            // values carry the documented bounded error.
            quant.quantize_from(features);
            debug_assert!(
                quant.max_abs_error(features) <= quant.error_bound(),
                "quantization error exceeds the documented bound"
            );
            quant.gather_rows_into(layout.gather_order(), gathered);
        } else {
            features.gather_rows_into(layout.gather_order(), gathered);
        }
        let mut src: &mut DenseMatrix = ping;
        let mut dst: &mut DenseMatrix = pong;
        // Trace-tree parent for this request (NONE on untraced paths:
        // the per-layer tree spans below are then single-branch inert).
        let trace_parent = igcn_obs::trace::ambient();
        for (i, layer) in model.layers().iter().enumerate() {
            let w = weights.layer(i);
            dst.resize_in_place(n, w.cols());
            let input = if i == 0 {
                if self.exec_cfg.quantized_features {
                    // The gathered rows are dequantized f32 (identical
                    // arithmetic), but the value stream behind them is
                    // int8 — the traffic model charges 1-byte elements.
                    LayerInput::SparseInt8(gathered)
                } else {
                    LayerInput::Sparse(gathered)
                }
            } else {
                LayerInput::Dense(&*src)
            };
            // Stage timing only — statistics and outputs are produced
            // identically whether telemetry is enabled or not.
            let _layer_span = igcn_obs::Span::enter(igcn_obs::stage::LAYER_EXECUTE);
            let mut layer_tree_span =
                igcn_obs::trace::OpenSpan::child(trace_parent, igcn_obs::stage::LAYER_EXECUTE);
            layer_tree_span.tag("layer", i);
            layer_tree_span.tag("waves", layout.schedule().num_waves());
            let mut layer_stats = match pool {
                Some(pool) => hotpath::execute_layer_parallel(
                    layout,
                    self.consumer_cfg,
                    input,
                    w,
                    norm,
                    layer.activation,
                    pool,
                    layer_scratch,
                    dst.as_mut_slice(),
                ),
                None => hotpath::execute_layer(
                    layout,
                    self.consumer_cfg,
                    input,
                    w,
                    norm,
                    layer.activation,
                    layer_scratch,
                    dst.as_mut_slice(),
                ),
            };
            if i == 0 {
                // The locator's adjacency streaming is charged to layer 0
                // (restructuring overlaps the first layer's consumption).
                layer_stats.traffic.adjacency_bytes += self.locator_stats.adjacency_words_read * 4;
            }
            stats.layers.push(layer_stats);
            std::mem::swap(&mut src, &mut dst);
        }

        // Scatter the final layer's rows back to original node IDs —
        // requests and responses always speak original IDs.
        let mut out = DenseMatrix::zeros(n, src.cols());
        for (old, &new) in layout.forward().iter().enumerate() {
            out.row_mut(old).copy_from_slice(src.row(new as usize));
        }
        self.scratch.put(scratch);
        Ok((out, stats))
    }

    fn execute(
        &self,
        norm: &GcnNormalization,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> Result<(DenseMatrix, ExecStats), CoreError> {
        self.execute_layout(norm, features, model, weights, self.island_pool())
    }

    /// Runs full-model inference, returning the output features and the
    /// complete execution statistics.
    ///
    /// This is the direct-call path; the serving path is
    /// [`Accelerator::infer`] with a model installed through
    /// [`Accelerator::prepare`].
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if the feature or weight shapes do
    /// not match the graph and model.
    pub fn run(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> Result<(DenseMatrix, ExecStats), CoreError> {
        self.check_features(features, model)?;
        validate_weights(model, weights)?;
        let plan = self.plan(model);
        self.execute(&plan, features, model, weights)
    }

    /// Computes the statistics [`IGcnEngine::run`] would produce
    /// without any floating-point work (used by the hardware timing
    /// model on large graphs).
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if the feature shape does not match
    /// the graph.
    pub fn account(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
    ) -> Result<ExecStats, CoreError> {
        self.check_features(features, model)?;
        Ok(account_partitioned(
            &self.graph,
            &self.partition,
            &self.locator_stats,
            self.consumer_cfg,
            self.island_workers(),
            self.exec_cfg.quantized_features,
            features,
            model,
        ))
    }

    /// Verifies islandized inference against the plain software
    /// reference, returning the maximum absolute output difference.
    ///
    /// # Errors
    ///
    /// As [`IGcnEngine::run`].
    pub fn verify(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> Result<f32, CoreError> {
        let (out, _) = self.run(features, model, weights)?;
        let reference = igcn_gnn::reference_forward(&self.graph, features, model, weights);
        Ok(out.max_abs_diff(&reference))
    }

    /// Convenience access to a node's output class (argmax over the
    /// final layer), for the example applications.
    pub fn predict_class(output: &DenseMatrix, node: NodeId) -> usize {
        let row = output.row(node.index());
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn prepared(&self) -> Result<&(GnnModel, ModelWeights), CoreError> {
        self.prepared.as_ref().ok_or_else(|| CoreError::NotPrepared { backend: self.name() })
    }
}

impl Accelerator for IGcnEngine {
    fn name(&self) -> String {
        "I-GCN".to_string()
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
        validate_weights(model, weights)?;
        self.prepared = Some((model.clone(), weights.clone()));
        Ok(())
    }

    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
        let (model, weights) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        let plan = self.plan(model);
        let _trace = igcn_obs::trace::with_ambient(request.trace);
        let (output, stats) = self.execute(&plan, &request.features, model, weights)?;
        Ok(InferenceResponse {
            id: request.id,
            output,
            report: ExecReport::from_stats(self.name(), &stats),
        })
    }

    fn infer_batch(
        &self,
        requests: &[InferenceRequest],
    ) -> Result<Vec<InferenceResponse>, CoreError> {
        // An empty batch asks for nothing; answer it without demanding a
        // prepared model.
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let (model, weights) = self.prepared()?;
        // Amortise the per-call setup across the batch: the Ã
        // normalisation depends only on the graph and model, not on
        // the request.
        let plan = self.plan(model);
        // Validate the whole batch up front (first failure aborts), so
        // the parallel path never does work for a doomed batch.
        for request in requests {
            validate_request(&self.graph, model, request)?;
        }
        if self.exec_cfg.num_threads > 1 && self.exec_cfg.parallel_batch && requests.len() > 1 {
            if let Some(pool) = &self.pool {
                // Fan requests across the persistent pool; each request
                // executes its layers sequentially (no nested pools),
                // which is exactly the computation a lone sequential
                // `infer` would run, so batched outputs are
                // bit-identical at any thread count.
                return pool
                    .par_map(requests, |_, request| {
                        // Ambient trace context does not cross into pool
                        // threads — re-install each request's own.
                        let _trace = igcn_obs::trace::with_ambient(request.trace);
                        let (output, stats) =
                            self.execute_layout(&plan, &request.features, model, weights, None)?;
                        Ok(InferenceResponse {
                            id: request.id,
                            output,
                            report: ExecReport::from_stats(self.name(), &stats),
                        })
                    })
                    .into_iter()
                    .collect();
            }
        }
        requests
            .iter()
            .map(|request| {
                let _trace = igcn_obs::trace::with_ambient(request.trace);
                let (output, stats) = self.execute(&plan, &request.features, model, weights)?;
                Ok(InferenceResponse {
                    id: request.id,
                    output,
                    report: ExecReport::from_stats(self.name(), &stats),
                })
            })
            .collect()
    }

    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
        let (model, _) = self.prepared()?;
        validate_request(&self.graph, model, request)?;
        let stats = self.account(&request.features, model)?;
        Ok(ExecReport::from_stats(self.name(), &stats))
    }
}

fn check_not_empty(graph: &CsrGraph) -> Result<(), CoreError> {
    if graph.num_nodes() == 0 || graph.num_directed_edges() == 0 {
        return Err(CoreError::EmptyGraph {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_directed_edges(),
        });
    }
    Ok(())
}

fn check_loop_free(graph: &CsrGraph) -> Result<(), CoreError> {
    for v in graph.iter_nodes() {
        if graph.has_edge(v, v) {
            return Err(CoreError::SelfLoops { node: v.value() });
        }
    }
    Ok(())
}

fn check_features_for(
    graph: &CsrGraph,
    features: &SparseFeatures,
    model: &GnnModel,
) -> Result<(), CoreError> {
    if features.num_rows() != graph.num_nodes() {
        return Err(CoreError::ShapeMismatch {
            what: "feature rows vs graph nodes".to_string(),
            expected: graph.num_nodes(),
            got: features.num_rows(),
        });
    }
    let in_dim = model.layers().first().map(|l| l.in_dim).unwrap_or(0);
    if features.num_cols() != in_dim {
        return Err(CoreError::ShapeMismatch {
            what: "feature cols vs model input width".to_string(),
            expected: in_dim,
            got: features.num_cols(),
        });
    }
    Ok(())
}

/// The accounting pass shared by [`IGcnEngine::account`] and
/// [`account_islandized`]: one `account_layer` per model layer, with
/// the locator's adjacency streaming charged to layer 0.
///
/// Public because it defines the *canonical* statistics of the logical
/// computation independent of how it is executed: `IGcnEngine::run`
/// produces exactly these numbers (pinned by the `account_matches_run`
/// tests), and a multi-engine front-end (`igcn-shard`'s
/// `ShardedEngine`) distributes the same logical work, so it reports
/// the same statistics through this pass over the global structures.
///
/// # Panics
///
/// Panics if `partition` or `features` do not match `graph` (callers
/// validate shapes first).
#[allow(clippy::too_many_arguments)]
pub fn account_partitioned(
    graph: &CsrGraph,
    partition: &IslandPartition,
    locator_stats: &crate::stats::LocatorStats,
    consumer_cfg: ConsumerConfig,
    island_workers: usize,
    quantized_features: bool,
    features: &SparseFeatures,
    model: &GnnModel,
) -> ExecStats {
    let consumer = IslandConsumer::new(graph, partition, consumer_cfg);
    let norm = model.normalization(graph);
    let mut stats = ExecStats { locator: locator_stats.clone(), ..Default::default() };
    stats.occupancy = consumer.schedule().occupancy(island_workers);
    // Dense layer inputs only matter for their width: reuse one dummy
    // per distinct hidden width.
    let mut dense_cache: std::collections::HashMap<usize, DenseMatrix> =
        std::collections::HashMap::new();
    for (i, layer) in model.layers().iter().enumerate() {
        let mut layer_stats = if i == 0 {
            // Mirror the execution path's layer-0 encoding: the int8
            // staging changes the value-stream width, and `account`
            // must price exactly what `run` streams.
            let input = if quantized_features {
                LayerInput::SparseInt8(features)
            } else {
                LayerInput::Sparse(features)
            };
            consumer.account_layer(input, layer.out_dim, &norm)
        } else {
            let dense = dense_cache
                .entry(layer.in_dim)
                .or_insert_with(|| DenseMatrix::zeros(graph.num_nodes(), layer.in_dim));
            consumer.account_layer(LayerInput::Dense(dense), layer.out_dim, &norm)
        };
        if i == 0 {
            layer_stats.traffic.adjacency_bytes += locator_stats.adjacency_words_read * 4;
        }
        stats.layers.push(layer_stats);
    }
    stats
}

/// Islandizes `graph` and computes the statistics [`IGcnEngine::run`]
/// would produce, without taking ownership of (or copying) the graph.
///
/// This is the borrowed accounting path for timing models that receive
/// `&CsrGraph` per call (e.g. `igcn_sim`'s `GcnAccelerator::simulate`);
/// long-lived callers should build an [`IGcnEngine`] instead so the
/// islandization is done once.
///
/// # Errors
///
/// As [`IGcnEngineBuilder::build`] (including [`CoreError::EmptyGraph`]
/// for graphs with no nodes or no edges) plus
/// [`CoreError::ShapeMismatch`] for feature shapes that do not match the
/// graph and model.
pub fn account_islandized(
    graph: &CsrGraph,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    features: &SparseFeatures,
    model: &GnnModel,
) -> Result<ExecStats, CoreError> {
    check_not_empty(graph)?;
    check_loop_free(graph)?;
    check_features_for(graph, features, model)?;
    let (partition, locator_stats) = IslandLocator::new(graph, &island_cfg).run()?;
    // The borrowed path feeds hardware timing models, so occupancy is
    // modelled over the *PEs* (the engine's own `run`/`account` model it
    // over the configured software threads instead).
    Ok(account_partitioned(
        graph,
        &partition,
        &locator_stats,
        consumer_cfg,
        consumer_cfg.num_pes,
        // The borrowed path feeds f32 timing models; no int8 staging.
        false,
        features,
        model,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_gnn::GnnKind;
    use igcn_graph::generate::HubIslandConfig;

    fn engine_setup(n: usize, noise: f64, seed: u64) -> (CsrGraph, SparseFeatures) {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).noise_fraction(noise).generate(seed);
        let x = SparseFeatures::random(n, 10, 0.4, seed + 100);
        (g.graph, x)
    }

    #[test]
    fn end_to_end_matches_reference_gcn() {
        let (g, x) = engine_setup(200, 0.05, 1);
        let engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 2);
        let diff = engine.verify(&x, &model, &w).unwrap();
        assert!(diff < 1e-4, "output diverges from reference by {diff}");
    }

    #[test]
    fn end_to_end_matches_reference_all_models() {
        let (g, x) = engine_setup(150, 0.0, 2);
        let engine = IGcnEngine::builder(g).build().unwrap();
        for model in
            [GnnModel::gcn(10, 6, 3), GnnModel::graphsage(10, 6, 3), GnnModel::gin(10, 6, 3, 0.2)]
        {
            let w = ModelWeights::glorot(&model, 4);
            let diff = engine.verify(&x, &model, &w).unwrap();
            // GIN's unnormalised sum aggregation accumulates larger
            // magnitudes, so FP reassociation noise is larger in absolute
            // terms.
            assert!(diff < 5e-3, "{:?} diverges by {diff}", model.kind());
        }
    }

    #[test]
    fn self_loops_rejected() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 0), (0, 1)]).unwrap();
        let err = IGcnEngine::builder(g).build().unwrap_err();
        assert!(matches!(err, CoreError::SelfLoops { node: 0 }));
    }

    #[test]
    fn account_matches_run_stats() {
        let (g, x) = engine_setup(180, 0.05, 3);
        let engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 5);
        let (_, run_stats) = engine.run(&x, &model, &w).unwrap();
        let acc_stats = engine.account(&x, &model).unwrap();
        assert_eq!(run_stats, acc_stats);
    }

    #[test]
    fn pruning_rate_in_plausible_band() {
        // Densely clustered graphs should prune a substantial fraction of
        // aggregation ops — the paper reports 29–46% across datasets.
        let g = HubIslandConfig::new(500, 20).island_density(0.6).noise_fraction(0.0).generate(7);
        let x = SparseFeatures::random(500, 16, 0.3, 8);
        let engine = IGcnEngine::builder(g.graph).build().unwrap();
        let model = GnnModel::gcn(16, 8, 4);
        let stats = engine.account(&x, &model).unwrap();
        let rate = stats.aggregation_pruning_rate();
        assert!(rate > 0.1, "pruning rate {rate} too low for a dense-island graph");
        assert!(rate < 0.8, "pruning rate {rate} implausibly high");
    }

    #[test]
    fn predict_class_argmax() {
        let out = DenseMatrix::from_vec(2, 3, vec![0.1, 0.9, 0.2, 0.5, 0.1, 0.4]);
        assert_eq!(IGcnEngine::predict_class(&out, NodeId::new(0)), 1);
        assert_eq!(IGcnEngine::predict_class(&out, NodeId::new(1)), 0);
    }

    #[test]
    fn gin_kind_marker() {
        // Ensure GnnKind is re-exported usefully for downstream matching.
        assert_eq!(GnnModel::gin(4, 4, 2, 0.1).kind(), GnnKind::Gin);
    }

    #[test]
    fn engine_is_owned_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<IGcnEngine>();
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let (g, _) = engine_setup(150, 0.0, 4);
        let engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 6, 3);
        let w = ModelWeights::glorot(&model, 1);
        let wrong_rows = SparseFeatures::random(99, 10, 0.4, 2);
        assert!(matches!(
            engine.run(&wrong_rows, &model, &w),
            Err(CoreError::ShapeMismatch { .. })
        ));
        // Wrong feature width (cols vs the model's in_dim) must also be
        // an error on the direct path, not a panic deep in the consumer.
        let wrong_cols = SparseFeatures::random(150, 7, 0.4, 2);
        assert!(matches!(
            engine.run(&wrong_cols, &model, &w),
            Err(CoreError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            engine.account(&wrong_cols, &model),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn trait_infer_matches_direct_run() {
        let (g, x) = engine_setup(160, 0.02, 5);
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 6);
        engine.prepare(&model, &w).unwrap();
        let resp = engine.infer(&InferenceRequest::new(x.clone()).with_id(3)).unwrap();
        let (direct, stats) = engine.run(&x, &model, &w).unwrap();
        assert_eq!(resp.id, 3);
        assert_eq!(resp.output, direct);
        assert_eq!(resp.report, ExecReport::from_stats("I-GCN", &stats));
    }

    #[test]
    fn apply_update_keeps_inference_exact() {
        let (g, _) = engine_setup(300, 0.01, 6);
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 7);
        engine.prepare(&model, &w).unwrap();

        // Wire two fresh nodes onto an existing hub and grow the graph.
        let n = engine.graph().num_nodes();
        let hub = engine.partition().hubs()[0];
        let update = GraphUpdate::add_edges(vec![(n as u32, hub), (n as u32 + 1, n as u32)])
            .with_num_nodes(n + 2);
        let report = engine.apply_update(update).unwrap();
        assert_eq!(report.num_nodes, n + 2);
        engine.partition().check_invariants(engine.graph()).unwrap();

        let x = SparseFeatures::random(n + 2, 10, 0.4, 8);
        let diff = engine.verify(&x, &model, &w).unwrap();
        assert!(diff < 1e-3, "post-update inference diverged by {diff}");
    }

    #[test]
    fn parallel_engine_outputs_are_bit_identical() {
        let (g, _) = engine_setup(260, 0.05, 9);
        let mut sequential = IGcnEngine::builder(g.clone()).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 12);
        sequential.prepare(&model, &w).unwrap();
        let requests: Vec<InferenceRequest> = (0..5)
            .map(|i| {
                InferenceRequest::new(SparseFeatures::random(260, 10, 0.4, 500 + i)).with_id(i)
            })
            .collect();
        let baseline = sequential.infer_batch(&requests).unwrap();
        for threads in [2, 8] {
            let mut engine = IGcnEngine::builder(g.clone())
                .exec_config(ExecConfig::default().with_threads(threads))
                .build()
                .unwrap();
            engine.prepare(&model, &w).unwrap();
            // Batch fan-out path.
            let batched = engine.infer_batch(&requests).unwrap();
            for (a, b) in baseline.iter().zip(&batched) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.output, b.output, "batch output diverges at {threads} threads");
            }
            // Island fan-out path (single infer).
            let solo = engine.infer(&requests[0]).unwrap();
            assert_eq!(solo.output, baseline[0].output, "island-parallel diverges at {threads}");
            // Island fan-out inside infer_batch when batch fan-out is off.
            let mut engine2 = IGcnEngine::builder(g.clone())
                .exec_config(ExecConfig::default().with_threads(threads).with_parallel_batch(false))
                .build()
                .unwrap();
            engine2.prepare(&model, &w).unwrap();
            let islands_only = engine2.infer_batch(&requests).unwrap();
            for (a, b) in baseline.iter().zip(&islands_only) {
                assert_eq!(a.output, b.output, "island-parallel batch diverges at {threads}");
            }
        }
    }

    #[test]
    fn parallel_account_matches_run_stats() {
        let (g, x) = engine_setup(200, 0.05, 10);
        let engine = IGcnEngine::builder(g)
            .exec_config(ExecConfig::default().with_threads(4))
            .build()
            .unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 13);
        let (_, run_stats) = engine.run(&x, &model, &w).unwrap();
        let acc_stats = engine.account(&x, &model).unwrap();
        assert_eq!(run_stats, acc_stats);
        assert_eq!(run_stats.occupancy.workers(), 4);
        assert_eq!(
            run_stats.occupancy.total_busy(),
            run_stats.occupancy.worker_busy_cycles.iter().sum::<u64>()
        );
    }

    #[test]
    fn quantized_feature_path_is_bounded_and_stats_exact() {
        let (g, x) = engine_setup(220, 0.05, 11);
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 14);
        let exact_engine = IGcnEngine::builder(g.clone()).build().unwrap();
        let (exact, exact_stats) = exact_engine.run(&x, &model, &w).unwrap();
        // `account` == `run`, f32 mode.
        assert_eq!(exact_engine.account(&x, &model).unwrap(), exact_stats);

        let qengine = IGcnEngine::builder(g)
            .exec_config(ExecConfig::default().with_quantized_features(true))
            .build()
            .unwrap();
        let (qout, qstats) = qengine.run(&x, &model, &w).unwrap();
        // `account` == `run`, int8 mode: the value-free accounting twin
        // prices the same 1-byte value stream the execution streamed.
        assert_eq!(qengine.account(&x, &model).unwrap(), qstats);

        // Quantization preserves the CSR structure bit for bit, so
        // every *operation* statistic is unchanged — but the traffic
        // model now charges 1-byte value elements on layer 0, so its
        // feature-read bytes must strictly drop while every other
        // traffic stream and all deeper layers stay identical.
        assert!(
            qstats.layers[0].traffic.feature_read_bytes
                < exact_stats.layers[0].traffic.feature_read_bytes,
            "int8 staging must shrink the layer-0 value stream"
        );
        for (q, e) in qstats.layers.iter().zip(&exact_stats.layers) {
            assert_eq!(q.combination_ops, e.combination_ops);
            assert_eq!(q.aggregation, e.aggregation);
            assert_eq!(q.traffic.adjacency_bytes, e.traffic.adjacency_bytes);
            assert_eq!(q.traffic.output_write_bytes, e.traffic.output_write_bytes);
            assert_eq!(q.traffic.weight_bytes, e.traffic.weight_bytes);
        }
        assert_eq!(
            qstats.layers[1..].iter().map(|l| l.traffic.feature_read_bytes).collect::<Vec<_>>(),
            exact_stats.layers[1..]
                .iter()
                .map(|l| l.traffic.feature_read_bytes)
                .collect::<Vec<_>>(),
            "layers >= 1 stream dense f32 activations in both modes"
        );

        // Deterministic: a second quantized run is bit-identical.
        let (qout2, _) = qengine.run(&x, &model, &w).unwrap();
        assert_eq!(qout, qout2);

        // The values carry a bounded error. The per-value input bound is
        // `max_scale/2` ≤ 0.004 for these [0, 1) features; three GCN
        // layers of glorot weights and degree-normalised aggregation
        // amplify it by far less than 25× on this graph, so 0.1 is a
        // comfortable ceiling — while exact equality would mean the knob
        // did nothing.
        let input_bound = igcn_linalg::QuantizedFeatures::quantize(&x).error_bound();
        assert!(input_bound <= 0.004, "input bound {input_bound} implausibly loose");
        assert_ne!(qout, exact, "quantized path produced bit-identical outputs");
        let worst = qout
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst <= 0.1, "quantized output diverged by {worst}");
    }

    #[test]
    fn empty_graphs_are_an_error_not_a_panic() {
        let no_nodes = CsrGraph::from_undirected_edges(0, &[]).unwrap();
        assert!(matches!(
            IGcnEngine::builder(no_nodes).build(),
            Err(CoreError::EmptyGraph { num_nodes: 0, .. })
        ));
        let no_edges = CsrGraph::from_undirected_edges(5, &[]).unwrap();
        assert!(matches!(
            IGcnEngine::builder(no_edges.clone()).build(),
            Err(CoreError::EmptyGraph { num_edges: 0, .. })
        ));
        let model = GnnModel::gcn(4, 4, 2);
        let x = SparseFeatures::random(5, 4, 0.5, 1);
        assert!(matches!(
            account_islandized(
                &no_edges,
                IslandizationConfig::default(),
                ConsumerConfig::default(),
                &x,
                &model,
            ),
            Err(CoreError::EmptyGraph { .. })
        ));
    }

    #[test]
    fn empty_batches_are_accepted() {
        let (g, _) = engine_setup(150, 0.0, 11);
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        // Even before prepare: an empty batch asks for nothing.
        assert_eq!(engine.infer_batch(&[]).unwrap(), Vec::new());
        let model = GnnModel::gcn(10, 6, 3);
        let w = ModelWeights::glorot(&model, 14);
        engine.prepare(&model, &w).unwrap();
        assert_eq!(engine.infer_batch(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn apply_update_supports_removals() {
        let (g, _) = engine_setup(300, 0.01, 12);
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 15);
        engine.prepare(&model, &w).unwrap();

        // Remove one existing island-internal or island-hub edge.
        let island = engine.partition().islands().iter().find(|i| i.len() >= 2).unwrap();
        let a = island.nodes[0];
        let b = *engine
            .graph()
            .neighbors(NodeId::new(a))
            .iter()
            .find(|&&nb| nb != a)
            .expect("island node has a neighbor");
        let report = engine.apply_update(GraphUpdate::remove_edges(vec![(a, b)])).unwrap();
        assert!(report.dissolved_islands >= 1, "the endpoint island must dissolve");
        engine.partition().check_invariants(engine.graph()).unwrap();
        assert!(!engine.graph().has_edge(NodeId::new(a), NodeId::new(b)));

        let n = engine.graph().num_nodes();
        let x = SparseFeatures::random(n, 10, 0.4, 16);
        let diff = engine.verify(&x, &model, &w).unwrap();
        assert!(diff < 1e-3, "post-removal inference diverged by {diff}");

        // Removing a non-existent edge is an error.
        assert!(matches!(
            engine.apply_update(GraphUpdate::remove_edges(vec![(a, b)])),
            Err(CoreError::MissingEdge { .. })
        ));
    }

    #[test]
    fn batched_updates_match_sequential_replay() {
        // The WAL-replay contract: applying a batch with one final
        // layout recomposition must land in exactly the state (graph,
        // partition, locator stats, outputs, reports) that per-update
        // replay produces.
        let (g, _) = engine_setup(320, 0.02, 20);
        let model = GnnModel::gcn(10, 8, 4);
        let w = ModelWeights::glorot(&model, 21);
        let mut sequential = IGcnEngine::builder(g.clone()).build().unwrap();
        let mut batched = IGcnEngine::builder(g).build().unwrap();
        sequential.prepare(&model, &w).unwrap();
        batched.prepare(&model, &w).unwrap();

        let n = sequential.graph().num_nodes() as u32;
        let hub = sequential.partition().hubs()[0];
        let island = sequential.partition().islands().iter().find(|i| i.len() >= 2).unwrap();
        let a = island.nodes[0];
        let b = *sequential
            .graph()
            .neighbors(NodeId::new(a))
            .iter()
            .find(|&&nb| nb != a)
            .expect("island node has a neighbor");
        let updates = vec![
            GraphUpdate::add_edges(vec![(n, hub), (n + 1, n)]).with_num_nodes(n as usize + 2),
            GraphUpdate::remove_edges(vec![(a, b)]),
            GraphUpdate::add_edges(vec![(a, n + 1)]),
        ];

        let mut seq_reports = Vec::new();
        for u in &updates {
            seq_reports.push(sequential.apply_update(u.clone()).unwrap());
        }
        let batch_reports = batched.apply_updates_batched(&updates).unwrap();

        assert_eq!(seq_reports.len(), batch_reports.len());
        for (s, b) in seq_reports.iter().zip(&batch_reports) {
            assert_eq!(s.dissolved_islands, b.dissolved_islands);
            assert_eq!(s.reclassified_nodes, b.reclassified_nodes);
            assert_eq!(s.demoted_hubs, b.demoted_hubs);
            assert_eq!(s.num_nodes, b.num_nodes);
            assert_eq!(s.locator_stats, b.locator_stats);
        }
        assert_eq!(sequential.graph(), batched.graph());
        assert_eq!(sequential.partition(), batched.partition());
        assert_eq!(sequential.locator_stats(), batched.locator_stats());
        assert_eq!(sequential.layout(), batched.layout());

        let x = SparseFeatures::random(sequential.graph().num_nodes(), 10, 0.4, 22);
        let (so, ss) = sequential.run(&x, &model, &w).unwrap();
        let (bo, bs) = batched.run(&x, &model, &w).unwrap();
        assert_eq!(so, bo, "batched replay output diverged");
        assert_eq!(ss, bs, "batched replay stats diverged");
    }

    #[test]
    fn batched_updates_abort_atomically() {
        let (g, _) = engine_setup(200, 0.0, 23);
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        let before_graph = engine.graph().clone();
        let before_partition = engine.partition().clone();
        // Second update is invalid (self-loop): nothing may apply.
        let updates =
            vec![GraphUpdate::add_edges(vec![(0, 5)]), GraphUpdate::add_edges(vec![(3, 3)])];
        assert!(matches!(
            engine.apply_updates_batched(&updates),
            Err(CoreError::SelfLoops { node: 3 })
        ));
        assert_eq!(engine.graph(), &before_graph, "batch must not partially apply");
        assert_eq!(engine.partition(), &before_partition);
        assert!(engine.apply_updates_batched(&[]).unwrap().is_empty());
    }

    #[test]
    fn apply_update_rejects_bad_updates() {
        let (g, _) = engine_setup(150, 0.0, 7);
        let n = g.num_nodes();
        let mut engine = IGcnEngine::builder(g).build().unwrap();
        assert!(matches!(
            engine.apply_update(GraphUpdate::add_edges(vec![(0, 0)])),
            Err(CoreError::SelfLoops { node: 0 })
        ));
        assert!(matches!(
            engine.apply_update(GraphUpdate::add_edges(vec![(0, 9_999)])),
            Err(CoreError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            engine.apply_update(GraphUpdate::default().with_num_nodes(n - 1)),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }
}
