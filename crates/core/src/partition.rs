//! The result of islandization and its invariants.

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, NodeId, Permutation};

use crate::error::CoreError;
use crate::island::Island;

/// Classification of one node after islandization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeClass {
    /// Not yet classified (only observable mid-run).
    Unclassified,
    /// A hub: degree reached the threshold in some round.
    Hub,
    /// A member of the island with the given index.
    Island(u32),
}

/// The complete output of the Island Locator — the paper's abstract
/// `l_islands` container: islands (member nodes + contact hubs), the hub
/// set, and the inter-hub edge map.
///
/// # Example
///
/// ```
/// use igcn_core::{islandize, IslandizationConfig};
/// use igcn_graph::generate::HubIslandConfig;
///
/// let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(5);
/// let p = islandize(&g.graph, &IslandizationConfig::default());
/// assert_eq!(p.num_hubs() + p.num_island_nodes(), 300);
/// assert!(p.check_invariants(&g.graph).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandPartition {
    num_nodes: usize,
    islands: Vec<Island>,
    hubs: Vec<u32>,
    inter_hub_edges: Vec<(u32, u32)>,
    node_class: Vec<NodeClass>,
    c_max: usize,
}

impl IslandPartition {
    /// Assembles a partition from locator output (crate-internal).
    pub(crate) fn from_parts(
        num_nodes: usize,
        islands: Vec<Island>,
        hubs: Vec<u32>,
        inter_hub_edges: Vec<(u32, u32)>,
        node_class: Vec<NodeClass>,
        c_max: usize,
    ) -> Self {
        IslandPartition { num_nodes, islands, hubs, inter_hub_edges, node_class, c_max }
    }

    /// Reassembles a partition from externally stored parts (the
    /// deserialisation path of the snapshot store), validating the
    /// graph-independent invariants: the class table covers every node
    /// exactly once and agrees with the hub/island member lists.
    ///
    /// Graph-dependent invariants (closure, exact edge coverage) are
    /// *not* checked here — run [`IslandPartition::check_invariants`]
    /// for the full audit.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if the class table length is wrong,
    /// [`CoreError::ClassificationViolation`] if a node is missing,
    /// duplicated, out of range, or disagrees with its class entry.
    pub fn from_raw_parts(
        num_nodes: usize,
        islands: Vec<Island>,
        hubs: Vec<u32>,
        inter_hub_edges: Vec<(u32, u32)>,
        node_class: Vec<NodeClass>,
        c_max: usize,
    ) -> Result<Self, CoreError> {
        if node_class.len() != num_nodes {
            return Err(CoreError::ShapeMismatch {
                what: "node class table vs node count".to_string(),
                expected: num_nodes,
                got: node_class.len(),
            });
        }
        let mut seen = vec![false; num_nodes];
        let mut classify = |v: u32, expected: NodeClass| -> Result<(), CoreError> {
            let i = v as usize;
            if i >= num_nodes {
                return Err(CoreError::ClassificationViolation {
                    node: v,
                    detail: format!("node out of range for {num_nodes} nodes"),
                });
            }
            if seen[i] {
                return Err(CoreError::ClassificationViolation {
                    node: v,
                    detail: "node classified more than once".to_string(),
                });
            }
            seen[i] = true;
            if node_class[i] != expected {
                return Err(CoreError::ClassificationViolation {
                    node: v,
                    detail: "member list and node class disagree".to_string(),
                });
            }
            Ok(())
        };
        for &h in &hubs {
            classify(h, NodeClass::Hub)?;
        }
        for (idx, isl) in islands.iter().enumerate() {
            for &v in &isl.nodes {
                classify(v, NodeClass::Island(idx as u32))?;
            }
            if isl.len() > c_max {
                return Err(CoreError::IslandTooLarge { island: idx, size: isl.len(), c_max });
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(CoreError::ClassificationViolation {
                node: v as u32,
                detail: "node is neither hub nor island member".to_string(),
            });
        }
        for &(a, b) in &inter_hub_edges {
            let hubby =
                |v: u32| (v as usize) < num_nodes && node_class[v as usize] == NodeClass::Hub;
            if a >= b || !hubby(a) || !hubby(b) {
                return Err(CoreError::ClassificationViolation {
                    node: a,
                    detail: format!("inter-hub edge ({a}, {b}) is not a (min, max) hub pair"),
                });
            }
        }
        Ok(IslandPartition { num_nodes, islands, hubs, inter_hub_edges, node_class, c_max })
    }

    /// The per-node classification table, indexable by node ID (the raw
    /// twin of [`IslandPartition::class_of`], for serialisation).
    pub fn node_classes(&self) -> &[NodeClass] {
        &self.node_class
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The discovered islands, in discovery order.
    pub fn islands(&self) -> &[Island] {
        &self.islands
    }

    /// Number of islands.
    pub fn num_islands(&self) -> usize {
        self.islands.len()
    }

    /// Hub node IDs in detection order (round by round, ascending within a
    /// round).
    pub fn hubs(&self) -> &[u32] {
        &self.hubs
    }

    /// Number of hubs.
    pub fn num_hubs(&self) -> usize {
        self.hubs.len()
    }

    /// Total island-node count.
    pub fn num_island_nodes(&self) -> usize {
        self.islands.iter().map(|i| i.len()).sum()
    }

    /// Deduplicated undirected hub–hub edges (stored as `(min, max)`
    /// pairs) — the Island Collector's inter-hub edge map.
    pub fn inter_hub_edges(&self) -> &[(u32, u32)] {
        &self.inter_hub_edges
    }

    /// Classification of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn class_of(&self, node: NodeId) -> NodeClass {
        self.node_class[node.index()]
    }

    /// Index of the island containing `node`, if it is an island node.
    pub fn island_of(&self, node: NodeId) -> Option<usize> {
        match self.node_class[node.index()] {
            NodeClass::Island(i) => Some(i as usize),
            _ => None,
        }
    }

    /// Fraction of nodes classified as hubs — the paper expects this to be
    /// "a small fraction of the entire graph" for real-world inputs.
    pub fn hub_fraction(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.hubs.len() as f64 / self.num_nodes as f64
        }
    }

    /// The configured `c_max` the partition was produced under.
    pub fn c_max(&self) -> usize {
        self.c_max
    }

    /// Histogram of island sizes in power-of-two buckets.
    pub fn island_size_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; 1];
        for isl in &self.islands {
            let s = isl.len();
            let bucket = if s == 0 { 0 } else { (usize::BITS - 1 - s.leading_zeros()) as usize };
            if bucket >= hist.len() {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }

    /// Verifies all structural invariants against the source graph
    /// (self-loops in `graph` are ignored, as the locator ignores them):
    ///
    /// 1. every node is exactly one of hub / island node;
    /// 2. every island has at most `c_max` nodes;
    /// 3. island closure: island nodes' neighbors are in-island or hubs;
    /// 4. exact edge coverage: island bitmaps + inter-hub tasks cover every
    ///    directed loop-free edge exactly once.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`CoreError`].
    pub fn check_invariants(&self, graph: &CsrGraph) -> Result<(), CoreError> {
        // (1) Totality and uniqueness.
        let mut seen = vec![false; self.num_nodes];
        for &h in &self.hubs {
            if seen[h as usize] {
                return Err(CoreError::ClassificationViolation {
                    node: h,
                    detail: "hub listed twice or also an island node".to_string(),
                });
            }
            seen[h as usize] = true;
            if self.node_class[h as usize] != NodeClass::Hub {
                return Err(CoreError::ClassificationViolation {
                    node: h,
                    detail: "hub list and node class disagree".to_string(),
                });
            }
        }
        for (idx, isl) in self.islands.iter().enumerate() {
            for &v in &isl.nodes {
                if seen[v as usize] {
                    return Err(CoreError::ClassificationViolation {
                        node: v,
                        detail: format!("island {idx} member already classified"),
                    });
                }
                seen[v as usize] = true;
                if self.node_class[v as usize] != NodeClass::Island(idx as u32) {
                    return Err(CoreError::ClassificationViolation {
                        node: v,
                        detail: "island membership and node class disagree".to_string(),
                    });
                }
            }
            // (2) Size bound. Singleton islands for isolated nodes are
            // always legal.
            if isl.len() > self.c_max {
                return Err(CoreError::IslandTooLarge {
                    island: idx,
                    size: isl.len(),
                    c_max: self.c_max,
                });
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(CoreError::ClassificationViolation {
                node: v as u32,
                detail: "node is neither hub nor island member".to_string(),
            });
        }

        // (3) Closure: the space between L-shapes is blank.
        for (idx, isl) in self.islands.iter().enumerate() {
            for &v in &isl.nodes {
                for &nb in graph.neighbors(NodeId::new(v)) {
                    if nb == v {
                        continue;
                    }
                    let ok = match self.node_class[nb as usize] {
                        NodeClass::Hub => true,
                        NodeClass::Island(j) => j as usize == idx,
                        NodeClass::Unclassified => false,
                    };
                    if !ok {
                        return Err(CoreError::ClosureViolation { node: v, neighbor: nb });
                    }
                }
            }
        }

        // (4) Exact coverage: directed loop-free edges = island bitmap
        // entries + 2 × inter-hub edges.
        let loop_free_directed = graph.iter_edges().filter(|(u, v)| u != v).count() as u64;
        let island_entries: u64 = self.islands.iter().map(|isl| isl.bitmap(graph).nnz()).sum();
        let covered = island_entries + 2 * self.inter_hub_edges.len() as u64;
        if covered != loop_free_directed {
            // Identify one offending edge for the error message.
            for (u, v) in graph.iter_edges() {
                if u == v {
                    continue;
                }
                let times = self.edge_cover_count(u.value(), v.value());
                if times != 1 {
                    return Err(CoreError::CoverageViolation {
                        from: u.value(),
                        to: v.value(),
                        times,
                    });
                }
            }
            // Totals disagree but every edge looks covered once: double
            // counting inside one bitmap (should be impossible).
            return Err(CoreError::CoverageViolation { from: 0, to: 0, times: 0 });
        }
        Ok(())
    }

    /// How many tasks cover the directed edge `(u, v)`: 1 is correct.
    fn edge_cover_count(&self, u: u32, v: u32) -> usize {
        let mut times = 0;
        match (self.node_class[u as usize], self.node_class[v as usize]) {
            (NodeClass::Island(i), NodeClass::Island(j)) if i == j => {
                times += 1;
            }
            (NodeClass::Island(_), NodeClass::Hub) | (NodeClass::Hub, NodeClass::Island(_)) => {
                times += 1;
            }
            (NodeClass::Hub, NodeClass::Hub) => {
                let key = (u.min(v), u.max(v));
                if self.inter_hub_edges.binary_search(&key).is_ok()
                    || self.inter_hub_edges.contains(&key)
                {
                    times += 1;
                }
            }
            _ => {}
        }
        times
    }

    /// Node ordering induced by islandization for spy plots (Figure 9 /
    /// Figure 13): hubs first in detection order, then islands
    /// back-to-back in discovery order. Hub rows/columns form the
    /// L-shapes; islands form dense diagonal blocks; everything else is
    /// blank.
    pub fn ordering(&self) -> Permutation {
        let mut order: Vec<u32> = Vec::with_capacity(self.num_nodes);
        order.extend_from_slice(&self.hubs);
        for isl in &self.islands {
            order.extend_from_slice(&isl.nodes);
        }
        Permutation::from_order(&order).expect("partition covers every node exactly once")
    }

    /// Like [`IslandPartition::ordering`], but islands are laid along the
    /// anti-diagonal (reverse island order) to visually match the paper's
    /// Figure 9 rendering.
    pub fn ordering_antidiagonal(&self) -> Permutation {
        let mut order: Vec<u32> = Vec::with_capacity(self.num_nodes);
        order.extend_from_slice(&self.hubs);
        for isl in self.islands.iter().rev() {
            order.extend_from_slice(&isl.nodes);
        }
        Permutation::from_order(&order).expect("partition covers every node exactly once")
    }

    /// Fraction of directed edges that fall *outside* the islandized
    /// structure (0 for a valid partition — the "totally blank" claim of
    /// Figure 9; >0 for orderings produced by the baseline reordering
    /// algorithms, measured by `igcn-reorder`).
    pub fn outlier_fraction(&self, graph: &CsrGraph) -> f64 {
        let mut outliers = 0u64;
        let mut total = 0u64;
        for (u, v) in graph.iter_edges() {
            if u == v {
                continue;
            }
            total += 1;
            if self.edge_cover_count(u.value(), v.value()) != 1 {
                outliers += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            outliers as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::locator::islandize;
    use igcn_graph::generate::HubIslandConfig;

    fn partition() -> (CsrGraph, IslandPartition) {
        let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(9);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        (g.graph, p)
    }

    #[test]
    fn invariants_hold() {
        let (g, p) = partition();
        p.check_invariants(&g).unwrap();
        assert_eq!(p.outlier_fraction(&g), 0.0);
    }

    #[test]
    fn ordering_is_valid_permutation() {
        let (g, p) = partition();
        let o = p.ordering();
        assert_eq!(o.len(), g.num_nodes());
        let o2 = p.ordering_antidiagonal();
        assert_eq!(o2.len(), g.num_nodes());
        assert_ne!(o, o2);
    }

    #[test]
    fn class_lookup_consistent() {
        let (_, p) = partition();
        for &h in p.hubs() {
            assert_eq!(p.class_of(NodeId::new(h)), NodeClass::Hub);
            assert_eq!(p.island_of(NodeId::new(h)), None);
        }
        for (idx, isl) in p.islands().iter().enumerate() {
            for &v in &isl.nodes {
                assert_eq!(p.island_of(NodeId::new(v)), Some(idx));
            }
        }
    }

    #[test]
    fn hub_fraction_is_small_for_structured_graphs() {
        let (_, p) = partition();
        assert!(p.hub_fraction() < 0.35, "hub fraction {}", p.hub_fraction());
    }

    #[test]
    fn size_histogram_counts_islands() {
        let (_, p) = partition();
        let hist = p.island_size_histogram();
        let total: usize = hist.iter().sum();
        assert_eq!(total, p.num_islands());
    }

    #[test]
    fn detects_tampered_partition() {
        let (g, p) = partition();
        // Remove an island's node from the class table → totality breaks.
        let mut bad = p.clone();
        let victim = bad.islands[0].nodes[0];
        bad.node_class[victim as usize] = NodeClass::Unclassified;
        assert!(bad.check_invariants(&g).is_err());
    }
}
