//! The islandized *physical* data layout.
//!
//! Islandization discovers which nodes are touched together; this module
//! makes that locality **physical**. [`IslandLayout`] composes the
//! island schedule into a [`Permutation`] (hubs first in detection
//! order, then islands back to back in schedule order — exactly
//! [`IslandPartition::ordering`]) and materialises:
//!
//! * a schedule-ordered [`CsrGraph`], so each island's nodes and their
//!   intra-island neighbors are contiguous in memory;
//! * the permuted [`IslandPartition`] over the new IDs — island-node IDs
//!   form contiguous ranges and hub IDs are the compact range `0..H`,
//!   which is what lets the execution core replace `HashMap<u32, …>` hub
//!   tables with dense flat slabs indexed by hub ID;
//! * the per-island adjacency bitmaps (both the `Ã = A + I` variant the
//!   GCN/GraphSage window scan walks and the plain variant GIN uses),
//!   built **once** instead of once per island per layer;
//! * the inter-hub task list in the exact order the legacy execution
//!   path derives it (ascending *original* source hub ID), so the
//!   permuted execution replays floating-point accumulation in the same
//!   order and stays bit-identical to the unpermuted path.
//!
//! Requests and responses keep speaking original node IDs: features are
//! gathered into schedule order on the way in
//! ([`IslandLayout::gather_order`]) and the final layer's rows are
//! scattered back on the way out ([`IslandLayout::forward`]).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use igcn_graph::{CsrGraph, Permutation};

use crate::error::CoreError;
use crate::island::{Island, IslandBitmap};
use crate::partition::{IslandPartition, NodeClass};
use crate::schedule::IslandSchedule;

/// Schedule-ordered physical layout of one islandized graph.
///
/// Built once per (graph, partition) — at engine construction and after
/// every `apply_update` restructuring — and shared read-only by every
/// request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandLayout {
    /// `forward[old] = new`: original ID → schedule-order ID.
    perm: Permutation,
    /// `gather_order[new] = old`: the row-gather map for features.
    gather_order: Vec<u32>,
    /// The schedule-ordered graph.
    graph: CsrGraph,
    /// The partition over schedule-order IDs (hubs are `0..H`; island
    /// member IDs are contiguous per island).
    partition: IslandPartition,
    /// The island issue schedule over the permuted partition (identical
    /// work estimates to the original — degrees are preserved).
    schedule: IslandSchedule,
    /// Per-island adjacency bitmaps with the `Ã = A + I` diagonal on
    /// island-node rows (unit self-weight models).
    bitmaps_self: Vec<IslandBitmap>,
    /// Per-island adjacency bitmaps without the diagonal (GIN).
    bitmaps_plain: Vec<IslandBitmap>,
    /// Inter-hub tasks `(source, destinations)` in ascending *original*
    /// source-hub order with per-source destination order preserved —
    /// the exact replay order of the legacy PUSH-outer-product phase.
    inter_hub_tasks: Vec<(u32, Vec<u32>)>,
}

impl IslandLayout {
    /// Composes the physical layout for `partition` over `graph`.
    /// `num_pes` is the consumer's PE count (the schedule wave width).
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not belong to `graph` (mismatched node
    /// count or an invalid ordering).
    pub fn new(graph: &CsrGraph, partition: &IslandPartition, num_pes: usize) -> Self {
        assert_eq!(graph.num_nodes(), partition.num_nodes(), "partition does not match the graph");
        let perm = partition.ordering();
        let forward = perm.as_forward();
        let map = |v: u32| forward[v as usize];

        let islands: Vec<Island> = partition
            .islands()
            .iter()
            .map(|isl| Island {
                nodes: isl.nodes.iter().map(|&v| map(v)).collect(),
                hubs: isl.hubs.iter().map(|&h| map(h)).collect(),
                round: isl.round,
                engine: isl.engine,
            })
            .collect();
        let hubs: Vec<u32> = partition.hubs().iter().map(|&h| map(h)).collect();
        // `ordering()` lists hubs first in detection order, so the
        // permuted hub set is the compact prefix 0..H.
        debug_assert!(hubs.iter().enumerate().all(|(i, &h)| h == i as u32));

        let mut inter_hub_edges: Vec<(u32, u32)> = partition
            .inter_hub_edges()
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (map(a), map(b));
                (x.min(y), x.max(y))
            })
            .collect();
        inter_hub_edges.sort_unstable();

        let mut node_class = vec![NodeClass::Unclassified; graph.num_nodes()];
        for &h in &hubs {
            node_class[h as usize] = NodeClass::Hub;
        }
        for (idx, isl) in islands.iter().enumerate() {
            for &v in &isl.nodes {
                node_class[v as usize] = NodeClass::Island(idx as u32);
            }
        }

        let permuted_graph =
            graph.permute(&perm).expect("a partition ordering is a valid permutation");
        let permuted_partition = IslandPartition::from_parts(
            graph.num_nodes(),
            islands,
            hubs,
            inter_hub_edges,
            node_class,
            partition.c_max(),
        );
        let schedule = IslandSchedule::new(&permuted_graph, &permuted_partition, num_pes);

        // The bitmaps are layer-independent: build them once here
        // instead of once per island per layer in the hot loop.
        let bitmaps_self: Vec<IslandBitmap> = permuted_partition
            .islands()
            .iter()
            .map(|isl| isl.bitmap_with_self(&permuted_graph))
            .collect();
        let bitmaps_plain: Vec<IslandBitmap> =
            permuted_partition.islands().iter().map(|isl| isl.bitmap(&permuted_graph)).collect();

        // The legacy inter-hub phase groups edges into PUSH tasks with a
        // BTreeMap over *original* hub IDs; replay that exact order so
        // hub partial-result accumulation is bit-identical.
        let mut by_source: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(a, b) in partition.inter_hub_edges() {
            by_source.entry(a).or_default().push(b);
            by_source.entry(b).or_default().push(a);
        }
        let inter_hub_tasks: Vec<(u32, Vec<u32>)> = by_source
            .into_iter()
            .map(|(src, dests)| (map(src), dests.into_iter().map(map).collect()))
            .collect();

        let gather_order = perm.inverse().as_forward().to_vec();
        IslandLayout {
            perm,
            gather_order,
            graph: permuted_graph,
            partition: permuted_partition,
            schedule,
            bitmaps_self,
            bitmaps_plain,
            inter_hub_tasks,
        }
    }

    /// Reassembles a layout from externally stored parts — the
    /// deserialisation path of the snapshot store, which is what lets a
    /// warm-started engine skip both the locator pass *and* this
    /// module's composition work.
    ///
    /// Runs the cheap structural invariant check (O(nodes + islands),
    /// no edge walks): the permutation, graph and partition must agree
    /// on the node count, hub IDs must be the compact prefix `0..H`,
    /// island member IDs must tile `H..n` contiguously in island order,
    /// the schedule and both bitmap sets must have one entry per island
    /// with matching dimensions, and inter-hub tasks may only reference
    /// hubs.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] or
    /// [`CoreError::ClassificationViolation`] naming the first violated
    /// structural invariant.
    pub fn from_raw_parts(
        perm: Permutation,
        graph: CsrGraph,
        partition: IslandPartition,
        schedule: IslandSchedule,
        bitmaps_self: Vec<IslandBitmap>,
        bitmaps_plain: Vec<IslandBitmap>,
        inter_hub_tasks: Vec<(u32, Vec<u32>)>,
    ) -> Result<Self, CoreError> {
        let n = graph.num_nodes();
        let mismatch = |what: &str, expected: usize, got: usize| CoreError::ShapeMismatch {
            what: format!("layout {what}"),
            expected,
            got,
        };
        if perm.len() != n {
            return Err(mismatch("permutation vs graph nodes", n, perm.len()));
        }
        if partition.num_nodes() != n {
            return Err(mismatch("partition vs graph nodes", n, partition.num_nodes()));
        }
        let num_hubs = partition.num_hubs();
        for (i, &h) in partition.hubs().iter().enumerate() {
            if h as usize != i {
                return Err(CoreError::ClassificationViolation {
                    node: h,
                    detail: format!("layout hub #{i} is {h}, not the compact prefix ID {i}"),
                });
            }
        }
        let mut next = num_hubs as u32;
        for isl in partition.islands() {
            for &v in &isl.nodes {
                if v != next {
                    return Err(CoreError::ClassificationViolation {
                        node: v,
                        detail: format!(
                            "layout island node {v} breaks the contiguous range at {next}"
                        ),
                    });
                }
                next += 1;
            }
        }
        if next as usize != n {
            return Err(mismatch("island ranges vs graph nodes", n, next as usize));
        }
        let num_islands = partition.num_islands();
        if schedule.num_islands() != num_islands {
            return Err(mismatch(
                "schedule islands vs partition",
                num_islands,
                schedule.num_islands(),
            ));
        }
        if bitmaps_self.len() != num_islands {
            return Err(mismatch("self-bitmap count vs islands", num_islands, bitmaps_self.len()));
        }
        if bitmaps_plain.len() != num_islands {
            return Err(mismatch(
                "plain-bitmap count vs islands",
                num_islands,
                bitmaps_plain.len(),
            ));
        }
        for (idx, isl) in partition.islands().iter().enumerate() {
            let dim = isl.hubs.len() + isl.nodes.len();
            for bm in [&bitmaps_self[idx], &bitmaps_plain[idx]] {
                if bm.dim() != dim || bm.num_hubs() != isl.hubs.len() {
                    return Err(mismatch(&format!("bitmap {idx} dimension"), dim, bm.dim()));
                }
            }
        }
        for &(src, ref dests) in &inter_hub_tasks {
            for &h in std::iter::once(&src).chain(dests) {
                if h as usize >= num_hubs {
                    return Err(CoreError::ClassificationViolation {
                        node: h,
                        detail: format!(
                            "inter-hub task references non-hub ID {h} (H = {num_hubs})"
                        ),
                    });
                }
            }
        }
        let gather_order = perm.inverse().as_forward().to_vec();
        Ok(IslandLayout {
            perm,
            gather_order,
            graph,
            partition,
            schedule,
            bitmaps_self,
            bitmaps_plain,
            inter_hub_tasks,
        })
    }

    /// The schedule-order permutation (`forward[old] = new`).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// `forward[old] = new` as a slice — the scatter map for outputs
    /// (`output.row(old) = permuted.row(forward[old])`).
    pub fn forward(&self) -> &[u32] {
        self.perm.as_forward()
    }

    /// `gather_order[new] = old` — the row-gather map for request
    /// features (`SparseFeatures::gather_rows_into`).
    pub fn gather_order(&self) -> &[u32] {
        &self.gather_order
    }

    /// The schedule-ordered graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The partition over schedule-order IDs.
    pub fn partition(&self) -> &IslandPartition {
        &self.partition
    }

    /// The island issue schedule.
    pub fn schedule(&self) -> &IslandSchedule {
        &self.schedule
    }

    /// Number of hubs; hub IDs are exactly `0..num_hubs()` in the
    /// layout's ID space.
    pub fn num_hubs(&self) -> usize {
        self.partition.num_hubs()
    }

    /// The prebuilt adjacency bitmap of island `idx`; `with_self` picks
    /// the `Ã = A + I` variant (unit self-weight models).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bitmap(&self, idx: usize, with_self: bool) -> &IslandBitmap {
        if with_self {
            &self.bitmaps_self[idx]
        } else {
            &self.bitmaps_plain[idx]
        }
    }

    /// Inter-hub tasks in legacy replay order (ascending original
    /// source-hub ID), with layout IDs.
    pub fn inter_hub_tasks(&self) -> &[(u32, Vec<u32>)] {
        &self.inter_hub_tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::locator::islandize;
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::NodeId;

    fn setup() -> (CsrGraph, IslandPartition) {
        let g = HubIslandConfig::new(300, 12).noise_fraction(0.05).generate(9);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        (g.graph, p)
    }

    #[test]
    fn layout_partition_is_valid_and_hub_compact() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        layout.partition().check_invariants(layout.graph()).unwrap();
        for (i, &h) in layout.partition().hubs().iter().enumerate() {
            assert_eq!(h as usize, i, "hub IDs must be the compact prefix");
        }
        assert_eq!(layout.num_hubs(), p.num_hubs());
        assert_eq!(layout.partition().num_islands(), p.num_islands());
    }

    #[test]
    fn island_nodes_are_contiguous_ranges() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        let mut next = layout.num_hubs() as u32;
        for isl in layout.partition().islands() {
            for &v in &isl.nodes {
                assert_eq!(v, next, "island nodes must be contiguous in layout order");
                next += 1;
            }
        }
        assert_eq!(next as usize, g.num_nodes());
    }

    #[test]
    fn permuted_graph_preserves_degrees_and_edges() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        let forward = layout.forward();
        for v in g.iter_nodes() {
            let new = NodeId::new(forward[v.index()]);
            assert_eq!(g.degree(v), layout.graph().degree(new));
        }
        for (u, v) in g.iter_edges() {
            assert!(layout
                .graph()
                .has_edge(NodeId::new(forward[u.index()]), NodeId::new(forward[v.index()])));
        }
    }

    #[test]
    fn schedule_work_matches_unpermuted_schedule() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        let original = IslandSchedule::new(&g, &p, 8);
        assert_eq!(layout.schedule().work(), original.work());
        assert_eq!(layout.schedule().num_waves(), original.num_waves());
        assert_eq!(
            layout.schedule().occupancy(4).worker_busy_cycles,
            original.occupancy(4).worker_busy_cycles
        );
    }

    #[test]
    fn bitmaps_match_on_demand_construction() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        for (idx, isl) in layout.partition().islands().iter().enumerate() {
            assert_eq!(layout.bitmap(idx, true), &isl.bitmap_with_self(layout.graph()));
            assert_eq!(layout.bitmap(idx, false), &isl.bitmap(layout.graph()));
        }
    }

    #[test]
    fn inter_hub_tasks_cover_both_directions_in_original_order() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        let directed: usize = layout.inter_hub_tasks().iter().map(|(_, d)| d.len()).sum();
        assert_eq!(directed, 2 * p.inter_hub_edges().len());
        // Replay order: ascending original source-hub ID. Mapping the
        // layout sources back through the gather order must be sorted.
        let originals: Vec<u32> = layout
            .inter_hub_tasks()
            .iter()
            .map(|&(s, _)| layout.gather_order()[s as usize])
            .collect();
        assert!(originals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gather_and_forward_are_inverse() {
        let (g, p) = setup();
        let layout = IslandLayout::new(&g, &p, 8);
        for old in 0..g.num_nodes() {
            let new = layout.forward()[old] as usize;
            assert_eq!(layout.gather_order()[new] as usize, old);
        }
    }
}
