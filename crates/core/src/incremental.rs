//! Incremental re-islandization for evolving graphs.
//!
//! §1 of the paper motivates *runtime* restructuring with evolving and
//! dynamically generated graphs: offline reordering "is not tolerable
//! when processed online". The full Island Locator is already fast, but
//! when a batch of edges arrives on an already-islandized graph, most of
//! the partition is untouched — only structures incident to the new
//! edges can change. This module implements that update:
//!
//! 1. **Dissolve** every island containing an endpoint of an added edge
//!    (hubs never dissolve — their degree only grew).
//! 2. **Keep** every other island: the closure invariant proves they
//!    remain valid (an edge that could violate a surviving island's
//!    closure would have dissolved it).
//! 3. **Re-run** the locator rounds over the dissolved + newly added
//!    nodes only, seeding BFS from hubs adjacent to the residual region,
//!    with pre-existing hubs recognised by classification (their degree
//!    may sit below the restarted threshold).
//! 4. **Patch** the inter-hub edge map with added hub–hub edges.
//!
//! The result satisfies the same invariants as a from-scratch run
//! (property-tested), at a cost proportional to the disturbed
//! neighborhood rather than the whole graph.
//!
//! Edge *removals* ([`incremental_update`]) extend the same scheme:
//! the islands of a removed edge's endpoints dissolve, and a hub
//! endpoint whose loop-free degree falls below
//! [`IslandizationConfig::hub_floor`] is **demoted** — it re-enters the
//! unclassified pool together with every island it contacts (their
//! closure relied on its hub status), and its inter-hub edges leave the
//! map. The residual locator rounds then re-classify the disturbed
//! region; a demoted node that still qualifies at some decayed threshold
//! simply becomes a hub again, and TP-BFS's hub-seed handling re-records
//! its hub–hub edges.

use std::collections::{BTreeSet, HashSet};

use igcn_graph::{CsrGraph, NodeId};

use crate::config::IslandizationConfig;
use crate::error::CoreError;
use crate::island::Island;
use crate::locator::task_gen::{BfsTask, TaskQueue};
use crate::locator::{hub_detect, tpbfs};
use crate::partition::{IslandPartition, NodeClass};
use crate::stats::{LocatorStats, RoundStats};

/// Outcome of an incremental update.
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// The refreshed partition, valid for the updated graph.
    pub partition: IslandPartition,
    /// Locator statistics of the incremental rounds only.
    pub stats: LocatorStats,
    /// Islands dissolved by the update.
    pub dissolved_islands: usize,
    /// Hubs demoted because removals dropped their degree below the hub
    /// floor.
    pub demoted_hubs: usize,
    /// Nodes that had to be re-classified (dissolved members + demoted
    /// hubs + new nodes).
    pub reclassified_nodes: usize,
}

/// Applies a batch of added undirected edges to an existing partition
/// (the additions-only convenience wrapper over
/// [`incremental_update`]).
///
/// `new_graph` must be the updated graph (old graph + `added_edges`,
/// possibly with new nodes appended); `old` must be a valid partition of
/// the pre-update graph.
///
/// # Errors
///
/// As [`incremental_update`].
pub fn incremental_islandize(
    new_graph: &CsrGraph,
    old: &IslandPartition,
    added_edges: &[(u32, u32)],
    cfg: &IslandizationConfig,
) -> Result<IncrementalResult, CoreError> {
    incremental_update(new_graph, old, added_edges, &[], cfg)
}

/// Applies a batch of added *and removed* undirected edges to an
/// existing partition.
///
/// `new_graph` must be the updated graph (old graph − `removed_edges` +
/// `added_edges`, possibly with new nodes appended — see
/// [`apply_edge_changes`]); `old` must be a valid partition of the
/// pre-update graph.
///
/// # Errors
///
/// Returns [`CoreError::RoundLimitExceeded`] if the incremental rounds
/// fail to converge (mis-configured decay), or
/// [`CoreError::ShapeMismatch`] if the graph shrank or an edge batch
/// references nodes beyond `new_graph`.
pub fn incremental_update(
    new_graph: &CsrGraph,
    old: &IslandPartition,
    added_edges: &[(u32, u32)],
    removed_edges: &[(u32, u32)],
    cfg: &IslandizationConfig,
) -> Result<IncrementalResult, CoreError> {
    let n_new = new_graph.num_nodes();
    let n_old = old.num_nodes();
    if n_new < n_old {
        return Err(CoreError::ShapeMismatch {
            what: "updated node count (graphs cannot shrink)".to_string(),
            expected: n_old,
            got: n_new,
        });
    }
    for &(a, b) in added_edges.iter().chain(removed_edges) {
        if a as usize >= n_new || b as usize >= n_new {
            return Err(CoreError::ShapeMismatch {
                what: "edge endpoint vs updated graph".to_string(),
                expected: n_new,
                got: a.max(b) as usize,
            });
        }
    }

    // --- Loop-free degrees of the updated graph (needed both for hub
    // demotion and for the residual rounds below). ---
    let mut degrees = new_graph.degrees();
    for v in new_graph.iter_nodes() {
        if new_graph.has_edge(v, v) {
            degrees[v.index()] -= 1;
        }
    }

    // --- 1+2: carry over classifications, dissolving dirty islands. ---
    let mut dirty: BTreeSet<u32> = BTreeSet::new();
    for &(a, b) in added_edges.iter().chain(removed_edges) {
        for v in [a, b] {
            if (v as usize) < n_old {
                if let Some(idx) = old.island_of(NodeId::new(v)) {
                    dirty.insert(idx as u32);
                }
            }
        }
    }
    // Hub endpoints of removed edges whose degree fell below the floor
    // are demoted. Every island such a hub contacts relied on its hub
    // status for closure, so those islands dissolve into the residual
    // region along with the demoted hub itself.
    let hub_floor = cfg.hub_floor();
    let mut demoted: BTreeSet<u32> = BTreeSet::new();
    for &(a, b) in removed_edges {
        for v in [a, b] {
            if (v as usize) < n_old
                && old.class_of(NodeId::new(v)) == NodeClass::Hub
                && degrees[v as usize] < hub_floor
            {
                demoted.insert(v);
            }
        }
    }
    for &d in &demoted {
        for &nb in new_graph.neighbors(NodeId::new(d)) {
            if (nb as usize) < n_old {
                if let Some(idx) = old.island_of(NodeId::new(nb)) {
                    dirty.insert(idx as u32);
                }
            }
        }
    }

    let mut node_class: Vec<NodeClass> = vec![NodeClass::Unclassified; n_new];
    let mut islands: Vec<Island> = Vec::with_capacity(old.num_islands());
    let mut reclassified = n_new - n_old + demoted.len();
    for (idx, island) in old.islands().iter().enumerate() {
        if dirty.contains(&(idx as u32)) {
            reclassified += island.len();
            continue; // dissolved: members fall back to Unclassified
        }
        let new_idx = islands.len() as u32;
        for &v in &island.nodes {
            node_class[v as usize] = NodeClass::Island(new_idx);
        }
        islands.push(island.clone());
    }
    let mut hubs: Vec<u32> = old.hubs().iter().copied().filter(|h| !demoted.contains(h)).collect();
    for &h in &hubs {
        node_class[h as usize] = NodeClass::Hub;
    }
    let mut inter_hub: BTreeSet<(u32, u32)> = old
        .inter_hub_edges()
        .iter()
        .copied()
        .filter(|&(a, b)| !demoted.contains(&a) && !demoted.contains(&b))
        .collect();

    // --- 4 (early): hub–hub edge changes go straight to the map. ---
    for &(a, b) in removed_edges {
        inter_hub.remove(&(a.min(b), a.max(b)));
    }
    for &(a, b) in added_edges {
        if node_class[a as usize] == NodeClass::Hub && node_class[b as usize] == NodeClass::Hub {
            inter_hub.insert((a.min(b), a.max(b)));
        }
    }

    // --- 3: locator rounds over the residual region. ---
    let mut remaining = node_class.iter().filter(|c| **c == NodeClass::Unclassified).count();
    let max_unclassified_degree = node_class
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == NodeClass::Unclassified)
        .map(|(v, _)| degrees[v] as usize)
        .max()
        .unwrap_or(0);
    let mut threshold = cfg.threshold_init.resolve(max_unclassified_degree);
    let mut stats = LocatorStats::default();
    let mut v_global: Vec<u32> = vec![0; n_new];
    let mut retry: Vec<BfsTask> = Vec::new();
    let mut seed_seen: Vec<bool> = vec![false; n_new];
    let mut round: u32 = 0;

    // Pre-existing hubs adjacent to the residual region re-seed it (their
    // original tasks were consumed long ago). One pass over the residual
    // nodes finds the contacts.
    let mut boundary_tasks: Vec<BfsTask> = Vec::new();
    for v in 0..n_new as u32 {
        if node_class[v as usize] != NodeClass::Unclassified {
            continue;
        }
        for &nb in new_graph.neighbors(NodeId::new(v)) {
            if node_class[nb as usize] == NodeClass::Hub {
                boundary_tasks.push(BfsTask { hub: nb, seed: v });
            }
        }
    }

    while remaining > 0 {
        if round >= cfg.max_rounds {
            return Err(CoreError::RoundLimitExceeded { max_rounds: cfg.max_rounds, remaining });
        }
        let scanned = remaining;
        let new_hubs = hub_detect::detect_hubs(&degrees, &node_class, threshold);
        for &h in &new_hubs {
            node_class[h as usize] = NodeClass::Hub;
            remaining -= 1;
        }
        let hub_detect_cycles = (scanned as u64).div_ceil(cfg.p1_lanes as u64).max(1);

        let mut queue = TaskQueue::new();
        if round == 0 {
            for t in boundary_tasks.drain(..) {
                queue.push(t.hub, t.seed);
            }
        }
        // One retry per seed: duplicate drops of the same region would
        // only multiply conflict traffic.
        retry.sort_by_key(|t| t.seed);
        retry.dedup_by_key(|t| t.seed);
        for task in retry.drain(..) {
            if node_class[task.seed as usize] == NodeClass::Unclassified {
                queue.push(task.hub, task.seed);
            }
        }
        seed_seen.fill(false);
        let mut adjacency_words = 0u64;
        for &h in &new_hubs {
            adjacency_words += degrees[h as usize] as u64;
            for &nb in new_graph.neighbors(NodeId::new(h)) {
                if nb == h {
                    continue;
                }
                if degrees[nb as usize] >= threshold {
                    queue.push(h, nb); // hub seed: records an inter-hub edge
                } else if !seed_seen[nb as usize] {
                    seed_seen[nb as usize] = true;
                    queue.push(h, nb);
                }
            }
        }
        stats.tasks_generated += queue.len() as u64;

        v_global.fill(0);
        let outcome = tpbfs::run_bfs_phase(
            new_graph,
            &degrees,
            threshold,
            cfg.c_max,
            cfg.p2_engines,
            &mut queue,
            &mut v_global,
            &node_class,
            round,
        );
        adjacency_words += outcome.adjacency_words_read;
        let islands_this_round = outcome.islands.len();
        let mut island_nodes_classified = 0usize;
        for island in outcome.islands {
            let idx = islands.len() as u32;
            for &v in &island.nodes {
                debug_assert_eq!(node_class[v as usize], NodeClass::Unclassified);
                node_class[v as usize] = NodeClass::Island(idx);
                remaining -= 1;
                island_nodes_classified += 1;
            }
            islands.push(island);
        }
        for (a, b) in outcome.inter_hub_edges {
            inter_hub.insert((a.min(b), a.max(b)));
        }
        retry = outcome.retry_tasks;
        stats.tasks_dropped_conflict += outcome.dropped_conflict;
        stats.tasks_dropped_overflow += outcome.dropped_overflow;
        stats.tasks_dropped_hub_seed += outcome.dropped_hub_seed;
        stats.adjacency_words_read += adjacency_words;
        stats.virtual_cycles += hub_detect_cycles + outcome.cycles;
        stats.rounds.push(RoundStats {
            round,
            threshold,
            hubs_found: new_hubs.len(),
            islands_found: islands_this_round,
            island_nodes_classified,
            hub_detect_cycles,
            bfs_cycles: outcome.cycles,
        });
        hubs.extend_from_slice(&new_hubs);

        if threshold == 1 && remaining > 0 {
            for (v, class) in node_class.iter_mut().enumerate() {
                if *class == NodeClass::Unclassified {
                    let idx = islands.len() as u32;
                    *class = NodeClass::Island(idx);
                    islands.push(Island {
                        nodes: vec![v as u32],
                        hubs: Vec::new(),
                        round,
                        engine: 0,
                    });
                    remaining -= 1;
                }
            }
        }
        threshold = cfg.decay.apply(threshold);
        round += 1;
    }

    stats.islands_found = islands.len() as u64;
    stats.inter_hub_edges = inter_hub.len() as u64;
    let dissolved_islands = dirty.len();
    let partition = IslandPartition::from_parts(
        n_new,
        islands,
        hubs,
        inter_hub.into_iter().collect(),
        node_class,
        cfg.c_max,
    );
    Ok(IncrementalResult {
        partition,
        stats,
        dissolved_islands,
        demoted_hubs: demoted.len(),
        reclassified_nodes: reclassified,
    })
}

/// Validates one [`GraphUpdate`] against an existing graph + partition
/// and applies it structurally: shrink/self-loop validation,
/// [`apply_edge_changes`], then the incremental locator rounds. Returns
/// the updated graph and the [`IncrementalResult`]; the caller decides
/// when to commit them (and when to recompose any derived layout) —
/// this is the single shared prologue of `IGcnEngine::apply_update`,
/// `IGcnEngine::apply_updates_batched` and `igcn-shard`'s routed
/// updates, so a validation rule added here reaches all three.
///
/// [`GraphUpdate`]: crate::accel::GraphUpdate
///
/// # Errors
///
/// As [`incremental_update`], plus [`CoreError::ShapeMismatch`] for a
/// shrinking node count and [`CoreError::SelfLoops`] for a self-loop
/// addition.
pub fn apply_update_structural(
    graph: &CsrGraph,
    partition: &IslandPartition,
    cfg: &IslandizationConfig,
    update: &crate::accel::GraphUpdate,
) -> Result<(CsrGraph, IncrementalResult), CoreError> {
    let n_old = graph.num_nodes();
    let n_new = update.new_num_nodes.unwrap_or(n_old);
    if n_new < n_old {
        return Err(CoreError::ShapeMismatch {
            what: "updated node count (graphs cannot shrink)".to_string(),
            expected: n_old,
            got: n_new,
        });
    }
    for &(a, b) in &update.added_edges {
        if a == b {
            return Err(CoreError::SelfLoops { node: a });
        }
    }
    let new_graph = apply_edge_changes(graph, n_new, &update.added_edges, &update.removed_edges)?;
    let result =
        incremental_update(&new_graph, partition, &update.added_edges, &update.removed_edges, cfg)?;
    Ok((new_graph, result))
}

/// Builds the updated graph from the old one plus added undirected edges
/// (the additions-only convenience wrapper over [`apply_edge_changes`]).
///
/// # Errors
///
/// As [`apply_edge_changes`].
pub fn apply_edges(
    old_graph: &CsrGraph,
    num_nodes: usize,
    added: &[(u32, u32)],
) -> Result<CsrGraph, CoreError> {
    apply_edge_changes(old_graph, num_nodes, added, &[])
}

/// Builds the updated graph: the old one minus `removed` undirected
/// edges plus `added` ones (removals first, so an edge in both batches
/// ends up present).
///
/// # Errors
///
/// [`CoreError::MissingEdge`] if a removed edge is not present in
/// `old_graph`; [`CoreError::ShapeMismatch`] if an added edge references
/// a node at or beyond `num_nodes` (after growing to at least the old
/// node count).
pub fn apply_edge_changes(
    old_graph: &CsrGraph,
    num_nodes: usize,
    added: &[(u32, u32)],
    removed: &[(u32, u32)],
) -> Result<CsrGraph, CoreError> {
    let n = num_nodes.max(old_graph.num_nodes());
    let n_old = old_graph.num_nodes();
    let mut drop_set: HashSet<(u32, u32)> = HashSet::with_capacity(removed.len() * 2);
    for &(a, b) in removed {
        let present = (a as usize) < n_old
            && (b as usize) < n_old
            && old_graph.has_edge(NodeId::new(a), NodeId::new(b));
        if !present {
            return Err(CoreError::MissingEdge { from: a, to: b });
        }
        drop_set.insert((a, b));
        drop_set.insert((b, a));
    }
    let mut edges: Vec<(u32, u32)> = old_graph
        .iter_edges()
        .map(|(u, v)| (u.value(), v.value()))
        .filter(|e| !drop_set.contains(e))
        .collect();
    for &(a, b) in added {
        if a as usize >= n || b as usize >= n {
            return Err(CoreError::ShapeMismatch {
                what: "added edge endpoint vs updated node count".to_string(),
                expected: n,
                got: a.max(b) as usize,
            });
        }
        edges.push((a, b));
        if a != b {
            edges.push((b, a));
        }
    }
    CsrGraph::from_directed_edges(n, &edges).map_err(|e| CoreError::ShapeMismatch {
        what: format!("rebuilding CSR after update: {e}"),
        expected: n,
        got: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locator::IslandLocator;
    use igcn_graph::generate::HubIslandConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn base(seed: u64) -> (CsrGraph, IslandPartition) {
        let g = HubIslandConfig::new(400, 16).noise_fraction(0.01).generate(seed);
        let cfg = IslandizationConfig::default();
        let (p, _) = IslandLocator::new(&g.graph, &cfg).run().unwrap();
        (g.graph, p)
    }

    fn random_new_edges(graph: &CsrGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.num_nodes() as u32;
        let mut edges = Vec::new();
        while edges.len() < count {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
                edges.push((a, b));
            }
        }
        edges
    }

    #[test]
    fn incremental_satisfies_invariants() {
        let (g, p) = base(1);
        let added = random_new_edges(&g, 12, 2);
        let g2 = apply_edges(&g, g.num_nodes(), &added).unwrap();
        let cfg = IslandizationConfig::default();
        let result = incremental_islandize(&g2, &p, &added, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert!(result.dissolved_islands > 0);
    }

    #[test]
    fn untouched_islands_survive() {
        let (g, p) = base(3);
        let added = random_new_edges(&g, 3, 4);
        let g2 = apply_edges(&g, g.num_nodes(), &added).unwrap();
        let cfg = IslandizationConfig::default();
        let result = incremental_islandize(&g2, &p, &added, &cfg).unwrap();
        // Far fewer nodes reclassified than the whole graph.
        assert!(
            result.reclassified_nodes < g.num_nodes() / 2,
            "only the disturbed neighborhood should be redone, got {}",
            result.reclassified_nodes
        );
        assert!(result.partition.num_islands() > 0);
    }

    #[test]
    fn empty_update_is_identity_cheap() {
        let (g, p) = base(5);
        let cfg = IslandizationConfig::default();
        let result = incremental_islandize(&g, &p, &[], &cfg).unwrap();
        result.partition.check_invariants(&g).unwrap();
        assert_eq!(result.dissolved_islands, 0);
        assert_eq!(result.reclassified_nodes, 0);
        assert_eq!(result.partition.num_islands(), p.num_islands());
    }

    #[test]
    fn node_growth_supported() {
        let (g, p) = base(7);
        let n = g.num_nodes();
        // Two new nodes: one wired to an existing hub, one isolated.
        let hub = p.hubs()[0];
        let added = vec![(n as u32, hub)];
        let g2 = apply_edges(&g, n + 2, &added).unwrap();
        let cfg = IslandizationConfig::default();
        let result = incremental_islandize(&g2, &p, &added, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert_eq!(result.partition.num_nodes(), n + 2);
    }

    #[test]
    fn hub_hub_edge_only_touches_the_map() {
        let (g, p) = base(9);
        let (h1, h2) = (p.hubs()[0], p.hubs()[1]);
        if g.has_edge(NodeId::new(h1), NodeId::new(h2)) {
            return; // seed produced adjacent hubs; nothing to add
        }
        let added = vec![(h1, h2)];
        let g2 = apply_edges(&g, g.num_nodes(), &added).unwrap();
        let cfg = IslandizationConfig::default();
        let result = incremental_islandize(&g2, &p, &added, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert_eq!(result.dissolved_islands, 0);
        assert!(result.partition.inter_hub_edges().contains(&(h1.min(h2), h1.max(h2))));
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let (g, p) = base(11);
        let cfg = IslandizationConfig::default();
        let err = incremental_islandize(&g, &p, &[(0, 9999)], &cfg).unwrap_err();
        assert!(matches!(err, CoreError::ShapeMismatch { .. }));
    }

    #[test]
    fn removal_dissolves_endpoint_islands() {
        let (g, p) = base(21);
        // Pick an edge inside an island (member ↔ member or member ↔ hub).
        let island = p.islands().iter().find(|i| i.len() >= 2).unwrap();
        let a = island.nodes[0];
        let b = *g.neighbors(NodeId::new(a)).iter().find(|&&nb| nb != a).unwrap();
        let removed = vec![(a, b)];
        let g2 = apply_edge_changes(&g, g.num_nodes(), &[], &removed).unwrap();
        assert!(!g2.has_edge(NodeId::new(a), NodeId::new(b)));
        let cfg = IslandizationConfig::default();
        let result = incremental_update(&g2, &p, &[], &removed, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert!(result.dissolved_islands >= 1);
    }

    #[test]
    fn removal_demotes_starved_hubs() {
        // Star hub 0 over leaves {1, 2, 3} with an internal edge 1–2:
        // with an absolute threshold of 3 only node 0 (degree 3) is a
        // hub; {1, 2} and {3} close as islands against it. Removing 0–3
        // drops the hub to degree 2 < floor 3 → demotion, dissolving the
        // islands it contacts, and the residual re-run re-classifies
        // everything while keeping the invariants.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let cfg = IslandizationConfig::default()
            .with_threshold_init(crate::config::ThresholdInit::Absolute(3));
        assert_eq!(cfg.hub_floor(), 3);
        let (p, _) = IslandLocator::new(&g, &cfg).run().unwrap();
        p.check_invariants(&g).unwrap();
        assert_eq!(p.class_of(NodeId::new(0)), crate::partition::NodeClass::Hub);
        assert_eq!(p.num_hubs(), 1);

        let removed = vec![(0u32, 3u32)];
        let g2 = apply_edge_changes(&g, g.num_nodes(), &[], &removed).unwrap();
        let result = incremental_update(&g2, &p, &[], &removed, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert_eq!(result.demoted_hubs, 1, "hub 0 fell to degree 2 < floor 3");
        // All four nodes were disturbed: the demoted hub, both islands it
        // contacted, and nothing else exists.
        assert_eq!(result.reclassified_nodes, 4);
        // Node 3 is now isolated → singleton island, never a hub.
        assert!(matches!(
            result.partition.class_of(NodeId::new(3)),
            crate::partition::NodeClass::Island(_)
        ));
    }

    #[test]
    fn removal_of_missing_edge_errors() {
        let (g, _) = base(23);
        let err = apply_edge_changes(&g, g.num_nodes(), &[], &[(0, 1_000_000)]).unwrap_err();
        assert!(matches!(err, CoreError::MissingEdge { .. }));
    }

    #[test]
    fn removed_hub_hub_edge_leaves_the_map() {
        let (g, p) = base(25);
        // Find an inter-hub edge whose endpoints keep enough degree.
        let Some(&(h1, h2)) = p
            .inter_hub_edges()
            .iter()
            .find(|&&(a, b)| g.degree(NodeId::new(a)) > 3 && g.degree(NodeId::new(b)) > 3)
        else {
            return; // seed produced no such edge
        };
        let removed = vec![(h1, h2)];
        let g2 = apply_edge_changes(&g, g.num_nodes(), &[], &removed).unwrap();
        let cfg = IslandizationConfig::default();
        let result = incremental_update(&g2, &p, &[], &removed, &cfg).unwrap();
        result.partition.check_invariants(&g2).unwrap();
        assert!(!result.partition.inter_hub_edges().contains(&(h1.min(h2), h1.max(h2))));
        assert_eq!(result.dissolved_islands, 0, "hub-hub removal only touches the map");
    }

    #[test]
    fn mixed_add_and_remove_update_stays_valid() {
        let (mut g, mut p) = base(27);
        let cfg = IslandizationConfig::default();
        for step in 0..4 {
            let added = random_new_edges(&g, 4, 300 + step);
            // Remove an existing edge far from anything special.
            let island = p.islands().iter().find(|i| i.len() >= 2).unwrap();
            let a = island.nodes[0];
            let b = *g.neighbors(NodeId::new(a)).iter().find(|&&nb| nb != a).unwrap();
            let removed = vec![(a, b)];
            let g2 = apply_edge_changes(&g, g.num_nodes(), &added, &removed).unwrap();
            let result = incremental_update(&g2, &p, &added, &removed, &cfg).unwrap();
            result.partition.check_invariants(&g2).unwrap();
            g = g2;
            p = result.partition;
        }
    }

    #[test]
    fn repeated_updates_stay_valid() {
        let (mut g, mut p) = base(13);
        let cfg = IslandizationConfig::default();
        for step in 0..5 {
            let added = random_new_edges(&g, 5, 100 + step);
            let g2 = apply_edges(&g, g.num_nodes(), &added).unwrap();
            let result = incremental_islandize(&g2, &p, &added, &cfg).unwrap();
            result.partition.check_invariants(&g2).unwrap();
            g = g2;
            p = result.partition;
        }
    }
}
