//! Algorithm 4: Threshold-based Parallel BFS (TP-BFS).
//!
//! Each engine is the three-stage FSM of Figure 6(b): *idle* (requesting a
//! task), *expanding* (scanning one adjacency entry per cycle into its
//! Local Visited Table), and *emit* (closure reached — island found). The
//! three task-break conditions of Figure 5 are:
//!
//! * **(A) conflict** — the engine reaches a node marked in the global
//!   visited list but not its local one: another engine already searched
//!   this region. The engine unmarks its own local nodes and drops the
//!   task.
//! * **(B) overflow** — the local visited list exceeds `c_max`. The task
//!   is dropped; global marks *remain* so sibling engines do not redo the
//!   doomed search this round (the region is retried next round at a lower
//!   threshold).
//! * **(C) island found** — the query pointer catches up with the visited
//!   counter: every member's neighborhood is fully explored and closed.
//!
//! Engines advance in deterministic lock-step (one step per engine per
//! virtual cycle, serviced in index order), so conflicts genuinely occur
//! yet runs are exactly reproducible.

use igcn_graph::{CsrGraph, NodeId};

use crate::island::Island;
use crate::partition::NodeClass;

use super::task_gen::TaskQueue;

/// Result of one round's TP-BFS phase.
#[derive(Debug, Default)]
pub struct BfsOutcome {
    /// Islands confirmed this round.
    pub islands: Vec<Island>,
    /// Inter-hub edges discovered via hub-seed tasks (may contain
    /// duplicates; the caller deduplicates into the inter-hub edge map).
    pub inter_hub_edges: Vec<(u32, u32)>,
    /// Tasks dropped by overflow or conflict whose seed remains
    /// unclassified — the task queue retries them next round, after the
    /// threshold decays (a region that overflowed through a
    /// not-yet-peeled mid-degree node can close once that node hubifies).
    pub retry_tasks: Vec<super::task_gen::BfsTask>,
    /// Lock-step virtual cycles the phase took.
    pub cycles: u64,
    /// Adjacency-list words streamed from memory during expansion.
    pub adjacency_words_read: u64,
    /// Tasks dropped on break condition (A).
    pub dropped_conflict: u64,
    /// Tasks dropped on break condition (B).
    pub dropped_overflow: u64,
    /// Tasks dropped because the seed was itself a hub.
    pub dropped_hub_seed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EngineState {
    Idle,
    Expanding,
}

#[derive(Debug)]
struct Engine {
    state: EngineState,
    token: u32,
    task: super::task_gen::BfsTask,
    v_local: Vec<u32>,
    h_local: Vec<u32>,
    query: usize,
    nb_pos: usize,
}

impl Engine {
    fn new() -> Self {
        Engine {
            state: EngineState::Idle,
            token: 0,
            task: super::task_gen::BfsTask { hub: 0, seed: 0 },
            v_local: Vec::new(),
            h_local: Vec::new(),
            query: 0,
            nb_pos: 0,
        }
    }
}

/// Runs the TP-BFS phase for one round: drains `queue` across
/// `num_engines` lock-step engines.
///
/// `v_global` must be zeroed by the caller at round start (Algorithm 4
/// line 3); confirmed islands leave their marks for the rest of the round.
#[allow(clippy::too_many_arguments)]
pub fn run_bfs_phase(
    graph: &CsrGraph,
    degrees: &[u32],
    threshold: u32,
    c_max: usize,
    num_engines: usize,
    queue: &mut TaskQueue,
    v_global: &mut [u32],
    node_class: &[NodeClass],
    round: u32,
) -> BfsOutcome {
    assert!(num_engines > 0, "at least one engine is required");
    let mut outcome = BfsOutcome::default();
    let mut engines: Vec<Engine> = (0..num_engines).map(|_| Engine::new()).collect();
    let mut next_token: u32 = 1;

    loop {
        let mut any_busy = false;
        for (engine_idx, engine) in engines.iter_mut().enumerate() {
            match engine.state {
                EngineState::Idle => {
                    let Some(task) = queue.pop() else { continue };
                    any_busy = true;
                    let seed = task.seed;
                    if degrees[seed as usize] >= threshold
                        || node_class[seed as usize] == NodeClass::Hub
                    {
                        // Seed is itself a hub: drop the task and forward
                        // the inter-hub connection to the Island Collector.
                        outcome.inter_hub_edges.push((task.hub, seed));
                        outcome.dropped_hub_seed += 1;
                    } else if v_global[seed as usize] != 0
                        || node_class[seed as usize] != NodeClass::Unclassified
                    {
                        // Region already searched (possibly confirmed) this
                        // round — break condition (A) at the seed. Retried
                        // next round in case the searching engine also
                        // dropped.
                        outcome.dropped_conflict += 1;
                        outcome.retry_tasks.push(task);
                    } else {
                        engine.token = next_token;
                        next_token += 1;
                        engine.task = task;
                        engine.v_local.clear();
                        engine.v_local.push(seed);
                        v_global[seed as usize] = engine.token;
                        engine.h_local.clear();
                        engine.h_local.push(task.hub);
                        engine.query = 0;
                        engine.nb_pos = 0;
                        engine.state = EngineState::Expanding;
                    }
                }
                EngineState::Expanding => {
                    any_busy = true;
                    if engine.query == engine.v_local.len() {
                        // Break condition (C): closure — island found.
                        let mut hubs = Vec::with_capacity(engine.h_local.len());
                        for &h in &engine.h_local {
                            if !hubs.contains(&h) {
                                hubs.push(h);
                            }
                        }
                        outcome.islands.push(Island {
                            nodes: std::mem::take(&mut engine.v_local),
                            hubs,
                            round,
                            engine: engine_idx as u32,
                        });
                        engine.state = EngineState::Idle;
                        continue;
                    }
                    let node = engine.v_local[engine.query];
                    let neighbors = graph.neighbors(NodeId::new(node));
                    if engine.nb_pos == 0 {
                        // Adjacency list of `node` streamed in from memory.
                        outcome.adjacency_words_read += neighbors.len() as u64;
                    }
                    if engine.nb_pos >= neighbors.len() {
                        engine.query += 1;
                        engine.nb_pos = 0;
                        continue;
                    }
                    let n = neighbors[engine.nb_pos];
                    engine.nb_pos += 1;
                    if n == node {
                        continue; // self-loops do not participate
                    }
                    if degrees[n as usize] >= threshold || node_class[n as usize] == NodeClass::Hub
                    {
                        // Neighbor is a hub: this round's or an earlier
                        // round's (thresholds only decay, so the degree
                        // test identifies both), or a pre-existing hub
                        // during incremental re-islandization (whose
                        // degree may sit below the restarted threshold).
                        engine.h_local.push(n);
                    } else if engine.v_local.contains(&n) {
                        // Already locally explored: skip.
                    } else if v_global[n as usize] == 0 {
                        engine.v_local.push(n);
                        v_global[n as usize] = engine.token;
                        if engine.v_local.len() > c_max {
                            // Break condition (B): overflow. Global marks
                            // remain for the rest of the round; the task
                            // retries after the next threshold decay.
                            outcome.dropped_overflow += 1;
                            outcome.retry_tasks.push(engine.task);
                            engine.state = EngineState::Idle;
                        }
                    } else {
                        // Break condition (A): another engine (or a
                        // confirmed island) holds this node. Retract our
                        // own marks so the owner can still absorb them.
                        for &v in &engine.v_local {
                            if v_global[v as usize] == engine.token {
                                v_global[v as usize] = 0;
                            }
                        }
                        outcome.dropped_conflict += 1;
                        outcome.retry_tasks.push(engine.task);
                        engine.state = EngineState::Idle;
                    }
                }
            }
        }
        outcome.cycles += 1;
        if !any_busy {
            break;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two islands {1,2,3} and {4,5,6} hanging off hub 0.
    fn two_island_graph() -> CsrGraph {
        CsrGraph::from_undirected_edges(
            7,
            &[(0, 1), (0, 4), (1, 2), (1, 3), (2, 3), (4, 5), (4, 6), (5, 6)],
        )
        .unwrap()
    }

    fn run(
        graph: &CsrGraph,
        threshold: u32,
        c_max: usize,
        engines: usize,
        tasks: &[(u32, u32)],
    ) -> BfsOutcome {
        let degrees = graph.degrees();
        let mut queue = TaskQueue::new();
        for &(h, s) in tasks {
            queue.push(h, s);
        }
        let mut v_global = vec![0u32; graph.num_nodes()];
        let node_class = vec![NodeClass::Unclassified; graph.num_nodes()];
        run_bfs_phase(
            graph,
            &degrees,
            threshold,
            c_max,
            engines,
            &mut queue,
            &mut v_global,
            &node_class,
            0,
        )
    }

    #[test]
    fn finds_both_islands() {
        let g = two_island_graph();
        // Hub 0 has degree 2; islands' nodes have degree ≤ 3. Use
        // threshold so node 0 alone is the hub... node 1 and 4 have degree 3.
        // Degrees: 0→2, 1→3, 2→2, 3→2, 4→3, 5→2, 6→2. Take threshold 3:
        // hubs are 1 and 4. Seeds: neighbors of 1 (0,2,3) and of 4 (0,5,6).
        let out = run(&g, 3, 32, 2, &[(1, 0), (1, 2), (1, 3), (4, 0), (4, 5), (4, 6)]);
        // Node 0 bridges the two hubs: its BFS closes as island {0}.
        let total_nodes: usize = out.islands.iter().map(|i| i.len()).sum();
        assert_eq!(total_nodes, 5, "islands {:?}", out.islands);
        assert!(out.islands.iter().any(|i| {
            let mut n = i.nodes.clone();
            n.sort_unstable();
            n == vec![2, 3]
        }));
    }

    #[test]
    fn duplicate_seed_tasks_conflict() {
        let g = two_island_graph();
        let out = run(&g, 3, 32, 1, &[(1, 2), (1, 3)]);
        // Seed 3 is absorbed by the BFS from seed 2, so the second task
        // must drop on the global-visited check.
        assert_eq!(out.islands.len(), 1);
        assert_eq!(out.dropped_conflict, 1);
    }

    #[test]
    fn hub_seed_yields_inter_hub_edge() {
        let g = two_island_graph();
        // Both 1 and 4 have degree 3 = threshold; task (1, 4) is hub-hub...
        // they are not adjacent though; use a graph where hubs touch.
        let g2 =
            CsrGraph::from_undirected_edges(4, &[(0, 1), (0, 2), (1, 3), (0, 3), (1, 2)]).unwrap();
        // Degrees: 0→3, 1→3, 2→2, 3→2. Threshold 3 → hubs {0, 1}.
        let out = run(&g2, 3, 32, 1, &[(0, 1), (0, 2), (0, 3)]);
        assert!(out.inter_hub_edges.contains(&(0, 1)));
        assert_eq!(out.dropped_hub_seed, 1);
        let _ = g;
    }

    #[test]
    fn overflow_drops_task() {
        // A chain longer than c_max seeded from one end.
        let edges: Vec<(u32, u32)> = (0..10).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_undirected_edges(11, &edges).unwrap();
        let out = run(&g, 100, 4, 1, &[(0, 1)]);
        assert_eq!(out.islands.len(), 0);
        assert_eq!(out.dropped_overflow, 1);
    }

    #[test]
    fn chain_within_cmax_closes() {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_undirected_edges(6, &edges).unwrap();
        // Make node 0 the hub by threshold: degrees are 1,2,2,2,2,1 — use
        // threshold 10 with an injected task so nothing is a hub and the
        // whole chain is one island seeded from node 1... but seed must not
        // be a hub anyway. The island should absorb nodes 0..=5 minus none.
        let out = run(&g, 10, 32, 1, &[(99, 1)]);
        assert_eq!(out.islands.len(), 1);
        assert_eq!(out.islands[0].len(), 6);
        // Fictional hub 99 is carried as the island's contact hub.
        assert_eq!(out.islands[0].hubs, vec![99]);
    }

    #[test]
    fn lockstep_conflict_between_engines() {
        // A single long cycle explored from two seeds at opposite ends:
        // exactly one engine must win, the other must drop by conflict.
        let n = 20u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrGraph::from_undirected_edges(n as usize, &edges).unwrap();
        let out = run(&g, 10, 32, 2, &[(99, 0), (99, 10)]);
        assert_eq!(out.islands.len() + out.dropped_conflict as usize, 2);
        assert!(out.dropped_conflict >= 1, "two engines on one ring must conflict");
        let covered: usize = out.islands.iter().map(|i| i.len()).sum();
        assert_eq!(covered, n as usize, "winning engine must absorb the whole ring");
    }

    #[test]
    fn adjacency_reads_counted_once_per_visit() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let out = run(&g, 10, 32, 1, &[(9, 0)]);
        // BFS visits 0 (1 word), 1 (2 words), 2 (1 word) = 4 words.
        assert_eq!(out.adjacency_words_read, 4);
        assert_eq!(out.islands.len(), 1);
    }

    #[test]
    fn cycles_advance() {
        let g = two_island_graph();
        let out = run(&g, 3, 32, 4, &[(1, 2)]);
        assert!(out.cycles > 0);
    }
}
