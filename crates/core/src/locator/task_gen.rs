//! Algorithm 3: BFS task generation.
//!
//! Once a hub pops out of the hub buffer, the Task Generator streams its
//! adjacency list from global memory and enqueues one `(hub, neighbor)`
//! tuple per neighbor into the TP-BFS task queues. Using the *neighbors*
//! as BFS starting points (rather than the hub itself) is what exposes
//! enough parallelism to keep `P2` engines busy — every neighbor of every
//! hub is an independent seed.

use std::collections::VecDeque;

/// A BFS task: the hub it originated from and the seed node to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsTask {
    /// The hub whose adjacency produced this task.
    pub hub: u32,
    /// The neighbor node used as the BFS starting point (`a_o`).
    pub seed: u32,
}

/// FIFO of pending BFS tasks, shared by all TP-BFS engines.
///
/// # Example
///
/// ```
/// use igcn_core::locator::task_gen::TaskQueue;
///
/// let mut q = TaskQueue::new();
/// q.push(7, 3);
/// let t = q.pop().unwrap();
/// assert_eq!((t.hub, t.seed), (7, 3));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskQueue {
    tasks: VecDeque<BfsTask>,
}

impl TaskQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TaskQueue { tasks: VecDeque::new() }
    }

    /// Enqueues a `(hub, seed)` task.
    pub fn push(&mut self, hub: u32, seed: u32) {
        self.tasks.push_back(BfsTask { hub, seed });
    }

    /// Dequeues the oldest task.
    pub fn pop(&mut self) -> Option<BfsTask> {
        self.tasks.pop_front()
    }

    /// Number of pending tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks are pending.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = TaskQueue::new();
        q.push(1, 10);
        q.push(1, 11);
        q.push(2, 20);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().seed, 10);
        assert_eq!(q.pop().unwrap().seed, 11);
        assert_eq!(q.pop().unwrap().hub, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn default_is_empty() {
        assert!(TaskQueue::default().is_empty());
    }
}
