//! Algorithm 2: parallel threshold-based hub detection.
//!
//! The hardware stores node degrees in `P1` loop-back FIFOs; each cycle
//! every FIFO pops one node, the Island Node Filter discards nodes
//! classified in previous rounds (checking the island-node table), and a
//! comparator peels nodes whose degree reaches the threshold into the hub
//! buffer. The remaining nodes loop back for the next round.
//!
//! Functionally the sweep is a deterministic filter over node IDs — lane
//! assignment (`node % P1`) does not change the outcome, only the cycle
//! count, which the caller computes as `ceil(scanned / P1)`.

use crate::partition::NodeClass;

/// Sweeps all nodes and returns the IDs whose degree reaches `threshold`,
/// skipping nodes already classified (hub or island) in earlier rounds.
///
/// Returned IDs are in ascending order — the order the FIFO lanes would
/// emit them under round-robin interleaving.
pub fn detect_hubs(degrees: &[u32], node_class: &[NodeClass], threshold: u32) -> Vec<u32> {
    debug_assert_eq!(degrees.len(), node_class.len());
    let mut hubs = Vec::new();
    for (v, (&d, class)) in degrees.iter().zip(node_class).enumerate() {
        if *class == NodeClass::Unclassified && d >= threshold {
            hubs.push(v as u32);
        }
    }
    hubs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peels_only_unclassified_above_threshold() {
        let degrees = vec![5, 2, 9, 9];
        let class = vec![
            NodeClass::Unclassified,
            NodeClass::Unclassified,
            NodeClass::Hub,
            NodeClass::Unclassified,
        ];
        assert_eq!(detect_hubs(&degrees, &class, 5), vec![0, 3]);
    }

    #[test]
    fn threshold_is_inclusive() {
        let degrees = vec![4];
        let class = vec![NodeClass::Unclassified];
        assert_eq!(detect_hubs(&degrees, &class, 4), vec![0]);
        assert!(detect_hubs(&degrees, &class, 5).is_empty());
    }

    #[test]
    fn island_nodes_skipped() {
        let degrees = vec![10, 10];
        let class = vec![NodeClass::Island(0), NodeClass::Unclassified];
        assert_eq!(detect_hubs(&degrees, &class, 1), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(detect_hubs(&[], &[], 1).is_empty());
    }
}
