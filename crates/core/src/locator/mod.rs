//! The Island Locator: Algorithms 1–4 of the paper.
//!
//! Each round (one iteration of Algorithm 1's while loop):
//!
//! 1. **Hub detection** ([`hub_detect`]) sweeps the unclassified nodes in
//!    `P1` parallel lanes and peels every node whose degree reaches the
//!    current threshold `TH_tmp` into the hub buffer (Algorithm 2).
//! 2. **Task generation** ([`task_gen`]) pops hubs and enqueues one
//!    `(hub, neighbor)` BFS task per neighbor (Algorithm 3) — neighbors,
//!    not hubs, seed the search, which is what lets `P2` engines work one
//!    hub's periphery in parallel.
//! 3. **TP-BFS** ([`tpbfs`]) runs the `P2` engines in deterministic
//!    lock-step until the task queue drains. Engines grow islands to
//!    closure and break on the three conditions of Figure 5: (A) reached a
//!    node another engine already visited, (B) grew past `c_max`, (C)
//!    closure reached — island found.
//!
//! The threshold then decays (Algorithm 1 line 10) and the next round
//! starts, until every node is classified as hub or island node.
//!
//! Parallelism is simulated, not real: engines advance one step per
//! virtual cycle, serviced in index order, so every run is reproducible
//! while still exhibiting the interesting concurrency (global-visited
//! conflicts genuinely occur). Virtual-cycle counts feed the timing model
//! in `igcn-sim`.

pub mod hub_detect;
pub mod task_gen;
pub mod tpbfs;

use igcn_graph::{CsrGraph, NodeId};

use crate::config::IslandizationConfig;
use crate::error::CoreError;
use crate::island::Island;
use crate::partition::{IslandPartition, NodeClass};
use crate::stats::{LocatorStats, RoundStats};

use self::task_gen::TaskQueue;
use self::tpbfs::BfsOutcome;

/// Runs islandization over `graph` with `cfg`, returning the partition.
///
/// Convenience wrapper over [`IslandLocator`]; statistics are discarded.
/// The graph must be symmetric; self-loops are tolerated here by being
/// ignored (the locator operates on the loop-free structure).
///
/// # Panics
///
/// Panics if the graph is not symmetric or the locator exceeds its round
/// bound (see [`IslandizationConfig::max_rounds`]).
pub fn islandize(graph: &CsrGraph, cfg: &IslandizationConfig) -> IslandPartition {
    let (partition, _) = IslandLocator::new(graph, cfg).run().expect("islandization failed");
    partition
}

/// The Island Locator: round-based, threshold-decaying island discovery.
///
/// # Example
///
/// ```
/// use igcn_core::{IslandLocator, IslandizationConfig};
/// use igcn_graph::generate::HubIslandConfig;
///
/// let g = HubIslandConfig::new(200, 8).noise_fraction(0.0).generate(3);
/// let (partition, stats) = IslandLocator::new(&g.graph, &IslandizationConfig::default())
///     .run()
///     .unwrap();
/// assert!(stats.num_rounds() >= 1);
/// assert_eq!(
///     partition.num_hubs() + partition.num_island_nodes(),
///     g.graph.num_nodes()
/// );
/// ```
#[derive(Debug)]
pub struct IslandLocator<'g> {
    graph: &'g CsrGraph,
    cfg: IslandizationConfig,
    degrees: Vec<u32>,
}

impl<'g> IslandLocator<'g> {
    /// Creates a locator for `graph`.
    ///
    /// Degrees are loaded once into the (conceptual) Node Degree Buffers —
    /// hub thresholds compare against these static degrees throughout.
    pub fn new(graph: &'g CsrGraph, cfg: &IslandizationConfig) -> Self {
        let mut degrees = graph.degrees();
        // Self-loops do not count toward hub degree: the locator works on
        // the loop-free structure.
        for v in graph.iter_nodes() {
            if graph.has_edge(v, v) {
                degrees[v.index()] -= 1;
            }
        }
        IslandLocator { graph, cfg: *cfg, degrees }
    }

    /// Runs islandization to completion.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundLimitExceeded`] if `max_rounds` rounds did
    /// not classify every node (indicates a mis-configured decay policy).
    pub fn run(self) -> Result<(IslandPartition, LocatorStats), CoreError> {
        let n = self.graph.num_nodes();
        let mut stats = LocatorStats::default();
        let mut node_class: Vec<NodeClass> = vec![NodeClass::Unclassified; n];
        let mut islands: Vec<Island> = Vec::new();
        let mut hubs: Vec<u32> = Vec::new();
        let mut inter_hub: std::collections::BTreeSet<(u32, u32)> =
            std::collections::BTreeSet::new();
        let mut remaining = n;
        let mut threshold = self
            .cfg
            .threshold_init
            .resolve(self.degrees.iter().map(|&d| d as usize).max().unwrap_or(0));
        let mut round: u32 = 0;
        // Reused across rounds; cleared per round (Algorithm 4 line 3).
        let mut v_global: Vec<u32> = vec![0; n];
        // Tasks dropped by overflow/conflict, retried once the threshold
        // decays (the hardware's task queues simply keep them pending).
        let mut retry: Vec<task_gen::BfsTask> = Vec::new();
        // Per-round seed filter: on hub-dense graphs a member is the
        // neighbor of dozens of hubs and would be enqueued dozens of
        // times, flooding the engines with doomed duplicate searches. A
        // one-bit-per-node queue filter is trivial in hardware. Hub seeds
        // are never filtered: each (hub, hub) task records a distinct
        // inter-hub edge.
        let mut seed_seen: Vec<bool> = vec![false; n];

        while remaining > 0 {
            if round >= self.cfg.max_rounds {
                return Err(CoreError::RoundLimitExceeded {
                    max_rounds: self.cfg.max_rounds,
                    remaining,
                });
            }

            // --- Th1: hub detection (Algorithm 2). ---
            let scanned = remaining;
            let new_hubs = hub_detect::detect_hubs(&self.degrees, &node_class, threshold);
            for &h in &new_hubs {
                node_class[h as usize] = NodeClass::Hub;
                remaining -= 1;
            }
            let hub_detect_cycles = (scanned as u64).div_ceil(self.cfg.p1_lanes as u64).max(1);

            // --- Th2: task generation (Algorithm 3), plus retries of
            // tasks dropped in earlier rounds whose seed is still
            // unclassified. ---
            let mut queue = TaskQueue::new();
            // One retry per seed: duplicate drops of the same region would
            // only multiply conflict traffic.
            retry.sort_by_key(|t| t.seed);
            retry.dedup_by_key(|t| t.seed);
            for task in retry.drain(..) {
                if node_class[task.seed as usize] == NodeClass::Unclassified {
                    queue.push(task.hub, task.seed);
                }
            }
            seed_seen.fill(false);
            let mut adjacency_words = 0u64;
            for &h in &new_hubs {
                adjacency_words += self.degrees[h as usize] as u64;
                for &nb in self.graph.neighbors(NodeId::new(h)) {
                    if nb == h {
                        continue;
                    }
                    if self.degrees[nb as usize] >= threshold {
                        queue.push(h, nb); // hub seed: records an inter-hub edge
                    } else if !seed_seen[nb as usize] {
                        seed_seen[nb as usize] = true;
                        queue.push(h, nb);
                    }
                }
            }
            stats.tasks_generated += queue.len() as u64;

            // --- Th3: TP-BFS over P2 engines in lock-step (Algorithm 4). ---
            v_global.fill(0);
            let outcome: BfsOutcome = tpbfs::run_bfs_phase(
                self.graph,
                &self.degrees,
                threshold,
                self.cfg.c_max,
                self.cfg.p2_engines,
                &mut queue,
                &mut v_global,
                &node_class,
                round,
            );
            adjacency_words += outcome.adjacency_words_read;
            let mut island_nodes_classified = 0usize;
            let islands_this_round = outcome.islands.len();
            for island in outcome.islands {
                let idx = islands.len();
                for &v in &island.nodes {
                    debug_assert_eq!(node_class[v as usize], NodeClass::Unclassified);
                    node_class[v as usize] = NodeClass::Island(idx as u32);
                    remaining -= 1;
                    island_nodes_classified += 1;
                }
                islands.push(island);
            }
            for (a, b) in outcome.inter_hub_edges {
                inter_hub.insert((a.min(b), a.max(b)));
            }
            stats.tasks_dropped_conflict += outcome.dropped_conflict;
            stats.tasks_dropped_overflow += outcome.dropped_overflow;
            stats.tasks_dropped_hub_seed += outcome.dropped_hub_seed;
            retry = outcome.retry_tasks;
            hubs.extend_from_slice(&new_hubs);

            stats.adjacency_words_read += adjacency_words;
            stats.virtual_cycles += hub_detect_cycles + outcome.cycles;
            stats.rounds.push(RoundStats {
                round,
                threshold,
                hubs_found: new_hubs.len(),
                islands_found: islands_this_round,
                island_nodes_classified,
                hub_detect_cycles,
                bfs_cycles: outcome.cycles,
            });

            // --- Terminal round: threshold has bottomed out. Any node
            // still unclassified has degree 0 (threshold 1 peels every node
            // with an edge into the hub buffer); they become singleton
            // islands. The paper does not discuss isolated nodes — see
            // DESIGN.md §9.
            if threshold == 1 && remaining > 0 {
                let mut singletons = 0usize;
                for (v, class) in node_class.iter_mut().enumerate() {
                    if *class == NodeClass::Unclassified {
                        debug_assert_eq!(self.degrees[v], 0);
                        let idx = islands.len();
                        *class = NodeClass::Island(idx as u32);
                        islands.push(Island {
                            nodes: vec![v as u32],
                            hubs: Vec::new(),
                            round,
                            engine: 0,
                        });
                        remaining -= 1;
                        singletons += 1;
                    }
                }
                if let Some(last) = stats.rounds.last_mut() {
                    last.islands_found += singletons;
                    last.island_nodes_classified += singletons;
                }
            }

            threshold = self.cfg.decay.apply(threshold);
            round += 1;
        }

        stats.islands_found = islands.len() as u64;
        stats.inter_hub_edges = inter_hub.len() as u64;
        let partition = IslandPartition::from_parts(
            n,
            islands,
            hubs,
            inter_hub.into_iter().collect(),
            node_class,
            self.cfg.c_max,
        );
        Ok((partition, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_graph::generate::{erdos_renyi, HubIslandConfig};

    fn cfg() -> IslandizationConfig {
        IslandizationConfig::default()
    }

    #[test]
    fn classifies_every_node() {
        let g = HubIslandConfig::new(400, 16).generate(1);
        let (p, _) = IslandLocator::new(&g.graph, &cfg()).run().unwrap();
        assert_eq!(p.num_hubs() + p.num_island_nodes(), 400);
        p.check_invariants(&g.graph).unwrap();
    }

    #[test]
    fn pure_structure_recovers_islands() {
        let g = HubIslandConfig::new(600, 20).noise_fraction(0.0).generate(2);
        let (p, stats) = IslandLocator::new(&g.graph, &cfg()).run().unwrap();
        p.check_invariants(&g.graph).unwrap();
        assert!(stats.islands_found > 0);
        // Most non-hub nodes should land in islands, not become hubs.
        assert!(
            p.num_island_nodes() as f64 > 0.5 * g.graph.num_nodes() as f64,
            "only {} island nodes of {}",
            p.num_island_nodes(),
            g.graph.num_nodes()
        );
    }

    #[test]
    fn random_graph_still_terminates_and_covers() {
        let g = erdos_renyi(300, 900, 3);
        let (p, _) = IslandLocator::new(&g, &cfg()).run().unwrap();
        p.check_invariants(&g).unwrap();
    }

    #[test]
    fn isolated_nodes_become_singleton_islands() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1)]).unwrap();
        let (p, _) = IslandLocator::new(&g, &cfg()).run().unwrap();
        p.check_invariants(&g).unwrap();
        // Nodes 2, 3, 4 are isolated.
        assert!(p.num_islands() >= 3);
    }

    #[test]
    fn deterministic() {
        let g = HubIslandConfig::new(500, 20).generate(7);
        let (p1, s1) = IslandLocator::new(&g.graph, &cfg()).run().unwrap();
        let (p2, s2) = IslandLocator::new(&g.graph, &cfg()).run().unwrap();
        assert_eq!(p1.num_islands(), p2.num_islands());
        assert_eq!(s1.virtual_cycles, s2.virtual_cycles);
        assert_eq!(p1.hubs(), p2.hubs());
    }

    #[test]
    fn round_limit_error() {
        let g = HubIslandConfig::new(200, 8).generate(4);
        let tight = IslandizationConfig { max_rounds: 0, ..cfg() };
        let err = IslandLocator::new(&g.graph, &tight).run().unwrap_err();
        assert!(matches!(err, CoreError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 0), (0, 1), (1, 2), (2, 3)]).unwrap();
        let (p, _) = IslandLocator::new(&g, &cfg()).run().unwrap();
        assert_eq!(p.num_hubs() + p.num_island_nodes(), 4);
    }

    #[test]
    fn cycles_and_reads_are_positive() {
        let g = HubIslandConfig::new(300, 12).generate(5);
        let (_, stats) = IslandLocator::new(&g.graph, &cfg()).run().unwrap();
        assert!(stats.virtual_cycles > 0);
        assert!(stats.adjacency_words_read > 0);
        assert!(stats.num_rounds() >= 1);
    }

    #[test]
    fn more_engines_never_change_classification_totality() {
        let g = HubIslandConfig::new(400, 16).generate(6);
        for engines in [1, 4, 64] {
            let c = IslandizationConfig::default().with_engines(engines);
            let (p, _) = IslandLocator::new(&g.graph, &c).run().unwrap();
            p.check_invariants(&g.graph).unwrap();
        }
    }
}
