//! The I-GCN contribution: runtime graph islandization and island-granular
//! GCN execution.
//!
//! This crate implements the two hardware modules of
//! *I-GCN: A Graph Convolutional Network Accelerator with Runtime Locality
//! Enhancement through Islandization* (MICRO 2021):
//!
//! * the **Island Locator** ([`locator`]) — Algorithms 1–4 of the paper:
//!   round-based hub detection with a decaying degree threshold,
//!   `(hub, neighbor)` BFS task generation, and P2 parallel
//!   threshold-based BFS (TP-BFS) engines that grow islands to closure,
//!   with the three task-break conditions (island found, `c_max` overflow,
//!   global-visited conflict) simulated in deterministic lock-step;
//! * the **Island Consumer** ([`consumer`]) — per-island PULL-based
//!   combination, pre-aggregation of every `k` consecutive members,
//!   `1×k` window-scan aggregation with shared-neighbor redundancy
//!   removal, the multi-banked hub partial-result cache (DHUB-PRC) updated
//!   over a ring network with in-network reduction, and PUSH-outer-product
//!   inter-hub tasks.
//!
//! [`exec::IGcnEngine`] ties the two together into end-to-end GCN /
//! GraphSage / GIN inference whose outputs are verified against the plain
//! software reference, and [`accel::Accelerator`] is the unified
//! serving trait (`prepare`/`infer`/`infer_batch`/`report`) the engine,
//! the CPU reference and every simulated baseline implement.
//!
//! # Quick start
//!
//! ```
//! use igcn_core::{islandize, IslandizationConfig};
//! use igcn_graph::generate::HubIslandConfig;
//!
//! let g = HubIslandConfig::new(300, 12).noise_fraction(0.0).generate(1);
//! let partition = islandize(&g.graph, &IslandizationConfig::default());
//! partition.check_invariants(&g.graph).unwrap();
//! assert!(partition.num_islands() > 0);
//! ```

pub mod accel;
pub mod config;
pub mod consumer;
pub mod error;
pub mod exec;
pub mod incremental;
pub mod island;
pub mod layout;
pub mod locator;
pub mod partition;
pub mod schedule;
pub mod stats;

pub use accel::{
    Accelerator, BackendHealth, CpuReference, ExecReport, GraphUpdate, InferenceRequest,
    InferenceResponse, UpdateReport,
};
pub use config::{ConsumerConfig, DecayPolicy, ExecConfig, IslandizationConfig, ThresholdInit};
pub use consumer::hotpath::LayerScratch;
pub use error::CoreError;
pub use exec::{EngineParts, IGcnEngine, IGcnEngineBuilder};
pub use incremental::{incremental_islandize, incremental_update, IncrementalResult};
pub use island::{Island, IslandBitmap};
pub use layout::IslandLayout;
pub use locator::{islandize, IslandLocator};
pub use partition::IslandPartition;
pub use schedule::IslandSchedule;
pub use stats::{AggregationStats, ExecStats, LocatorStats, OccupancyStats, TrafficStats};
