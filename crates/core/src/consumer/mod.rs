//! The Island Consumer: island-granular combination and aggregation.
//!
//! The Island Collector distributes island tasks to PEs; each PE
//! ([`pe`]) performs PULL-based combination of the island's members
//! (hub results served by the HUB Matrix XW Cache), pre-aggregates every
//! `k` consecutive members, and aggregates by scanning the island
//! adjacency bitmap with the `1×k` window ([`window`]), reusing
//! pre-aggregated sums for shared neighbors. Island-node outputs complete
//! locally; hub rows accumulate partial results in the distributed
//! DHUB-PRC ([`hub_cache`]) over the ring network ([`ring`]). Hub–hub
//! edges are handled by separate inter-hub tasks in PUSH-outer-product
//! order, after which hub outputs are finalised.

pub mod hotpath;
pub mod hub_cache;
pub mod pe;
pub mod ring;
pub mod window;

use std::collections::HashMap;

use igcn_gnn::Activation;
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_linalg::{DenseMatrix, GcnNormalization};
use threadpool::ThreadPool;

use crate::config::ConsumerConfig;
use crate::error::CoreError;
use crate::partition::IslandPartition;
use crate::schedule::IslandSchedule;
use crate::stats::LayerExecStats;

/// The input features of one layer: the raw sparse feature matrix for
/// layer 0, the previous layer's dense output afterwards.
#[derive(Debug, Clone, Copy)]
pub enum LayerInput<'a> {
    /// Sparse input features (layer 0).
    Sparse(&'a SparseFeatures),
    /// Sparse layer-0 features whose *stored* value stream is
    /// int8-quantized (`ExecConfig::quantized_features`). The rows
    /// handed to the kernels are already dequantized f32 — arithmetic
    /// and operation counts are identical to [`LayerInput::Sparse`] —
    /// but the traffic model charges 1-byte value elements, because
    /// that is what the feature fetcher actually streams.
    SparseInt8(&'a SparseFeatures),
    /// Dense intermediate features (layers ≥ 1).
    Dense(&'a DenseMatrix),
}

impl LayerInput<'_> {
    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        match self {
            LayerInput::Sparse(x) | LayerInput::SparseInt8(x) => x.num_rows(),
            LayerInput::Dense(m) => m.rows(),
        }
    }

    /// Feature width.
    pub fn num_cols(&self) -> usize {
        match self {
            LayerInput::Sparse(x) | LayerInput::SparseInt8(x) => x.num_cols(),
            LayerInput::Dense(m) => m.cols(),
        }
    }
}

/// Executes GraphCONV layers island by island over a fixed partition.
///
/// # Example
///
/// ```
/// use igcn_core::consumer::{IslandConsumer, LayerInput};
/// use igcn_core::{islandize, ConsumerConfig, IslandizationConfig};
/// use igcn_gnn::Activation;
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
/// use igcn_linalg::{DenseMatrix, GcnNormalization};
///
/// let g = HubIslandConfig::new(100, 6).noise_fraction(0.0).generate(2);
/// let p = islandize(&g.graph, &IslandizationConfig::default());
/// let consumer = IslandConsumer::new(&g.graph, &p, ConsumerConfig::default());
///
/// let x = SparseFeatures::random(100, 8, 0.5, 1);
/// let w = DenseMatrix::zeros(8, 4);
/// let norm = GcnNormalization::symmetric(&g.graph);
/// let (out, stats) = consumer.execute_layer(
///     LayerInput::Sparse(&x), &w, &norm, Activation::Relu);
/// assert_eq!(out.rows(), 100);
/// assert_eq!(stats.island_tasks, p.num_islands() as u64);
/// ```
#[derive(Debug)]
pub struct IslandConsumer<'a> {
    graph: &'a CsrGraph,
    partition: &'a IslandPartition,
    cfg: ConsumerConfig,
    schedule: IslandSchedule,
}

impl<'a> IslandConsumer<'a> {
    /// Creates a consumer over `graph` and its `partition`, materialising
    /// the island issue schedule (waves of `num_pes` islands).
    ///
    /// # Panics
    ///
    /// Panics if the partition was produced for a different node count.
    pub fn new(graph: &'a CsrGraph, partition: &'a IslandPartition, cfg: ConsumerConfig) -> Self {
        assert_eq!(graph.num_nodes(), partition.num_nodes(), "partition does not match the graph");
        let schedule = IslandSchedule::new(graph, partition, cfg.num_pes);
        IslandConsumer { graph, partition, cfg, schedule }
    }

    /// The consumer configuration.
    pub fn config(&self) -> &ConsumerConfig {
        &self.cfg
    }

    /// The materialised island issue schedule.
    pub fn schedule(&self) -> &IslandSchedule {
        &self.schedule
    }

    /// Executes one GraphCONV layer, returning the layer output and the
    /// execution statistics.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the graph or the weight
    /// matrix.
    pub fn execute_layer(
        &self,
        input: LayerInput<'_>,
        weights: &DenseMatrix,
        norm: &GcnNormalization,
        activation: Activation,
    ) -> (DenseMatrix, LayerExecStats) {
        let n = self.graph.num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        assert_eq!(
            input.num_cols(),
            weights.rows(),
            "input width does not match the weight matrix"
        );
        assert_eq!(norm.len(), n, "normalisation does not match the graph");

        let mut ctx = pe::LayerContext::new(input, weights, norm, activation, self.cfg, n);
        // Weights are loaded once and stay in the on-chip Weight Matrix
        // Buffers.
        ctx.stats.traffic.weight_bytes += (weights.rows() * weights.cols() * 4) as u64;

        // Island tasks, issued to PEs wave by wave along the schedule.
        for wave in self.schedule.waves() {
            for task_idx in wave {
                let pe_id = (task_idx % self.cfg.num_pes) as u32;
                pe::execute_island_task(
                    &mut ctx,
                    self.graph,
                    &self.partition.islands()[task_idx],
                    pe_id,
                );
            }
            ctx.flush_wave();
        }
        ctx.stats.island_tasks = self.partition.num_islands() as u64;

        // Inter-hub tasks in PUSH-outer-product order.
        pe::execute_inter_hub_tasks(&mut ctx, self.partition.inter_hub_edges());
        ctx.flush_wave();

        // Finalise hub outputs from their completed partial results.
        pe::finalize_hubs(&mut ctx, self.partition.hubs());

        ctx.finish()
    }

    /// Executes one GraphCONV layer with per-island work fanned across
    /// `pool`, producing output *and statistics* bit-identical to
    /// [`IslandConsumer::execute_layer`] at any thread count.
    ///
    /// Three phases:
    ///
    /// 1. the hub XW table — every hub's combination vector, computed in
    ///    parallel (the software analogue of the HUB Matrix XW Cache
    ///    being filled once per layer);
    /// 2. island tasks — pool workers run
    ///    [`pe::run_island_task`] independently, producing finished
    ///    island-node rows and hub partial contributions;
    /// 3. a sequential merge in schedule order that replays all
    ///    hub-shared state transitions (XW touches, DHUB-PRC
    ///    accumulation, ring waves), so floating-point accumulation
    ///    order and every statistic match the sequential path exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::HubTableMiss`] if an island references a hub
    /// missing from the phase-1 table (impossible for a partition that
    /// matches the graph; surfaced as an error rather than a worker
    /// panic for stale callers).
    ///
    /// # Panics
    ///
    /// As [`IslandConsumer::execute_layer`].
    pub fn execute_layer_parallel(
        &self,
        input: LayerInput<'_>,
        weights: &DenseMatrix,
        norm: &GcnNormalization,
        activation: Activation,
        pool: &ThreadPool,
    ) -> Result<(DenseMatrix, LayerExecStats), CoreError> {
        let n = self.graph.num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        assert_eq!(
            input.num_cols(),
            weights.rows(),
            "input width does not match the weight matrix"
        );
        assert_eq!(norm.len(), n, "normalisation does not match the graph");

        // Phase 1: the hub XW table.
        let hubs = self.partition.hubs();
        let hub_vecs = pool.par_map(hubs, |_, &h| pe::combine_values(input, weights, norm, h));
        let hub_y: HashMap<u32, Vec<f32>> = hubs.iter().copied().zip(hub_vecs).collect();

        // Phase 2: independent island tasks across the pool.
        let results = pool
            .par_map(self.partition.islands(), |_, island| {
                pe::run_island_task(
                    self.graph, island, input, weights, norm, activation, self.cfg, &hub_y,
                )
            })
            .into_iter()
            .collect::<Result<Vec<_>, CoreError>>()?;

        // Phase 3: sequential merge in schedule order. The context keeps
        // serving hub vectors from the precomputed table, so the
        // inter-hub and finalise phases below never recompute a
        // combination on the merge thread either.
        let mut ctx = pe::LayerContext::new(input, weights, norm, activation, self.cfg, n);
        ctx.set_hub_table(&hub_y);
        ctx.stats.traffic.weight_bytes += (weights.rows() * weights.cols() * 4) as u64;
        let mut results = results.into_iter();
        for wave in self.schedule.waves() {
            for task_idx in wave {
                let result = results.next().expect("one result per scheduled island");
                let pe_id = (task_idx % self.cfg.num_pes) as u32;
                pe::apply_island_task_result(
                    &mut ctx,
                    &self.partition.islands()[task_idx],
                    result,
                    pe_id,
                );
            }
            ctx.flush_wave();
        }
        ctx.stats.island_tasks = self.partition.num_islands() as u64;
        pe::execute_inter_hub_tasks(&mut ctx, self.partition.inter_hub_edges());
        ctx.flush_wave();
        pe::finalize_hubs(&mut ctx, self.partition.hubs());
        Ok(ctx.finish())
    }

    /// Computes the statistics [`IslandConsumer::execute_layer`] would
    /// produce *without* performing any floating-point work — used by the
    /// hardware timing model on large graphs. Guaranteed (and tested) to
    /// produce identical counts.
    pub fn account_layer(
        &self,
        input: LayerInput<'_>,
        out_dim: usize,
        norm: &GcnNormalization,
    ) -> LayerExecStats {
        let n = self.graph.num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        let mut ctx = pe::AccountContext::new(input, out_dim, norm, self.cfg);
        ctx.stats.traffic.weight_bytes += (input.num_cols() * out_dim * 4) as u64;
        for wave in self.schedule.waves() {
            for task_idx in wave {
                let pe_id = (task_idx % self.cfg.num_pes) as u32;
                pe::account_island_task(
                    &mut ctx,
                    self.graph,
                    &self.partition.islands()[task_idx],
                    pe_id,
                );
            }
            ctx.flush_wave();
        }
        ctx.stats.island_tasks = self.partition.num_islands() as u64;
        pe::account_inter_hub_tasks(&mut ctx, self.partition.inter_hub_edges());
        ctx.flush_wave();
        pe::account_finalize_hubs(&mut ctx, self.partition.hubs());
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::locator::islandize;
    use igcn_gnn::{reference_forward_layers, GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;

    fn setup(n: usize, noise: f64, seed: u64) -> (CsrGraph, IslandPartition, SparseFeatures) {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).noise_fraction(noise).generate(seed);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        p.check_invariants(&g.graph).unwrap();
        let x = SparseFeatures::random(n, 12, 0.4, seed ^ 0xF00D);
        (g.graph, p, x)
    }

    #[test]
    fn layer_matches_reference() {
        let (g, p, x) = setup(150, 0.0, 1);
        let model = GnnModel::gcn(12, 6, 6);
        let w = ModelWeights::glorot(&model, 3);
        let reference = reference_forward_layers(&g, &x, &model, &w);

        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (out, stats) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        let diff = out.max_abs_diff(&reference[0]);
        assert!(diff < 1e-4, "islandized layer diverges from reference by {diff}");
        assert!(stats.aggregation.unpruned_vector_ops > 0);
    }

    #[test]
    fn noisy_graph_still_exact() {
        let (g, p, x) = setup(200, 0.15, 2);
        let model = GnnModel::gcn(12, 8, 4);
        let w = ModelWeights::glorot(&model, 5);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (out, _) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        assert!(out.max_abs_diff(&reference[0]) < 1e-4);
    }

    #[test]
    fn redundancy_removal_is_lossless_for_any_k() {
        let (g, p, x) = setup(120, 0.05, 3);
        let model = GnnModel::gcn(12, 5, 3);
        let w = ModelWeights::glorot(&model, 7);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let norm = model.normalization(&g);
        for k in [2, 3, 4, 8] {
            let cfg = ConsumerConfig::default().with_k(k);
            let consumer = IslandConsumer::new(&g, &p, cfg);
            let (out, _) =
                consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
            assert!(out.max_abs_diff(&reference[0]) < 1e-4, "k={k} execution diverges");
        }
    }

    #[test]
    fn pruning_reduces_ops_and_ablation_does_not() {
        let (g, p, x) = setup(250, 0.0, 4);
        let norm = GcnNormalization::symmetric(&g);
        let w = DenseMatrix::from_vec(12, 4, vec![0.1; 48]);

        let with = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let (_, s_with) = with.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::None);

        let without_cfg = ConsumerConfig::default().with_redundancy_removal(false);
        let without = IslandConsumer::new(&g, &p, without_cfg);
        let (_, s_without) =
            without.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::None);

        assert_eq!(
            s_with.aggregation.unpruned_vector_ops,
            s_without.aggregation.unpruned_vector_ops
        );
        assert_eq!(s_without.aggregation.executed_vector_subs, 0);
        assert!(s_without.aggregation.pruning_rate().abs() < 1e-12);
        assert!(
            s_with.aggregation.executed_vector_ops() <= s_without.aggregation.executed_vector_ops(),
            "redundancy removal must never increase ops"
        );
    }

    #[test]
    fn account_layer_matches_execute_layer() {
        let (g, p, x) = setup(180, 0.05, 5);
        let norm = GcnNormalization::symmetric(&g);
        let w = DenseMatrix::from_vec(12, 6, vec![0.1; 72]);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let (_, executed) =
            consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu);
        let accounted = consumer.account_layer(LayerInput::Sparse(&x), 6, &norm);
        assert_eq!(executed, accounted);
    }

    #[test]
    fn parallel_layer_is_bit_identical_to_sequential() {
        // Outputs AND statistics must match the sequential path exactly,
        // at every thread count, for both sparse and dense inputs and
        // for unit and non-unit self-weights (GCN vs GIN normalisation).
        let (g, p, x) = setup(220, 0.08, 7);
        for model in [GnnModel::gcn(12, 6, 4), GnnModel::gin(12, 6, 4, 0.3)] {
            let w = ModelWeights::glorot(&model, 11);
            let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
            let norm = model.normalization(&g);
            let (seq_out, seq_stats) =
                consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
            for threads in [1, 2, 8] {
                let pool = threadpool::ThreadPool::new(threads);
                let (par_out, par_stats) = consumer
                    .execute_layer_parallel(
                        LayerInput::Sparse(&x),
                        w.layer(0),
                        &norm,
                        Activation::Relu,
                        &pool,
                    )
                    .unwrap();
                assert_eq!(
                    par_out,
                    seq_out,
                    "{:?} output diverges at {threads} threads",
                    model.kind()
                );
                assert_eq!(
                    par_stats,
                    seq_stats,
                    "{:?} stats diverge at {threads} threads",
                    model.kind()
                );
            }
            // Dense (layer ≥ 1) input path.
            let (l1_seq, l1_seq_stats) = consumer.execute_layer(
                LayerInput::Dense(&seq_out),
                w.layer(1),
                &norm,
                Activation::None,
            );
            let pool = threadpool::ThreadPool::new(4);
            let (l1_par, l1_par_stats) = consumer
                .execute_layer_parallel(
                    LayerInput::Dense(&seq_out),
                    w.layer(1),
                    &norm,
                    Activation::None,
                    &pool,
                )
                .unwrap();
            assert_eq!(l1_par, l1_seq);
            assert_eq!(l1_par_stats, l1_seq_stats);
        }
    }

    #[test]
    fn stale_hub_table_is_a_typed_error_not_a_panic() {
        // A hub table captured before a restructuring (or simply empty)
        // must surface as `CoreError::HubTableMiss`, not crash a worker.
        let (g, p, x) = setup(150, 0.0, 9);
        let island = p.islands().iter().find(|i| !i.hubs.is_empty()).expect("hub-island graph");
        let w = DenseMatrix::from_vec(12, 4, vec![0.1; 48]);
        let norm = GcnNormalization::symmetric(&g);
        let stale: HashMap<u32, Vec<f32>> = HashMap::new();
        let err = pe::run_island_task(
            &g,
            island,
            LayerInput::Sparse(&x),
            &w,
            &norm,
            Activation::Relu,
            ConsumerConfig::default(),
            &stale,
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::CoreError::HubTableMiss { .. }), "got {err:?}");
    }

    #[test]
    fn schedule_waves_match_pe_count() {
        let (g, p, _) = setup(150, 0.0, 8);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default().with_pes(4));
        let schedule = consumer.schedule();
        assert_eq!(schedule.num_islands(), p.num_islands());
        assert_eq!(schedule.wave_width(), 4);
        assert_eq!(schedule.num_waves(), p.num_islands().div_ceil(4));
    }

    #[test]
    fn dense_input_layer_matches_reference() {
        let (g, p, x) = setup(100, 0.0, 6);
        let model = GnnModel::gcn(12, 6, 4);
        let w = ModelWeights::glorot(&model, 9);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (l0, _) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        let (l1, _) =
            consumer.execute_layer(LayerInput::Dense(&l0), w.layer(1), &norm, Activation::None);
        assert!(l1.max_abs_diff(&reference[1]) < 1e-4);
    }
}
