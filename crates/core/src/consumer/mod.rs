//! The Island Consumer: island-granular combination and aggregation.
//!
//! The Island Collector distributes island tasks to PEs; each PE
//! ([`pe`]) performs PULL-based combination of the island's members
//! (hub results served by the HUB Matrix XW Cache), pre-aggregates every
//! `k` consecutive members, and aggregates by scanning the island
//! adjacency bitmap with the `1×k` window ([`window`]), reusing
//! pre-aggregated sums for shared neighbors. Island-node outputs complete
//! locally; hub rows accumulate partial results in the distributed
//! DHUB-PRC ([`hub_cache`]) over the ring network ([`ring`]). Hub–hub
//! edges are handled by separate inter-hub tasks in PUSH-outer-product
//! order, after which hub outputs are finalised.

pub mod hub_cache;
pub mod pe;
pub mod ring;
pub mod window;

use igcn_gnn::Activation;
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_linalg::{DenseMatrix, GcnNormalization};

use crate::config::ConsumerConfig;
use crate::partition::IslandPartition;
use crate::stats::LayerExecStats;

/// The input features of one layer: the raw sparse feature matrix for
/// layer 0, the previous layer's dense output afterwards.
#[derive(Debug, Clone, Copy)]
pub enum LayerInput<'a> {
    /// Sparse input features (layer 0).
    Sparse(&'a SparseFeatures),
    /// Dense intermediate features (layers ≥ 1).
    Dense(&'a DenseMatrix),
}

impl LayerInput<'_> {
    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        match self {
            LayerInput::Sparse(x) => x.num_rows(),
            LayerInput::Dense(m) => m.rows(),
        }
    }

    /// Feature width.
    pub fn num_cols(&self) -> usize {
        match self {
            LayerInput::Sparse(x) => x.num_cols(),
            LayerInput::Dense(m) => m.cols(),
        }
    }
}

/// Executes GraphCONV layers island by island over a fixed partition.
///
/// # Example
///
/// ```
/// use igcn_core::consumer::{IslandConsumer, LayerInput};
/// use igcn_core::{islandize, ConsumerConfig, IslandizationConfig};
/// use igcn_gnn::Activation;
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
/// use igcn_linalg::{DenseMatrix, GcnNormalization};
///
/// let g = HubIslandConfig::new(100, 6).noise_fraction(0.0).generate(2);
/// let p = islandize(&g.graph, &IslandizationConfig::default());
/// let consumer = IslandConsumer::new(&g.graph, &p, ConsumerConfig::default());
///
/// let x = SparseFeatures::random(100, 8, 0.5, 1);
/// let w = DenseMatrix::zeros(8, 4);
/// let norm = GcnNormalization::symmetric(&g.graph);
/// let (out, stats) = consumer.execute_layer(
///     LayerInput::Sparse(&x), &w, &norm, Activation::Relu);
/// assert_eq!(out.rows(), 100);
/// assert_eq!(stats.island_tasks, p.num_islands() as u64);
/// ```
#[derive(Debug)]
pub struct IslandConsumer<'a> {
    graph: &'a CsrGraph,
    partition: &'a IslandPartition,
    cfg: ConsumerConfig,
}

impl<'a> IslandConsumer<'a> {
    /// Creates a consumer over `graph` and its `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition was produced for a different node count.
    pub fn new(graph: &'a CsrGraph, partition: &'a IslandPartition, cfg: ConsumerConfig) -> Self {
        assert_eq!(graph.num_nodes(), partition.num_nodes(), "partition does not match the graph");
        IslandConsumer { graph, partition, cfg }
    }

    /// The consumer configuration.
    pub fn config(&self) -> &ConsumerConfig {
        &self.cfg
    }

    /// Executes one GraphCONV layer, returning the layer output and the
    /// execution statistics.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the graph or the weight
    /// matrix.
    pub fn execute_layer(
        &self,
        input: LayerInput<'_>,
        weights: &DenseMatrix,
        norm: &GcnNormalization,
        activation: Activation,
    ) -> (DenseMatrix, LayerExecStats) {
        let n = self.graph.num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        assert_eq!(
            input.num_cols(),
            weights.rows(),
            "input width does not match the weight matrix"
        );
        assert_eq!(norm.len(), n, "normalisation does not match the graph");

        let mut ctx = pe::LayerContext::new(input, weights, norm, activation, self.cfg, n);
        // Weights are loaded once and stay in the on-chip Weight Matrix
        // Buffers.
        ctx.stats.traffic.weight_bytes += (weights.rows() * weights.cols() * 4) as u64;

        // Island tasks, issued to PEs in waves of `num_pes`.
        for (task_idx, island) in self.partition.islands().iter().enumerate() {
            let pe_id = (task_idx % self.cfg.num_pes) as u32;
            pe::execute_island_task(&mut ctx, self.graph, island, pe_id);
            if (task_idx + 1) % self.cfg.num_pes == 0 {
                ctx.flush_wave();
            }
        }
        ctx.flush_wave();
        ctx.stats.island_tasks = self.partition.num_islands() as u64;

        // Inter-hub tasks in PUSH-outer-product order.
        pe::execute_inter_hub_tasks(&mut ctx, self.partition.inter_hub_edges());
        ctx.flush_wave();

        // Finalise hub outputs from their completed partial results.
        pe::finalize_hubs(&mut ctx, self.partition.hubs());

        ctx.finish()
    }

    /// Computes the statistics [`IslandConsumer::execute_layer`] would
    /// produce *without* performing any floating-point work — used by the
    /// hardware timing model on large graphs. Guaranteed (and tested) to
    /// produce identical counts.
    pub fn account_layer(
        &self,
        input: LayerInput<'_>,
        out_dim: usize,
        norm: &GcnNormalization,
    ) -> LayerExecStats {
        let n = self.graph.num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        let mut ctx = pe::AccountContext::new(input, out_dim, norm, self.cfg);
        ctx.stats.traffic.weight_bytes += (input.num_cols() * out_dim * 4) as u64;
        for (task_idx, island) in self.partition.islands().iter().enumerate() {
            let pe_id = (task_idx % self.cfg.num_pes) as u32;
            pe::account_island_task(&mut ctx, self.graph, island, pe_id);
            if (task_idx + 1) % self.cfg.num_pes == 0 {
                ctx.flush_wave();
            }
        }
        ctx.flush_wave();
        ctx.stats.island_tasks = self.partition.num_islands() as u64;
        pe::account_inter_hub_tasks(&mut ctx, self.partition.inter_hub_edges());
        ctx.flush_wave();
        pe::account_finalize_hubs(&mut ctx, self.partition.hubs());
        ctx.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::locator::islandize;
    use igcn_gnn::{reference_forward_layers, GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;

    fn setup(n: usize, noise: f64, seed: u64) -> (CsrGraph, IslandPartition, SparseFeatures) {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).noise_fraction(noise).generate(seed);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        p.check_invariants(&g.graph).unwrap();
        let x = SparseFeatures::random(n, 12, 0.4, seed ^ 0xF00D);
        (g.graph, p, x)
    }

    #[test]
    fn layer_matches_reference() {
        let (g, p, x) = setup(150, 0.0, 1);
        let model = GnnModel::gcn(12, 6, 6);
        let w = ModelWeights::glorot(&model, 3);
        let reference = reference_forward_layers(&g, &x, &model, &w);

        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (out, stats) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        let diff = out.max_abs_diff(&reference[0]);
        assert!(diff < 1e-4, "islandized layer diverges from reference by {diff}");
        assert!(stats.aggregation.unpruned_vector_ops > 0);
    }

    #[test]
    fn noisy_graph_still_exact() {
        let (g, p, x) = setup(200, 0.15, 2);
        let model = GnnModel::gcn(12, 8, 4);
        let w = ModelWeights::glorot(&model, 5);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (out, _) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        assert!(out.max_abs_diff(&reference[0]) < 1e-4);
    }

    #[test]
    fn redundancy_removal_is_lossless_for_any_k() {
        let (g, p, x) = setup(120, 0.05, 3);
        let model = GnnModel::gcn(12, 5, 3);
        let w = ModelWeights::glorot(&model, 7);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let norm = model.normalization(&g);
        for k in [2, 3, 4, 8] {
            let cfg = ConsumerConfig::default().with_k(k);
            let consumer = IslandConsumer::new(&g, &p, cfg);
            let (out, _) =
                consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
            assert!(out.max_abs_diff(&reference[0]) < 1e-4, "k={k} execution diverges");
        }
    }

    #[test]
    fn pruning_reduces_ops_and_ablation_does_not() {
        let (g, p, x) = setup(250, 0.0, 4);
        let norm = GcnNormalization::symmetric(&g);
        let w = DenseMatrix::from_vec(12, 4, vec![0.1; 48]);

        let with = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let (_, s_with) = with.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::None);

        let without_cfg = ConsumerConfig::default().with_redundancy_removal(false);
        let without = IslandConsumer::new(&g, &p, without_cfg);
        let (_, s_without) =
            without.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::None);

        assert_eq!(
            s_with.aggregation.unpruned_vector_ops,
            s_without.aggregation.unpruned_vector_ops
        );
        assert_eq!(s_without.aggregation.executed_vector_subs, 0);
        assert!(s_without.aggregation.pruning_rate().abs() < 1e-12);
        assert!(
            s_with.aggregation.executed_vector_ops() <= s_without.aggregation.executed_vector_ops(),
            "redundancy removal must never increase ops"
        );
    }

    #[test]
    fn account_layer_matches_execute_layer() {
        let (g, p, x) = setup(180, 0.05, 5);
        let norm = GcnNormalization::symmetric(&g);
        let w = DenseMatrix::from_vec(12, 6, vec![0.1; 72]);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let (_, executed) =
            consumer.execute_layer(LayerInput::Sparse(&x), &w, &norm, Activation::Relu);
        let accounted = consumer.account_layer(LayerInput::Sparse(&x), 6, &norm);
        assert_eq!(executed, accounted);
    }

    #[test]
    fn dense_input_layer_matches_reference() {
        let (g, p, x) = setup(100, 0.0, 6);
        let model = GnnModel::gcn(12, 6, 4);
        let w = ModelWeights::glorot(&model, 9);
        let reference = reference_forward_layers(&g, &x, &model, &w);
        let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
        let norm = model.normalization(&g);
        let (l0, _) =
            consumer.execute_layer(LayerInput::Sparse(&x), w.layer(0), &norm, Activation::Relu);
        let (l1, _) =
            consumer.execute_layer(LayerInput::Dense(&l0), w.layer(1), &norm, Activation::None);
        assert!(l1.max_abs_diff(&reference[1]) < 1e-4);
    }
}
