//! The zero-allocation execution core over the physical
//! [`IslandLayout`].
//!
//! The legacy path ([`super::pe`]) allocates per-node `Vec<f32>` rows,
//! `Vec<Vec<f32>>` island buffers and `HashMap<u32, Vec<f32>>` hub
//! tables on every layer of every request. This module executes the same
//! schedule over the schedule-ordered layout with **flat row-major
//! scratch arenas** instead:
//!
//! * [`LayerScratch`] — one arena per worker, reused across layers,
//!   islands and requests; after warm-up a layer executes without a
//!   single heap allocation on the island hot loop;
//! * hub XW vectors and hub partial results live in dense slabs indexed
//!   by the layout's compact hub IDs (`0..H`) — no hashing;
//! * island adjacency bitmaps come prebuilt from the layout instead of
//!   being reconstructed per island per layer.
//!
//! **Bit-identity contract.** Both entry points replay the exact
//! floating-point accumulation order and statistics transitions of the
//! legacy path (island schedule order, per-member bitmap order, the
//! inter-hub PUSH order over *original* hub IDs, hub first-touch
//! charging, ring waves), so outputs and [`LayerExecStats`] are
//! bit-identical with the layout optimisation on or off, at every
//! thread count. The unit tests below pin this bitwise.

use igcn_gnn::Activation;
use igcn_graph::NodeId;
use igcn_linalg::{DenseMatrix, GcnNormalization};
use threadpool::ThreadPool;

use crate::config::{ConsumerConfig, PreaggPolicy};
use crate::island::IslandBitmap;
use crate::layout::IslandLayout;
use crate::stats::{AggregationStats, LayerExecStats};

use super::pe::{axpy, combine_cost, combine_values_into};
use super::ring::RingAccountant;
use super::window::WindowDecision;
use super::LayerInput;

const F32_BYTES: u64 = 4;

/// Flat scratch arenas of one execution worker.
///
/// Owned per worker and reused across layers, islands, batch requests
/// and `infer` calls; every buffer grows to its steady-state size on the
/// first call and is only ever resliced afterwards.
#[derive(Debug, Clone, Default)]
pub struct LayerScratch {
    /// Island member combination vectors (`dim × width`, row-major).
    y: Vec<f32>,
    /// Pre-aggregation group sums (`num_groups × width`).
    group_sums: Vec<f32>,
    /// Which groups have been materialised for the current island.
    group_ready: Vec<bool>,
    /// The window-scan accumulator (`width`).
    acc: Vec<f32>,
    /// Hub XW slab (`H × width`), indexed by compact hub ID.
    hub_y: Vec<f32>,
    hub_y_ready: Vec<bool>,
    /// Hub partial-result slab (`H × width`) — the DHUB-PRC rows.
    hub_partial: Vec<f32>,
    hub_partial_ready: Vec<bool>,
    /// DHUB-PRC bank of each hub (`u32::MAX` = unassigned).
    hub_bank: Vec<u32>,
    /// Pending ring wave (`(pe, bank, hub)` triples).
    wave: Vec<(u32, u32, u32)>,
    /// Parallel-path hub contribution slab: one `width`-wide slot per
    /// (island, contacted hub) pair, written by the island workers and
    /// replayed by the sequential merge — replaces the per-island
    /// `Vec<f32>` the parallel path used to allocate every layer.
    hub_contrib_slab: Vec<f32>,
    /// Prefix sums of per-island hub-contact counts: island `i`'s slots
    /// are `island_hub_offsets[i]..island_hub_offsets[i + 1]`.
    island_hub_offsets: Vec<usize>,
    /// Per-row window decisions `(group, mask, decision)` recorded by
    /// the scan's decision pass and replayed per feature-column block.
    decisions: Vec<(u32, u64, WindowDecision)>,
}

impl LayerScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all arenas — the observable for
    /// scratch-reuse regression tests (must stop growing after warm-up).
    pub fn arena_bytes(&self) -> usize {
        self.y.capacity() * 4
            + self.group_sums.capacity() * 4
            + self.group_ready.capacity()
            + self.acc.capacity() * 4
            + self.hub_y.capacity() * 4
            + self.hub_y_ready.capacity()
            + self.hub_partial.capacity() * 4
            + self.hub_partial_ready.capacity()
            + self.hub_bank.capacity() * 4
            + self.wave.capacity() * 12
            + self.hub_contrib_slab.capacity() * 4
            + self.island_hub_offsets.capacity() * 8
            + self.decisions.capacity() * std::mem::size_of::<(u32, u64, WindowDecision)>()
    }

    /// Prepares the hub slabs for a layer of `width`-wide vectors over
    /// `num_hubs` hubs.
    fn begin_layer(&mut self, num_hubs: usize, width: usize) {
        self.hub_y.resize(num_hubs * width, 0.0);
        self.hub_y_ready.clear();
        self.hub_y_ready.resize(num_hubs, false);
        self.hub_partial.resize(num_hubs * width, 0.0);
        self.hub_partial_ready.clear();
        self.hub_partial_ready.resize(num_hubs, false);
        self.hub_bank.clear();
        self.hub_bank.resize(num_hubs, u32::MAX);
        self.wave.clear();
        grow_f32(&mut self.acc, width);
    }
}

fn grow_f32(v: &mut Vec<f32>, len: usize) {
    if v.len() < len {
        v.resize(len, 0.0);
    }
}

/// The hub-shared state of one layer: XW slab, partial-result slab,
/// bank map, and the cache/allocation counters that feed
/// [`LayerExecStats`]. Mirrors the legacy `HubXwCache` + `HubPartialCache`
/// transitions exactly, with dense indexing instead of hashing.
struct HubSlabs<'a> {
    width: usize,
    num_pes: usize,
    y: &'a mut [f32],
    y_ready: &'a mut [bool],
    partial: &'a mut [f32],
    partial_ready: &'a mut [bool],
    bank: &'a mut [u32],
    next_bank: u32,
    rows_allocated: u64,
    xw_hits: u64,
    /// When set, the XW slab is prefilled (parallel phase 1); first
    /// touches charge the combination cost without recomputing, exactly
    /// like the legacy hub-table copy.
    precomputed: bool,
}

impl HubSlabs<'_> {
    /// First touch computes (or, when prefilled, just charges) the
    /// hub's combination vector; later touches count as XW cache hits.
    fn touch(
        &mut self,
        hub: u32,
        input: LayerInput<'_>,
        weights: &DenseMatrix,
        norm: &GcnNormalization,
        stats: &mut LayerExecStats,
    ) {
        let i = hub as usize;
        if self.y_ready[i] {
            self.xw_hits += 1;
            return;
        }
        let (macs, muls, feature_bytes) = combine_cost(input, self.width, norm, hub);
        stats.combination_ops.macs += macs;
        stats.combination_ops.muls += muls;
        stats.traffic.feature_read_bytes += feature_bytes;
        if !self.precomputed {
            combine_values_into(
                input,
                weights,
                norm,
                hub,
                &mut self.y[i * self.width..][..self.width],
            );
        }
        self.y_ready[i] = true;
    }

    /// The hub's cached combination vector (must be touched first).
    fn y_row(&self, hub: u32) -> &[f32] {
        &self.y[hub as usize * self.width..][..self.width]
    }

    /// The bank a hub maps to, allocated round-robin at first
    /// appearance.
    fn bank_of(&mut self, hub: u32) -> u32 {
        let i = hub as usize;
        if self.bank[i] != u32::MAX {
            return self.bank[i];
        }
        let b = self.next_bank;
        self.next_bank = (self.next_bank + 1) % self.num_pes as u32;
        self.bank[i] = b;
        self.rows_allocated += 1;
        b
    }

    /// Initialises a hub's partial row with its self contribution
    /// `self_weight · y_hub` on first touch.
    fn ensure_partial(&mut self, hub: u32, self_weight: f32, stats: &mut LayerExecStats) {
        let i = hub as usize;
        if self.partial_ready[i] {
            return;
        }
        stats.aggregation.unpruned_vector_ops += 1;
        stats.aggregation.executed_vector_adds += 1;
        let row = &mut self.partial[i * self.width..][..self.width];
        row.fill(0.0);
        axpy(row, &self.y[i * self.width..][..self.width], self_weight);
        self.partial_ready[i] = true;
    }

    /// Accumulates `delta` into the hub's partial row.
    fn accumulate(&mut self, hub: u32, delta: &[f32]) {
        let row = &mut self.partial[hub as usize * self.width..][..self.width];
        for (p, &d) in row.iter_mut().zip(delta) {
            *p += d;
        }
    }

    /// Accumulates hub `src`'s XW vector into hub `dst`'s partial row
    /// (the inter-hub PUSH step; slabs are disjoint, so no copy).
    fn accumulate_from_y(&mut self, dst: u32, src: u32) {
        let y = &self.y[src as usize * self.width..][..self.width];
        let row = &mut self.partial[dst as usize * self.width..][..self.width];
        for (p, &d) in row.iter_mut().zip(y) {
            *p += d;
        }
    }
}

/// Longest-processing-time assignment of `costs.len()` rows to
/// `buckets` bins: rows are visited in descending cost (ties by
/// ascending index) and each goes to the currently lightest bin (ties
/// to the lowest bin index). Returns the bin of each row; every row is
/// assigned to exactly one bin.
///
/// # Panics
///
/// Panics if `buckets == 0`.
fn lpt_assign(costs: &[u64], buckets: usize) -> Vec<usize> {
    assert!(buckets > 0, "at least one bucket is required");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut load = vec![0u64; buckets];
    let mut assignment = vec![0usize; costs.len()];
    for i in order {
        let b = (0..buckets).min_by_key(|&b| load[b]).expect("buckets > 0");
        assignment[i] = b;
        load[b] += costs[i];
    }
    assignment
}

fn flush_wave(ring: &mut RingAccountant, wave: &mut Vec<(u32, u32, u32)>) {
    if !wave.is_empty() {
        ring.record_wave(wave);
        wave.clear();
    }
}

/// Materialises pre-aggregation group `g` into the flat group arena —
/// the allocation-free twin of the legacy `materialize_group`.
#[allow(clippy::too_many_arguments)]
fn materialize_group_flat(
    group_sums: &mut [f32],
    group_ready: &mut [bool],
    y: &[f32],
    g: usize,
    k: usize,
    dim: usize,
    width: usize,
    agg: &mut AggregationStats,
) {
    if group_ready[g] {
        return;
    }
    let start = g * k;
    let size = k.min(dim - start);
    let dst = &mut group_sums[g * width..][..width];
    dst.copy_from_slice(&y[start * width..][..width]);
    for item in 1..size {
        axpy(dst, &y[(start + item) * width..][..width], 1.0);
    }
    if size >= 2 {
        agg.preagg_vector_adds += size as u64 - 1;
    }
    group_ready[g] = true;
}

/// Feature-column block width of the aggregation replay. The scan
/// decides every window once, then replays the arithmetic one column
/// block at a time so the accumulator slice and the touched `y` row
/// segments of a block stay cache-resident across all of the row's
/// windows (islands are contiguous rows, so the same `y` rows recur
/// window after window).
const SCAN_COL_BLOCK: usize = 64;

/// The `1×k` window scan of one bitmap row into `acc` — shared by the
/// sequential hot path and the parallel island workers.
///
/// Runs in two passes over `decisions` scratch: the decision pass
/// charges statistics and materialises reused group sums in group
/// order (the exact transitions of the historical fused loop), then
/// the arithmetic replays per [`SCAN_COL_BLOCK`]-column window. Per
/// output element the accumulation order over (window, member) is
/// unchanged — column blocking only reorders across *independent*
/// columns — so results are bit-identical to the fused form.
#[allow(clippy::too_many_arguments)]
fn scan_row(
    bm: &IslandBitmap,
    r: usize,
    k: usize,
    num_groups: usize,
    width: usize,
    redundancy_removal: bool,
    y: &[f32],
    group_sums: &mut [f32],
    group_ready: &mut [bool],
    acc: &mut [f32],
    decisions: &mut Vec<(u32, u64, WindowDecision)>,
    agg: &mut AggregationStats,
) {
    let dim = bm.dim();
    acc.fill(0.0);
    decisions.clear();
    for g in 0..num_groups {
        let start = g * k;
        let size = k.min(dim - start);
        let mask = bm.window(r, start, k);
        agg.unpruned_vector_ops += mask.count_ones() as u64;
        let decision = WindowDecision::decide(mask, size, redundancy_removal);
        match decision {
            WindowDecision::Skip => {
                agg.windows_skipped += 1;
            }
            WindowDecision::Direct { adds } => {
                agg.windows_direct += 1;
                agg.executed_vector_adds += adds as u64;
                decisions.push((g as u32, mask, decision));
            }
            WindowDecision::Reuse { subs } => {
                agg.windows_reused += 1;
                agg.executed_vector_adds += 1;
                agg.executed_vector_subs += subs as u64;
                materialize_group_flat(group_sums, group_ready, y, g, k, dim, width, agg);
                decisions.push((g as u32, mask, decision));
            }
        }
    }
    let mut col = 0;
    while col < width {
        let block = SCAN_COL_BLOCK.min(width - col);
        for &(g, mask, decision) in decisions.iter() {
            let g = g as usize;
            let start = g * k;
            let size = k.min(dim - start);
            let dst = &mut acc[col..col + block];
            match decision {
                WindowDecision::Skip => {}
                WindowDecision::Direct { .. } => {
                    for b in 0..size {
                        if (mask >> b) & 1 == 1 {
                            axpy(dst, &y[(start + b) * width + col..][..block], 1.0);
                        }
                    }
                }
                WindowDecision::Reuse { .. } => {
                    axpy(dst, &group_sums[g * width + col..][..block], 1.0);
                    for b in 0..size {
                        if (mask >> b) & 1 == 0 {
                            axpy(dst, &y[(start + b) * width + col..][..block], -1.0);
                        }
                    }
                }
            }
        }
        col += block;
    }
}

/// Everything one layer execution borrows immutably.
#[derive(Clone, Copy)]
struct LayerEnv<'l> {
    layout: &'l IslandLayout,
    cfg: ConsumerConfig,
    input: LayerInput<'l>,
    weights: &'l DenseMatrix,
    norm: &'l GcnNormalization,
    activation: Activation,
    width: usize,
    self_in_bitmap: bool,
}

impl<'l> LayerEnv<'l> {
    fn new(
        layout: &'l IslandLayout,
        cfg: ConsumerConfig,
        input: LayerInput<'l>,
        weights: &'l DenseMatrix,
        norm: &'l GcnNormalization,
        activation: Activation,
    ) -> Self {
        let n = layout.graph().num_nodes();
        assert_eq!(input.num_rows(), n, "input row count does not match the graph");
        assert_eq!(input.num_cols(), weights.rows(), "input width does not match the weights");
        assert_eq!(norm.len(), n, "normalisation does not match the graph");
        LayerEnv {
            layout,
            cfg,
            input,
            weights,
            norm,
            activation,
            width: weights.cols(),
            self_in_bitmap: norm.self_weight() == 1.0,
        }
    }
}

/// Executes one GraphCONV layer sequentially over the physical layout,
/// writing activated output rows (layout ID order) into `out`
/// (`num_nodes × width`, row-major). Bit-identical in values and
/// statistics to `IslandConsumer::execute_layer` on the unpermuted
/// graph.
///
/// # Panics
///
/// Panics if the input, weight, normalisation or output shapes do not
/// match the layout.
#[allow(clippy::too_many_arguments)]
pub fn execute_layer(
    layout: &IslandLayout,
    cfg: ConsumerConfig,
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    activation: Activation,
    scratch: &mut LayerScratch,
    out: &mut [f32],
) -> LayerExecStats {
    let env = LayerEnv::new(layout, cfg, input, weights, norm, activation);
    assert_eq!(out.len(), layout.graph().num_nodes() * env.width, "output buffer mismatch");
    let mut stats = LayerExecStats { feature_width: env.width, ..Default::default() };
    stats.traffic.weight_bytes += (weights.rows() * weights.cols() * 4) as u64;
    let mut ring = RingAccountant::new(cfg.num_pes);

    scratch.begin_layer(layout.num_hubs(), env.width);
    let LayerScratch {
        y,
        group_sums,
        group_ready,
        acc,
        hub_y,
        hub_y_ready,
        hub_partial,
        hub_partial_ready,
        hub_bank,
        wave,
        decisions,
        ..
    } = scratch;
    let mut hubs = HubSlabs {
        width: env.width,
        num_pes: cfg.num_pes,
        y: hub_y,
        y_ready: hub_y_ready,
        partial: hub_partial,
        partial_ready: hub_partial_ready,
        bank: hub_bank,
        next_bank: 0,
        rows_allocated: 0,
        xw_hits: 0,
        precomputed: false,
    };

    // Island tasks, issued to PEs wave by wave along the schedule.
    for wave_range in layout.schedule().waves() {
        for task_idx in wave_range {
            let pe_id = (task_idx % cfg.num_pes) as u32;
            let bm = layout.bitmap(task_idx, env.self_in_bitmap);
            let dim = bm.dim();
            let num_groups = dim.div_ceil(cfg.k);
            if y.len() < dim * env.width {
                grow_f32(y, dim * env.width);
            }
            if group_sums.len() < num_groups * env.width {
                grow_f32(group_sums, num_groups * env.width);
            }
            if group_ready.len() < num_groups {
                group_ready.resize(num_groups, false);
            }
            run_island(
                &env,
                bm,
                pe_id,
                &mut hubs,
                y,
                group_sums,
                group_ready,
                acc,
                decisions,
                out,
                wave,
                &mut stats,
            );
        }
        flush_wave(&mut ring, wave);
    }
    stats.island_tasks = layout.partition().num_islands() as u64;

    // Inter-hub tasks in PUSH-outer-product order, then hub finalise.
    inter_hub_phase(&env, &mut hubs, &mut ring, wave, &mut stats);
    finalize_hubs(&env, &mut hubs, out, &mut stats);
    finish(stats, ring, &hubs)
}

/// The per-island half shared by the sequential path (hub contributions
/// applied immediately) — mirrors `pe::execute_island_task` step by
/// step on flat arenas.
#[allow(clippy::too_many_arguments)]
fn run_island(
    env: &LayerEnv<'_>,
    bm: &IslandBitmap,
    pe_id: u32,
    hubs: &mut HubSlabs<'_>,
    y: &mut [f32],
    group_sums: &mut [f32],
    group_ready: &mut [bool],
    acc: &mut [f32],
    decisions: &mut Vec<(u32, u64, WindowDecision)>,
    out: &mut [f32],
    wave: &mut Vec<(u32, u32, u32)>,
    stats: &mut LayerExecStats,
) {
    let width = env.width;
    let k = env.cfg.k;
    let dim = bm.dim();
    let nh = bm.num_hubs();
    let num_groups = dim.div_ceil(k);

    // --- Combination phase (hubs served from the XW slab). ---
    for (i, &m) in bm.members().iter().enumerate() {
        if i < nh {
            hubs.touch(m, env.input, env.weights, env.norm, stats);
            y[i * width..][..width].copy_from_slice(hubs.y_row(m));
        } else {
            let (macs, muls, feature_bytes) = combine_cost(env.input, width, env.norm, m);
            stats.combination_ops.macs += macs;
            stats.combination_ops.muls += muls;
            stats.traffic.feature_read_bytes += feature_bytes;
            combine_values_into(env.input, env.weights, env.norm, m, &mut y[i * width..][..width]);
        }
    }

    // --- Pre-aggregation of every k consecutive members. ---
    group_ready[..num_groups].fill(false);
    if env.cfg.redundancy_removal && env.cfg.preagg == PreaggPolicy::Eager {
        for g in 0..num_groups {
            materialize_group_flat(
                group_sums,
                group_ready,
                y,
                g,
                k,
                dim,
                width,
                &mut stats.aggregation,
            );
        }
    }

    // --- Aggregation: 1×k window scan over every bitmap row. ---
    for r in 0..dim {
        scan_row(
            bm,
            r,
            k,
            num_groups,
            width,
            env.cfg.redundancy_removal,
            y,
            group_sums,
            group_ready,
            &mut acc[..width],
            decisions,
            &mut stats.aggregation,
        );
        let member = bm.member(r);
        if r >= nh {
            if !env.self_in_bitmap {
                stats.aggregation.unpruned_vector_ops += 1;
                stats.aggregation.executed_vector_adds += 1;
                axpy(&mut acc[..width], &y[r * width..][..width], env.norm.self_weight());
            }
            let os = env.norm.out_scale(NodeId::new(member));
            if os != 1.0 {
                stats.combination_ops.muls += width as u64;
            }
            let out_row = &mut out[member as usize * width..][..width];
            for (o, &v) in out_row.iter_mut().zip(&acc[..width]) {
                *o = env.activation.apply(v * os);
            }
            stats.traffic.output_write_bytes += width as u64 * F32_BYTES;
        } else {
            let bank = hubs.bank_of(member);
            hubs.ensure_partial(member, env.norm.self_weight(), stats);
            hubs.accumulate(member, &acc[..width]);
            stats.hub_path.hub_updates += 1;
            wave.push((pe_id, bank, member));
        }
    }
}

/// Inter-hub tasks in the legacy PUSH-outer-product replay order
/// (ascending original source-hub ID, from the layout's task list).
fn inter_hub_phase(
    env: &LayerEnv<'_>,
    hubs: &mut HubSlabs<'_>,
    ring: &mut RingAccountant,
    wave: &mut Vec<(u32, u32, u32)>,
    stats: &mut LayerExecStats,
) {
    let num_pes = env.cfg.num_pes;
    for (task_idx, (src, dests)) in env.layout.inter_hub_tasks().iter().enumerate() {
        let pe_id = (task_idx % num_pes) as u32;
        hubs.touch(*src, env.input, env.weights, env.norm, stats);
        for &d in dests {
            let bank = hubs.bank_of(d);
            hubs.touch(d, env.input, env.weights, env.norm, stats);
            hubs.ensure_partial(d, env.norm.self_weight(), stats);
            stats.aggregation.unpruned_vector_ops += 1;
            stats.aggregation.executed_vector_adds += 1;
            hubs.accumulate_from_y(d, *src);
            stats.hub_path.hub_updates += 1;
            wave.push((pe_id, bank, d));
        }
        stats.inter_hub_tasks += 1;
        if (task_idx + 1) % num_pes == 0 {
            flush_wave(ring, wave);
        }
    }
    flush_wave(ring, wave);
}

/// Finalises every hub: post-scales its completed partial result,
/// applies the activation and writes the output row (hub IDs are the
/// compact prefix, so this walks `out`'s first `H` rows).
fn finalize_hubs(
    env: &LayerEnv<'_>,
    hubs: &mut HubSlabs<'_>,
    out: &mut [f32],
    stats: &mut LayerExecStats,
) {
    let width = env.width;
    for h in 0..env.layout.num_hubs() as u32 {
        if !hubs.partial_ready[h as usize] {
            // Hub untouched by any task (degenerate graphs only): its
            // output is the self contribution alone.
            hubs.touch(h, env.input, env.weights, env.norm, stats);
            hubs.ensure_partial(h, env.norm.self_weight(), stats);
        }
        let os = env.norm.out_scale(NodeId::new(h));
        if os != 1.0 {
            stats.combination_ops.muls += width as u64;
        }
        let partial = &hubs.partial[h as usize * width..][..width];
        let out_row = &mut out[h as usize * width..][..width];
        for (o, &v) in out_row.iter_mut().zip(partial) {
            *o = env.activation.apply(v * os);
        }
        stats.traffic.output_write_bytes += width as u64 * F32_BYTES;
    }
}

/// Folds the ring and slab counters into the layer statistics.
fn finish(mut stats: LayerExecStats, ring: RingAccountant, hubs: &HubSlabs<'_>) -> LayerExecStats {
    let rs = ring.stats();
    stats.hub_path.local_bank_hits = rs.local_hits;
    stats.hub_path.ring_hops = rs.hops;
    stats.hub_path.in_network_reductions = rs.reductions;
    stats.hub_path.hub_rows_allocated = hubs.rows_allocated;
    stats.hub_path.xw_cache_hits = hubs.xw_hits;
    stats
}

/// One island task's statistics from a pool worker. The task's *data*
/// no longer rides back in per-island buffers: island-node rows are
/// written straight into the shared output slab (the layout makes every
/// island's output range disjoint and contiguous) and hub contributions
/// into the pooled `hub_contrib_slab`, so workers return only this
/// `Copy` counter block. Hub-shared state transitions are replayed by
/// the sequential merge, exactly like the legacy parallel path.
#[derive(Clone, Copy, Default)]
struct IslandTaskStats {
    aggregation: AggregationStats,
    combination_ops: igcn_linalg::OpCounter,
    feature_read_bytes: u64,
    output_write_bytes: u64,
}

/// Worker-local arenas of the parallel island path.
#[derive(Default)]
struct WorkerScratch {
    y: Vec<f32>,
    group_sums: Vec<f32>,
    group_ready: Vec<bool>,
    acc: Vec<f32>,
    decisions: Vec<(u32, u64, WindowDecision)>,
}

/// The pure half of one island task: identical arithmetic to
/// [`run_island`], with hub vectors read from the prefilled XW slab.
/// Activated island-node rows land directly in `node_out` (the island's
/// disjoint slice of the shared output slab) and raw hub-row
/// aggregation results in `hub_out` (the island's slice of the pooled
/// contribution slab) — no per-island allocation.
#[allow(clippy::too_many_arguments)]
fn run_island_direct(
    env: &LayerEnv<'_>,
    bm: &IslandBitmap,
    hub_y: &[f32],
    ws: &mut WorkerScratch,
    node_out: &mut [f32],
    hub_out: &mut [f32],
) -> IslandTaskStats {
    let width = env.width;
    let k = env.cfg.k;
    let dim = bm.dim();
    let nh = bm.num_hubs();
    let num_groups = dim.div_ceil(k);
    debug_assert_eq!(node_out.len(), (dim - nh) * width, "island output slice mismatch");
    debug_assert_eq!(hub_out.len(), nh * width, "hub contribution slice mismatch");
    grow_f32(&mut ws.y, dim * width);
    grow_f32(&mut ws.group_sums, num_groups * width);
    if ws.group_ready.len() < num_groups {
        ws.group_ready.resize(num_groups, false);
    }
    grow_f32(&mut ws.acc, width);
    let mut result = IslandTaskStats::default();

    // --- Combination (hub vectors served from the shared slab). ---
    for (i, &m) in bm.members().iter().enumerate() {
        if i < nh {
            ws.y[i * width..][..width].copy_from_slice(&hub_y[m as usize * width..][..width]);
        } else {
            let (macs, muls, feature_bytes) = combine_cost(env.input, width, env.norm, m);
            result.combination_ops.macs += macs;
            result.combination_ops.muls += muls;
            result.feature_read_bytes += feature_bytes;
            combine_values_into(
                env.input,
                env.weights,
                env.norm,
                m,
                &mut ws.y[i * width..][..width],
            );
        }
    }

    // --- Pre-aggregation. ---
    ws.group_ready[..num_groups].fill(false);
    if env.cfg.redundancy_removal && env.cfg.preagg == PreaggPolicy::Eager {
        for g in 0..num_groups {
            materialize_group_flat(
                &mut ws.group_sums,
                &mut ws.group_ready,
                &ws.y,
                g,
                k,
                dim,
                width,
                &mut result.aggregation,
            );
        }
    }

    // --- Aggregation scan. ---
    for r in 0..dim {
        scan_row(
            bm,
            r,
            k,
            num_groups,
            width,
            env.cfg.redundancy_removal,
            &ws.y,
            &mut ws.group_sums,
            &mut ws.group_ready,
            &mut ws.acc[..width],
            &mut ws.decisions,
            &mut result.aggregation,
        );
        let member = bm.member(r);
        if r >= nh {
            if !env.self_in_bitmap {
                result.aggregation.unpruned_vector_ops += 1;
                result.aggregation.executed_vector_adds += 1;
                axpy(&mut ws.acc[..width], &ws.y[r * width..][..width], env.norm.self_weight());
            }
            let os = env.norm.out_scale(NodeId::new(member));
            if os != 1.0 {
                result.combination_ops.muls += width as u64;
            }
            let row = &mut node_out[(r - nh) * width..][..width];
            for (o, &v) in row.iter_mut().zip(&ws.acc[..width]) {
                *o = env.activation.apply(v * os);
            }
            result.output_write_bytes += width as u64 * F32_BYTES;
        } else {
            hub_out[r * width..][..width].copy_from_slice(&ws.acc[..width]);
        }
    }
    result
}

/// Executes one layer with per-island work fanned across `pool`,
/// producing output *and statistics* bit-identical to
/// [`execute_layer`] at any thread count: a parallel hub-slab fill, pure
/// island tasks on the pool, and a sequential schedule-order merge that
/// replays all hub-shared state transitions.
///
/// # Panics
///
/// As [`execute_layer`].
#[allow(clippy::too_many_arguments)]
pub fn execute_layer_parallel(
    layout: &IslandLayout,
    cfg: ConsumerConfig,
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    activation: Activation,
    pool: &ThreadPool,
    scratch: &mut LayerScratch,
    out: &mut [f32],
) -> LayerExecStats {
    let env = LayerEnv::new(layout, cfg, input, weights, norm, activation);
    let width = env.width;
    let num_hubs = layout.num_hubs();
    assert_eq!(out.len(), layout.graph().num_nodes() * width, "output buffer mismatch");
    let mut stats = LayerExecStats { feature_width: width, ..Default::default() };
    stats.traffic.weight_bytes += (weights.rows() * weights.cols() * 4) as u64;
    let mut ring = RingAccountant::new(cfg.num_pes);

    scratch.begin_layer(num_hubs, width);
    let LayerScratch {
        y: _,
        group_sums: _,
        group_ready: _,
        acc: _,
        hub_y,
        hub_y_ready,
        hub_partial,
        hub_partial_ready,
        hub_bank,
        wave,
        hub_contrib_slab,
        island_hub_offsets,
        decisions: _,
    } = scratch;

    // Phase 1: fill the hub XW slab in parallel. A hub's combination
    // cost is proportional to its feature-row nnz, which varies wildly
    // across hubs, so rows are binned by cost — longest-processing-time
    // assignment into one bucket per worker — instead of being chunked
    // uniformly. Rows are independent (each worker owns disjoint slab
    // rows), so the bucket shape cannot change a bit of any output; the
    // inter-hub *replay* later in the layer keeps its legacy pinned
    // order regardless of how the prefill was binned.
    {
        let slab = &mut hub_y[..num_hubs * width];
        let costs: Vec<u64> = (0..num_hubs as u32)
            .map(|h| match input {
                LayerInput::Sparse(x) | LayerInput::SparseInt8(x) => {
                    x.row_nnz(NodeId::new(h)) as u64 + 1
                }
                LayerInput::Dense(_) => 1,
            })
            .collect();
        let buckets = pool.threads().min(num_hubs).max(1);
        let assignment = lpt_assign(&costs, buckets);
        let mut bins: Vec<Vec<(u32, &mut [f32])>> = (0..buckets).map(|_| Vec::new()).collect();
        for (h, row) in slab.chunks_mut(width).enumerate() {
            bins[assignment[h]].push((h as u32, row));
        }
        pool.scope(|s| {
            for bin in bins {
                s.spawn(move || {
                    for (h, row) in bin {
                        combine_values_into(input, weights, norm, h, row);
                    }
                });
            }
        });
    }

    // Phase 2: pure island tasks across the pool, worker-local arenas.
    // Each task writes its island-node rows straight into the island's
    // disjoint contiguous range of `out` and its hub contributions into
    // the pooled slab — no per-island result buffers.
    let islands = layout.partition().islands();
    island_hub_offsets.clear();
    island_hub_offsets.push(0);
    let mut hub_slots = 0usize;
    for isl in islands {
        hub_slots += isl.hubs.len();
        island_hub_offsets.push(hub_slots);
    }
    grow_f32(hub_contrib_slab, hub_slots * width);
    let hub_slab: &[f32] = &hub_y[..num_hubs * width];
    let results: Vec<IslandTaskStats> = {
        struct IslandSlot<'a> {
            node_out: &'a mut [f32],
            hub_out: &'a mut [f32],
            stats: IslandTaskStats,
        }
        // Carve the disjoint per-island output and contribution slices.
        // Island nodes tile `H..n` back to back in island order, so the
        // split order below is exactly the layout's row order.
        let (_, mut node_rest) = out.split_at_mut(num_hubs * width);
        let mut hub_rest: &mut [f32] = &mut hub_contrib_slab[..hub_slots * width];
        let slots: Vec<std::sync::Mutex<IslandSlot<'_>>> = islands
            .iter()
            .map(|isl| {
                let (node_out, nr) =
                    std::mem::take(&mut node_rest).split_at_mut(isl.nodes.len() * width);
                node_rest = nr;
                let (hub_out, hr) =
                    std::mem::take(&mut hub_rest).split_at_mut(isl.hubs.len() * width);
                hub_rest = hr;
                std::sync::Mutex::new(IslandSlot {
                    node_out,
                    hub_out,
                    stats: IslandTaskStats::default(),
                })
            })
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Dynamic claiming over the slot list (the atomic hands every
        // index to exactly one worker, so the per-slot locks are never
        // contended); each participating thread reuses one arena.
        let worker = || {
            let mut ws = WorkerScratch::default();
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= islands.len() {
                    break;
                }
                let mut slot = slots[i].lock().expect("island slot lock");
                let IslandSlot { node_out, hub_out, stats } = &mut *slot;
                let bm = layout.bitmap(i, env.self_in_bitmap);
                *stats = run_island_direct(&env, bm, hub_slab, &mut ws, node_out, hub_out);
            }
        };
        pool.scope(|s| {
            for _ in 0..(pool.threads() - 1).min(islands.len().saturating_sub(1)) {
                s.spawn(worker);
            }
            worker();
        });
        slots.into_iter().map(|slot| slot.into_inner().expect("island slot lock").stats).collect()
    };

    // Phase 3: sequential merge in schedule order — the replay of every
    // hub-shared transition, so totals match the sequential path.
    let mut hubs = HubSlabs {
        width,
        num_pes: cfg.num_pes,
        y: hub_y,
        y_ready: hub_y_ready,
        partial: hub_partial,
        partial_ready: hub_partial_ready,
        bank: hub_bank,
        next_bank: 0,
        rows_allocated: 0,
        xw_hits: 0,
        precomputed: true,
    };
    for wave_range in layout.schedule().waves() {
        for task_idx in wave_range {
            let result = &results[task_idx];
            let pe_id = (task_idx % cfg.num_pes) as u32;
            let island = &islands[task_idx];
            // Same touches the sequential combination phase makes
            // (first touch charges the combine cost; the slab already
            // holds the value). Island-node rows are already in `out`.
            for &h in &island.hubs {
                hubs.touch(h, env.input, env.weights, env.norm, &mut stats);
            }
            stats.aggregation.merge(&result.aggregation);
            stats.combination_ops.merge(&result.combination_ops);
            stats.traffic.feature_read_bytes += result.feature_read_bytes;
            stats.traffic.output_write_bytes += result.output_write_bytes;
            let base = island_hub_offsets[task_idx];
            for (j, &hub) in island.hubs.iter().enumerate() {
                let bank = hubs.bank_of(hub);
                hubs.ensure_partial(hub, env.norm.self_weight(), &mut stats);
                hubs.accumulate(hub, &hub_contrib_slab[(base + j) * width..][..width]);
                stats.hub_path.hub_updates += 1;
                wave.push((pe_id, bank, hub));
            }
        }
        flush_wave(&mut ring, wave);
    }
    stats.island_tasks = islands.len() as u64;

    inter_hub_phase(&env, &mut hubs, &mut ring, wave, &mut stats);
    finalize_hubs(&env, &mut hubs, out, &mut stats);
    finish(stats, ring, &hubs)
}

// ---------------------------------------------------------------------
// Shard export hooks (`igcn-shard`)
// ---------------------------------------------------------------------
//
// A sharded deployment splits the island schedule across engines: each
// shard executes its islands locally (island closure makes island-node
// rows shard-complete) and *exports* its per-island hub contributions;
// a coordinator then replays the hub-shared state in global schedule
// order — the distributed twin of `execute_layer_parallel`'s phase 2 +
// phase 3 split, with shards in place of pool workers. The two hooks
// below are those halves, kept in this module so the bit-identity
// contract is pinned next to the code it mirrors.

/// Worker-local arenas for shard-side island execution — the exported
/// twin of the parallel path's per-worker scratch. One per shard,
/// reused across layers and requests.
#[derive(Default)]
pub struct IslandArena {
    ws: WorkerScratch,
}

impl IslandArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        IslandArena::default()
    }
}

/// Executes every island of `layout` with hub combination vectors
/// served from the prefilled `hub_y` slab (`layout.num_hubs() × width`
/// rows, broadcast by the coordinator), writing **activated island-node
/// rows** into `node_out` (layout order, rows `H..n`, row-major) and
/// raw per-(island, contacted-hub) aggregation results into
/// `hub_contrib` (islands back to back; island `i`'s slots start at
/// `hub_offsets[i]`, one `width`-wide slot per contacted hub in the
/// island's first-contact hub order).
///
/// The arithmetic per island is `run_island_direct` — identical to
/// what `execute_layer`/`execute_layer_parallel` run, so a coordinator
/// that replays the exported contributions in global schedule order
/// (see [`HubMergeState`]) reproduces the single-engine layer bit for
/// bit.
///
/// # Panics
///
/// Panics if the input/weight/normalisation shapes do not match the
/// layout or the output slices are mis-sized.
#[allow(clippy::too_many_arguments)]
pub fn execute_islands_export(
    layout: &IslandLayout,
    cfg: ConsumerConfig,
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    activation: Activation,
    hub_y: &[f32],
    arena: &mut IslandArena,
    node_out: &mut [f32],
    hub_contrib: &mut [f32],
    hub_offsets: &[usize],
) {
    let env = LayerEnv::new(layout, cfg, input, weights, norm, activation);
    let width = env.width;
    let num_hubs = layout.num_hubs();
    let islands = layout.partition().islands();
    assert_eq!(hub_offsets.len(), islands.len() + 1, "hub offset table mismatch");
    assert_eq!(hub_y.len(), num_hubs * width, "hub XW slab mismatch");
    assert_eq!(
        node_out.len(),
        (layout.graph().num_nodes() - num_hubs) * width,
        "island output slab mismatch"
    );
    assert_eq!(hub_contrib.len(), hub_offsets[islands.len()] * width, "contribution slab mismatch");

    let mut node_rest: &mut [f32] = node_out;
    let mut hub_rest: &mut [f32] = hub_contrib;
    for (idx, isl) in islands.iter().enumerate() {
        let (island_nodes, nr) =
            std::mem::take(&mut node_rest).split_at_mut(isl.nodes.len() * width);
        node_rest = nr;
        let (island_hubs, hr) = std::mem::take(&mut hub_rest).split_at_mut(isl.hubs.len() * width);
        hub_rest = hr;
        let bm = layout.bitmap(idx, env.self_in_bitmap);
        let _ = run_island_direct(&env, bm, hub_y, &mut arena.ws, island_nodes, island_hubs);
    }
}

/// Coordinator-side hub state of one sharded layer: the value half of
/// the hot path's `HubSlabs`, replayed over contributions pulled from
/// the shards. The caller drives it in the exact single-engine order —
/// islands in global schedule order (per island: [`ensure_partial`]
/// then [`accumulate`] for each contacted hub, hub order preserved),
/// then inter-hub tasks in the layout's legacy replay order, then
/// [`finalize_into`] — and the resulting hub rows are bit-identical to
/// `execute_layer`'s.
///
/// [`ensure_partial`]: HubMergeState::ensure_partial
/// [`accumulate`]: HubMergeState::accumulate
/// [`finalize_into`]: HubMergeState::finalize_into
#[derive(Debug, Default)]
pub struct HubMergeState {
    width: usize,
    /// Hub XW slab (`H × width`), filled by the coordinator once per
    /// layer via [`HubMergeState::y_mut`].
    y: Vec<f32>,
    partial: Vec<f32>,
    partial_ready: Vec<bool>,
}

impl HubMergeState {
    /// Creates an empty merge state; slabs grow on first use.
    pub fn new() -> Self {
        HubMergeState::default()
    }

    /// Prepares the slabs for a layer of `width`-wide vectors over
    /// `num_hubs` hubs.
    pub fn begin_layer(&mut self, num_hubs: usize, width: usize) {
        self.width = width;
        self.y.resize(num_hubs * width, 0.0);
        self.partial.resize(num_hubs * width, 0.0);
        self.partial_ready.clear();
        self.partial_ready.resize(num_hubs, false);
    }

    /// The hub XW slab, to be filled with `combine_values_into` rows
    /// (hub `h`'s vector at `h * width`). This is the slab shards read
    /// their halo hub vectors from.
    pub fn y_mut(&mut self) -> &mut [f32] {
        &mut self.y
    }

    /// The filled hub XW slab.
    pub fn y(&self) -> &[f32] {
        &self.y
    }

    /// Initialises hub `hub`'s partial row with its self contribution
    /// `self_weight · y_hub` on first touch — the exact transition of
    /// the hot path's `HubSlabs::ensure_partial`.
    pub fn ensure_partial(&mut self, hub: u32, self_weight: f32) {
        let i = hub as usize;
        if self.partial_ready[i] {
            return;
        }
        let (partial, y) = (&mut self.partial, &self.y);
        let row = &mut partial[i * self.width..][..self.width];
        row.fill(0.0);
        axpy(row, &y[i * self.width..][..self.width], self_weight);
        self.partial_ready[i] = true;
    }

    /// Accumulates an exported island contribution into the hub's
    /// partial row.
    pub fn accumulate(&mut self, hub: u32, delta: &[f32]) {
        let row = &mut self.partial[hub as usize * self.width..][..self.width];
        for (p, &d) in row.iter_mut().zip(delta) {
            *p += d;
        }
    }

    /// Accumulates hub `src`'s XW vector into hub `dst`'s partial row
    /// (the inter-hub PUSH step).
    pub fn accumulate_from_y(&mut self, dst: u32, src: u32) {
        let y = &self.y[src as usize * self.width..][..self.width];
        let row = &mut self.partial[dst as usize * self.width..][..self.width];
        for (p, &d) in row.iter_mut().zip(y) {
            *p += d;
        }
    }

    /// Finalises every hub row exactly like the hot path's
    /// `finalize_hubs` — untouched hubs get their self contribution,
    /// every row is post-scaled and activated — writing the activated
    /// rows into `hub_out` (`H × width`, hub-ID order; `norm` must be
    /// indexed so hub `h` is node `h`, i.e. the layout-order
    /// normalisation).
    pub fn finalize_into(
        &mut self,
        norm: &GcnNormalization,
        activation: Activation,
        hub_out: &mut [f32],
    ) {
        let width = self.width;
        let num_hubs = self.partial_ready.len();
        assert_eq!(hub_out.len(), num_hubs * width, "hub output slab mismatch");
        for h in 0..num_hubs {
            self.ensure_partial(h as u32, norm.self_weight());
            let os = norm.out_scale(NodeId::new(h as u32));
            let partial = &self.partial[h * width..][..width];
            let out_row = &mut hub_out[h * width..][..width];
            for (o, &v) in out_row.iter_mut().zip(partial) {
                *o = activation.apply(v * os);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandizationConfig;
    use crate::consumer::IslandConsumer;
    use crate::locator::islandize;
    use igcn_gnn::{GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::{CsrGraph, Permutation, SparseFeatures};

    fn setup(
        n: usize,
        noise: f64,
        seed: u64,
    ) -> (CsrGraph, crate::partition::IslandPartition, SparseFeatures) {
        let g = HubIslandConfig::new(n, (n / 25).max(2)).noise_fraction(noise).generate(seed);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        let x = SparseFeatures::random(n, 12, 0.4, seed ^ 0xBEEF);
        (g.graph, p, x)
    }

    /// Runs the hot path over the layout and scatters rows back to
    /// original IDs for comparison with the legacy path.
    fn hot_layer_unpermuted(
        layout: &IslandLayout,
        cfg: ConsumerConfig,
        x: &SparseFeatures,
        w: &DenseMatrix,
        norm: &GcnNormalization,
        activation: Activation,
        scratch: &mut LayerScratch,
    ) -> (DenseMatrix, LayerExecStats) {
        let n = layout.graph().num_nodes();
        let width = w.cols();
        let gathered = x.gather_rows(layout.gather_order());
        let mut buf = vec![0.0f32; n * width];
        let stats = execute_layer(
            layout,
            cfg,
            LayerInput::Sparse(&gathered),
            w,
            norm,
            activation,
            scratch,
            &mut buf,
        );
        let mut out = DenseMatrix::zeros(n, width);
        for old in 0..n {
            let new = layout.forward()[old] as usize;
            out.row_mut(old).copy_from_slice(&buf[new * width..][..width]);
        }
        (out, stats)
    }

    #[test]
    fn hot_path_is_bit_identical_to_legacy_layer() {
        for (noise, seed) in [(0.0, 1), (0.08, 2), (0.2, 3)] {
            let (g, p, x) = setup(220, noise, seed);
            let layout = IslandLayout::new(&g, &p, ConsumerConfig::default().num_pes);
            // 70-wide hidden layer exercises the multi-block column
            // replay (width > SCAN_COL_BLOCK).
            for model in
                [GnnModel::gcn(12, 7, 3), GnnModel::gin(12, 7, 3, 0.3), GnnModel::gcn(12, 70, 3)]
            {
                let w = ModelWeights::glorot(&model, seed + 10);
                let norm = model.normalization(&g);
                let consumer = IslandConsumer::new(&g, &p, ConsumerConfig::default());
                let (legacy_out, legacy_stats) = consumer.execute_layer(
                    LayerInput::Sparse(&x),
                    w.layer(0),
                    &norm,
                    Activation::Relu,
                );
                // The layout norm is computed on the permuted graph:
                // same degrees, bitwise-equal scales.
                let hot_norm = model.normalization(layout.graph());
                let mut scratch = LayerScratch::new();
                let (hot_out, hot_stats) = hot_layer_unpermuted(
                    &layout,
                    ConsumerConfig::default(),
                    &x,
                    w.layer(0),
                    &hot_norm,
                    Activation::Relu,
                    &mut scratch,
                );
                assert_eq!(hot_out, legacy_out, "noise={noise} {:?} values", model.kind());
                assert_eq!(hot_stats, legacy_stats, "noise={noise} {:?} stats", model.kind());
            }
        }
    }

    #[test]
    fn hot_path_parallel_is_bit_identical_to_sequential() {
        let (g, p, x) = setup(260, 0.05, 7);
        let cfg = ConsumerConfig::default();
        let layout = IslandLayout::new(&g, &p, cfg.num_pes);
        for model in [GnnModel::gcn(12, 6, 4), GnnModel::gin(12, 6, 4, 0.2)] {
            let w = ModelWeights::glorot(&model, 11);
            let norm = model.normalization(layout.graph());
            let gathered = x.gather_rows(layout.gather_order());
            let n = g.num_nodes();
            let width = w.layer(0).cols();
            let mut seq_buf = vec![0.0f32; n * width];
            let mut scratch = LayerScratch::new();
            let seq_stats = execute_layer(
                &layout,
                cfg,
                LayerInput::Sparse(&gathered),
                w.layer(0),
                &norm,
                Activation::Relu,
                &mut scratch,
                &mut seq_buf,
            );
            for threads in [1usize, 2, 8] {
                let pool = ThreadPool::new(threads);
                let mut par_buf = vec![0.0f32; n * width];
                let mut par_scratch = LayerScratch::new();
                let par_stats = execute_layer_parallel(
                    &layout,
                    cfg,
                    LayerInput::Sparse(&gathered),
                    w.layer(0),
                    &norm,
                    Activation::Relu,
                    &pool,
                    &mut par_scratch,
                    &mut par_buf,
                );
                assert_eq!(par_buf, seq_buf, "{:?} at {threads} threads", model.kind());
                assert_eq!(par_stats, seq_stats, "{:?} stats at {threads}", model.kind());
            }
            // Dense (layer ≥ 1) input path, sequential vs parallel.
            let dense = DenseMatrix::from_vec(n, width, seq_buf.clone());
            let mut seq1 = vec![0.0f32; n * w.layer(1).cols()];
            let seq1_stats = execute_layer(
                &layout,
                cfg,
                LayerInput::Dense(&dense),
                w.layer(1),
                &norm,
                Activation::None,
                &mut scratch,
                &mut seq1,
            );
            let pool = ThreadPool::new(4);
            let mut par1 = vec![0.0f32; n * w.layer(1).cols()];
            let par1_stats = execute_layer_parallel(
                &layout,
                cfg,
                LayerInput::Dense(&dense),
                w.layer(1),
                &norm,
                Activation::None,
                &pool,
                &mut scratch,
                &mut par1,
            );
            assert_eq!(par1, seq1);
            assert_eq!(par1_stats, seq1_stats);
        }
    }

    #[test]
    fn export_and_merge_hooks_reproduce_the_layer_bitwise() {
        // The shard contract: islands executed through the export hook
        // plus a schedule-order merge of the exported hub contributions
        // must equal `execute_layer` bit for bit (values; the hooks do
        // no statistics work). Exercised here with the whole layout as
        // one "shard".
        for (noise, seed) in [(0.0, 21), (0.1, 22)] {
            let (g, p, x) = setup(240, noise, seed);
            let cfg = ConsumerConfig::default();
            let layout = IslandLayout::new(&g, &p, cfg.num_pes);
            for model in [GnnModel::gcn(12, 7, 3), GnnModel::gin(12, 7, 3, 0.3)] {
                let w = ModelWeights::glorot(&model, seed + 5);
                let norm = model.normalization(layout.graph());
                let gathered = x.gather_rows(layout.gather_order());
                let n = g.num_nodes();
                let num_hubs = layout.num_hubs();
                let width = w.layer(0).cols();

                let mut reference = vec![0.0f32; n * width];
                let mut scratch = LayerScratch::new();
                execute_layer(
                    &layout,
                    cfg,
                    LayerInput::Sparse(&gathered),
                    w.layer(0),
                    &norm,
                    Activation::Relu,
                    &mut scratch,
                    &mut reference,
                );

                // Coordinator: prefill the hub XW slab.
                let mut merge = HubMergeState::new();
                merge.begin_layer(num_hubs, width);
                for h in 0..num_hubs as u32 {
                    combine_values_into(
                        LayerInput::Sparse(&gathered),
                        w.layer(0),
                        &norm,
                        h,
                        &mut merge.y_mut()[h as usize * width..][..width],
                    );
                }

                // Shard: islands through the export hook.
                let islands = layout.partition().islands();
                let mut offsets = vec![0usize];
                for isl in islands {
                    offsets.push(offsets.last().unwrap() + isl.hubs.len());
                }
                let mut node_out = vec![0.0f32; (n - num_hubs) * width];
                let mut contrib = vec![0.0f32; offsets[islands.len()] * width];
                let mut arena = IslandArena::new();
                let hub_y = merge.y().to_vec();
                execute_islands_export(
                    &layout,
                    cfg,
                    LayerInput::Sparse(&gathered),
                    w.layer(0),
                    &norm,
                    Activation::Relu,
                    &hub_y,
                    &mut arena,
                    &mut node_out,
                    &mut contrib,
                    &offsets,
                );

                // Coordinator: schedule-order merge + inter-hub + finalise.
                for wave in layout.schedule().waves() {
                    for idx in wave {
                        let base = offsets[idx];
                        for (j, &hub) in islands[idx].hubs.iter().enumerate() {
                            merge.ensure_partial(hub, norm.self_weight());
                            merge.accumulate(hub, &contrib[(base + j) * width..][..width]);
                        }
                    }
                }
                for (src, dests) in layout.inter_hub_tasks() {
                    for &d in dests {
                        merge.ensure_partial(d, norm.self_weight());
                        merge.accumulate_from_y(d, *src);
                    }
                }
                let mut hub_rows = vec![0.0f32; num_hubs * width];
                merge.finalize_into(&norm, Activation::Relu, &mut hub_rows);

                assert_eq!(
                    &node_out[..],
                    &reference[num_hubs * width..],
                    "{:?} noise={noise}: exported island rows diverged",
                    model.kind()
                );
                assert_eq!(
                    &hub_rows[..],
                    &reference[..num_hubs * width],
                    "{:?} noise={noise}: merged hub rows diverged",
                    model.kind()
                );
            }
        }
    }

    #[test]
    fn scratch_arena_stops_growing_after_first_layer() {
        let (g, p, x) = setup(200, 0.05, 5);
        let cfg = ConsumerConfig::default();
        let layout = IslandLayout::new(&g, &p, cfg.num_pes);
        let model = GnnModel::gcn(12, 8, 4);
        let w = ModelWeights::glorot(&model, 3);
        let norm = model.normalization(layout.graph());
        let gathered = x.gather_rows(layout.gather_order());
        let mut buf = vec![0.0f32; g.num_nodes() * 8];
        let mut scratch = LayerScratch::new();
        let run = |scratch: &mut LayerScratch, buf: &mut [f32]| {
            execute_layer(
                &layout,
                cfg,
                LayerInput::Sparse(&gathered),
                w.layer(0),
                &norm,
                Activation::Relu,
                scratch,
                buf,
            )
        };
        let first = run(&mut scratch, &mut buf);
        let warm_bytes = scratch.arena_bytes();
        assert!(warm_bytes > 0);
        for _ in 0..5 {
            let again = run(&mut scratch, &mut buf);
            assert_eq!(again, first, "repeated layers must be deterministic");
            assert_eq!(
                scratch.arena_bytes(),
                warm_bytes,
                "scratch arenas must not grow after warm-up"
            );
        }
    }

    #[test]
    fn lpt_assignment_covers_every_row_exactly_once() {
        let costs = [9u64, 1, 7, 3, 3, 1, 8, 2];
        let total: u64 = costs.iter().sum();
        for buckets in [1usize, 2, 3, 8, 16] {
            let a = lpt_assign(&costs, buckets);
            assert_eq!(a.len(), costs.len());
            assert!(a.iter().all(|&b| b < buckets), "{buckets} buckets: {a:?}");
            let mut load = vec![0u64; buckets];
            for (i, &b) in a.iter().enumerate() {
                load[b] += costs[i];
            }
            // Coverage: the loads account for every row's cost exactly once.
            assert_eq!(load.iter().sum::<u64>(), total, "{buckets} buckets");
            // The LPT guarantee: no bin exceeds the ideal share by more
            // than the largest single item.
            let ideal = total.div_ceil(buckets as u64);
            assert!(*load.iter().max().unwrap() <= ideal + 9, "{buckets} buckets: {load:?}");
        }
        assert!(lpt_assign(&[], 3).is_empty());
    }

    #[test]
    fn identity_layout_matches_legacy_on_the_original_graph() {
        // A layout is just a permutation; with noise 0 and default
        // config the partition ordering may or may not be identity —
        // either way the scatter/gather contract must hold. Exercise the
        // remap explicitly with a known permutation round trip.
        let (g, p, x) = setup(150, 0.0, 9);
        let cfg = ConsumerConfig::default();
        let layout = IslandLayout::new(&g, &p, cfg.num_pes);
        let perm = layout.permutation().clone();
        assert_eq!(perm.len(), g.num_nodes());
        // gather ∘ forward == identity on feature rows.
        let gathered = x.gather_rows(layout.gather_order());
        let back = gathered.gather_rows(
            Permutation::from_forward(layout.forward().to_vec()).unwrap().inverse().as_forward(),
        );
        // forward[old] = new; inverse of gather order is forward itself.
        let again = gathered.gather_rows(layout.forward());
        assert_eq!(again, x);
        let _ = back;
    }
}
