//! The `1×k` scan-window decision rule (§3.3.1, Figure 7).
//!
//! During aggregation the PE slides a `1×k` window along each bitmap row.
//! For each window it chooses the cheaper of:
//!
//! * **direct** — accumulate the `nnz` connected columns individually
//!   (`nnz` vector adds);
//! * **reuse** — take the pre-aggregated sum of the whole k-group and
//!   subtract the non-connected columns
//!   (`1` add + `k − nnz` subtracts).
//!
//! The paper states the consumer "can automatically pick the one that
//! demands the fewest operations"; its `nnz < k/2` rule is the same
//! comparison. Ties go to direct accumulation, which avoids a dependency
//! on the pre-aggregation pipeline.

use serde::{Deserialize, Serialize};

/// The outcome of one window scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowDecision {
    /// No connected columns — the parallel scanner skips the window
    /// entirely (zero pipeline bubbles, §3.3.2).
    Skip,
    /// Accumulate each connected column directly.
    Direct {
        /// Number of vector additions (= window popcount).
        adds: u32,
    },
    /// Add the pre-aggregated group sum, then subtract the non-connected
    /// columns.
    Reuse {
        /// Number of vector subtractions (`group size − popcount`).
        subs: u32,
    },
}

impl WindowDecision {
    /// Decides how to process a window with bit-mask `mask` over a group
    /// of `group_size` columns (the final group of a row may be narrower
    /// than `k`). With `redundancy_removal` off, every non-empty window is
    /// processed directly — the ablation baseline.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0` or `group_size > 64`.
    pub fn decide(mask: u64, group_size: usize, redundancy_removal: bool) -> Self {
        assert!(group_size > 0 && group_size <= 64, "invalid group size {group_size}");
        let nnz = (mask & mask_of(group_size)).count_ones();
        if nnz == 0 {
            return WindowDecision::Skip;
        }
        if !redundancy_removal || group_size < 2 {
            return WindowDecision::Direct { adds: nnz };
        }
        let cost_direct = nnz;
        let cost_reuse = 1 + (group_size as u32 - nnz);
        if cost_reuse < cost_direct {
            WindowDecision::Reuse { subs: group_size as u32 - nnz }
        } else {
            WindowDecision::Direct { adds: nnz }
        }
    }

    /// Vector ops this decision executes (excluding pre-aggregation
    /// amortisation).
    pub fn executed_ops(self) -> u32 {
        match self {
            WindowDecision::Skip => 0,
            WindowDecision::Direct { adds } => adds,
            WindowDecision::Reuse { subs } => 1 + subs,
        }
    }
}

fn mask_of(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_skips() {
        assert_eq!(WindowDecision::decide(0, 4, true), WindowDecision::Skip);
    }

    #[test]
    fn full_window_reuses_preaggregate() {
        // k=2, both bits set: reuse costs 1, direct costs 2.
        assert_eq!(WindowDecision::decide(0b11, 2, true), WindowDecision::Reuse { subs: 0 });
        // k=4, all set: reuse costs 1 vs direct 4.
        assert_eq!(WindowDecision::decide(0b1111, 4, true), WindowDecision::Reuse { subs: 0 });
    }

    #[test]
    fn sparse_window_goes_direct() {
        // k=4, one bit: direct costs 1, reuse costs 1 + 3.
        assert_eq!(WindowDecision::decide(0b0100, 4, true), WindowDecision::Direct { adds: 1 });
    }

    #[test]
    fn tie_goes_direct() {
        // k=4, nnz=2: direct 2 vs reuse 1+2=3 → direct.
        // k=3, nnz=2: direct 2 vs reuse 1+1=2 → tie → direct.
        assert_eq!(WindowDecision::decide(0b011, 3, true), WindowDecision::Direct { adds: 2 });
    }

    #[test]
    fn k4_three_set_prefers_reuse() {
        // direct 3 vs reuse 1+1=2 → reuse.
        assert_eq!(WindowDecision::decide(0b1110, 4, true), WindowDecision::Reuse { subs: 1 });
    }

    #[test]
    fn ablation_disables_reuse() {
        assert_eq!(WindowDecision::decide(0b11, 2, false), WindowDecision::Direct { adds: 2 });
    }

    #[test]
    fn narrow_trailing_group() {
        // Final group of width 1: always direct.
        assert_eq!(WindowDecision::decide(0b1, 1, true), WindowDecision::Direct { adds: 1 });
    }

    #[test]
    fn bits_beyond_group_ignored() {
        // Mask has a stray high bit beyond the group width.
        assert_eq!(WindowDecision::decide(0b101, 2, true), WindowDecision::Direct { adds: 1 });
    }

    #[test]
    fn executed_ops_accounting() {
        assert_eq!(WindowDecision::Skip.executed_ops(), 0);
        assert_eq!(WindowDecision::Direct { adds: 3 }.executed_ops(), 3);
        assert_eq!(WindowDecision::Reuse { subs: 2 }.executed_ops(), 3);
    }

    #[test]
    fn never_worse_than_direct() {
        for k in 2..=8usize {
            for mask in 0..(1u64 << k) {
                let d = WindowDecision::decide(mask, k, true);
                let nnz = mask.count_ones();
                assert!(
                    d.executed_ops() <= nnz || nnz == 0,
                    "k={k} mask={mask:b}: decision {d:?} worse than direct"
                );
            }
        }
    }
}
