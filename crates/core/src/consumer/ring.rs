//! The PE ring network with in-network reduction (§3.3.2, Figure 8).
//!
//! PEs are connected in a unidirectional ring; hub partial results whose
//! DHUB-PRC bank is attached to a different PE travel rightward hop by
//! hop. Each ring entry compares the hub IDs of the packet arriving from
//! its left neighbor and the packet injected by its local PE: when both
//! are valid and equal they are *reduced in the network*, halving traffic
//! for hot hubs.
//!
//! The accountant models wave-synchronous traffic: island tasks are issued
//! to PEs in waves of `num_pes`; updates emitted in the same wave can
//! merge on their way to the destination bank.

use serde::{Deserialize, Serialize};

/// Traffic statistics of the ring network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RingStats {
    /// Updates that resolved in the local bank (no ring traversal).
    pub local_hits: u64,
    /// Ring hops traversed by forwarded updates (after in-network
    /// merging).
    pub hops: u64,
    /// Packets eliminated by in-network reduction.
    pub reductions: u64,
    /// Total updates injected.
    pub updates: u64,
}

/// Wave-based ring-traffic accountant.
#[derive(Debug, Clone)]
pub struct RingAccountant {
    num_pes: usize,
    stats: RingStats,
}

impl RingAccountant {
    /// Creates an accountant for a ring of `num_pes` PEs.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes == 0`.
    pub fn new(num_pes: usize) -> Self {
        assert!(num_pes > 0, "ring needs at least one PE");
        RingAccountant { num_pes, stats: RingStats::default() }
    }

    /// Records one wave of hub updates: `(source_pe, dest_bank, hub)`
    /// triples emitted concurrently. Updates to the same hub merge at the
    /// first ring entry where their paths join; the model charges hops for
    /// the merged packet once past the merge point.
    pub fn record_wave(&mut self, updates: &[(u32, u32, u32)]) {
        self.stats.updates += updates.len() as u64;
        // Group by destination hub.
        let mut by_hub: std::collections::BTreeMap<u32, Vec<(u32, u32)>> =
            std::collections::BTreeMap::new();
        for &(pe, bank, hub) in updates {
            by_hub.entry(hub).or_default().push((pe, bank));
        }
        for (_, sources) in by_hub {
            let bank = sources[0].1;
            // Local injections terminate immediately.
            let mut distances: Vec<u64> = Vec::new();
            for &(pe, b) in &sources {
                debug_assert_eq!(b, bank, "one hub maps to one bank");
                if pe == bank {
                    self.stats.local_hits += 1;
                } else {
                    distances.push(self.distance(pe, bank));
                }
            }
            if distances.is_empty() {
                continue;
            }
            // Packets to the same destination share the tail of their
            // path: the combined hop count is the longest individual path
            // (the farthest packet sweeps up the others as it passes their
            // entry points), and each merge eliminates one packet.
            distances.sort_unstable();
            let max = *distances.last().expect("non-empty");
            self.stats.hops += max;
            self.stats.reductions += distances.len() as u64 - 1;
        }
    }

    fn distance(&self, from: u32, to: u32) -> u64 {
        // Unidirectional ring: hops from `from` rightward to `to`.
        let n = self.num_pes as u64;
        ((to as u64 + n) - from as u64) % n
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> RingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_update_no_hops() {
        let mut ring = RingAccountant::new(4);
        ring.record_wave(&[(2, 2, 100)]);
        let s = ring.stats();
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.hops, 0);
        assert_eq!(s.updates, 1);
    }

    #[test]
    fn remote_update_counts_ring_distance() {
        let mut ring = RingAccountant::new(4);
        // PE 1 → bank 3: two hops rightward.
        ring.record_wave(&[(1, 3, 100)]);
        assert_eq!(ring.stats().hops, 2);
        // Wraparound: PE 3 → bank 0 is one hop.
        ring.record_wave(&[(3, 0, 101)]);
        assert_eq!(ring.stats().hops, 3);
    }

    #[test]
    fn same_hub_updates_merge() {
        let mut ring = RingAccountant::new(8);
        // PEs 1, 2, 3 all update hub 7 in bank 5. Farthest is PE 1
        // (4 hops); the sweep merges the other two.
        ring.record_wave(&[(1, 5, 7), (2, 5, 7), (3, 5, 7)]);
        let s = ring.stats();
        assert_eq!(s.hops, 4);
        assert_eq!(s.reductions, 2);
        assert_eq!(s.updates, 3);
    }

    #[test]
    fn different_hubs_do_not_merge() {
        let mut ring = RingAccountant::new(8);
        ring.record_wave(&[(1, 5, 7), (2, 6, 8)]);
        let s = ring.stats();
        assert_eq!(s.reductions, 0);
        assert_eq!(s.hops, 4 + 4);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let _ = RingAccountant::new(0);
    }
}
