//! Processing-element execution of island and inter-hub tasks.
//!
//! [`execute_island_task`] is the software equivalent of one PE run
//! (Figure 8, bottom): PULL-based combination of the island's members into
//! pre-scaled vectors `y_v = s_in(v)·(X_v·W)`, eager (or lazy)
//! pre-aggregation of every `k` consecutive members, then the `1×k`
//! bitmap window scan that aggregates each member row, reusing
//! pre-aggregated group sums wherever that costs fewer vector ops.
//!
//! Every function has an `account_*` twin that produces byte-identical
//! [`LayerExecStats`] without touching floating-point data — the fast path
//! the hardware timing model uses on large graphs. A unit test in
//! [`super`] pins the two paths together.

use std::collections::{BTreeMap, HashMap, HashSet};

use igcn_gnn::Activation;
use igcn_graph::{CsrGraph, NodeId};
use igcn_linalg::{DenseMatrix, GcnNormalization};

use crate::config::{ConsumerConfig, PreaggPolicy};
use crate::error::CoreError;
use crate::island::{Island, IslandBitmap};
use crate::stats::{AggregationStats, LayerExecStats};

use super::hub_cache::{HubPartialCache, HubXwCache};
use super::ring::RingAccountant;
use super::window::WindowDecision;
use super::LayerInput;

const F32_BYTES: u64 = 4;
const IDX_BYTES: u64 = 4;
const INT8_BYTES: u64 = 1;

/// Mutable state of one layer's execution across all PEs.
#[derive(Debug)]
pub struct LayerContext<'l> {
    input: LayerInput<'l>,
    weights: &'l DenseMatrix,
    norm: &'l GcnNormalization,
    activation: Activation,
    cfg: ConsumerConfig,
    out: DenseMatrix,
    xw_cache: HubXwCache,
    /// Hub combination vectors precomputed by the parallel hub table;
    /// when set, cache misses copy from here (charging the same cost)
    /// instead of recomputing on the merge thread.
    hub_table: Option<&'l HashMap<u32, Vec<f32>>>,
    prc: HubPartialCache,
    ring: RingAccountant,
    wave: Vec<(u32, u32, u32)>,
    /// Execution statistics being accumulated.
    pub stats: LayerExecStats,
}

impl<'l> LayerContext<'l> {
    /// Creates the context for one layer over `n` nodes.
    pub fn new(
        input: LayerInput<'l>,
        weights: &'l DenseMatrix,
        norm: &'l GcnNormalization,
        activation: Activation,
        cfg: ConsumerConfig,
        n: usize,
    ) -> Self {
        let out_dim = weights.cols();
        LayerContext {
            input,
            weights,
            norm,
            activation,
            cfg,
            out: DenseMatrix::zeros(n, out_dim),
            xw_cache: HubXwCache::new(),
            hub_table: None,
            prc: HubPartialCache::new(cfg.num_pes, out_dim),
            ring: RingAccountant::new(cfg.num_pes),
            wave: Vec::new(),
            stats: LayerExecStats { feature_width: out_dim, ..Default::default() },
        }
    }

    /// Combination of one node: `y_v = s_in(v) · (X_v · W)`, with exact
    /// operation and traffic accounting.
    fn combine_node(&mut self, v: u32) -> Vec<f32> {
        self.charge_combine_cost(v);
        combine_values(self.input, self.weights, self.norm, v)
    }

    /// The operation/traffic charges of [`combine_values`] for node `v`,
    /// without the floating-point work (used when the value itself was
    /// computed elsewhere, e.g. by a pool worker or the hub XW table).
    fn charge_combine_cost(&mut self, v: u32) {
        let (macs, muls, feature_bytes) =
            combine_cost(self.input, self.weights.cols(), self.norm, v);
        self.stats.combination_ops.macs += macs;
        self.stats.combination_ops.muls += muls;
        self.stats.traffic.feature_read_bytes += feature_bytes;
    }

    /// Installs the precomputed hub XW table (parallel execution).
    pub fn set_hub_table(&mut self, table: &'l HashMap<u32, Vec<f32>>) {
        self.hub_table = Some(table);
    }

    /// The hub's pre-scaled combination result, served by the HUB Matrix
    /// XW Cache (computed — or copied from the precomputed hub table —
    /// once per layer; either way the first touch charges the
    /// combination cost and later touches count as hits, so sequential
    /// and parallel statistics agree).
    fn hub_y(&mut self, hub: u32) -> Vec<f32> {
        if self.xw_cache.get(hub).is_none() {
            let y = match self.hub_table.and_then(|t| t.get(&hub)) {
                Some(y) => {
                    self.charge_combine_cost(hub);
                    y.clone()
                }
                None => self.combine_node(hub),
            };
            self.xw_cache.insert(hub, y);
        } else {
            self.xw_cache.record_hit();
        }
        self.xw_cache.get(hub).expect("just inserted").to_vec()
    }

    /// Initialises a hub's partial row with its self contribution
    /// `self_weight · y_hub` on first touch.
    fn ensure_hub_partial(&mut self, hub: u32, y_hub: &[f32]) {
        if self.prc.contains(hub) {
            return;
        }
        self.stats.aggregation.unpruned_vector_ops += 1;
        self.stats.aggregation.executed_vector_adds += 1;
        let sw = self.norm.self_weight();
        let init: Vec<f32> = y_hub.iter().map(|&v| v * sw).collect();
        self.prc.accumulate(hub, &init);
    }

    /// Flushes the pending wave of hub updates through the ring model.
    pub fn flush_wave(&mut self) {
        if !self.wave.is_empty() {
            let wave = std::mem::take(&mut self.wave);
            self.ring.record_wave(&wave);
        }
    }

    /// Completes the layer: folds ring/cache counters into the stats and
    /// returns the output matrix.
    pub fn finish(mut self) -> (DenseMatrix, LayerExecStats) {
        let rs = self.ring.stats();
        self.stats.hub_path.local_bank_hits = rs.local_hits;
        self.stats.hub_path.ring_hops = rs.hops;
        self.stats.hub_path.in_network_reductions = rs.reductions;
        self.stats.hub_path.hub_rows_allocated = self.prc.rows_allocated();
        self.stats.hub_path.xw_cache_hits = self.xw_cache.hits();
        (self.out, self.stats)
    }
}

/// Executes one island task on PE `pe_id` (values + statistics).
pub fn execute_island_task(
    ctx: &mut LayerContext<'_>,
    graph: &CsrGraph,
    island: &Island,
    pe_id: u32,
) {
    // With unit self-weight (GCN, GraphSage) the Ã = A + I diagonal rides
    // the bitmap, so self-contributions share the pre-aggregated windows.
    // GIN's 1+ε self-weight needs the separate scaled add.
    let self_in_bitmap = ctx.norm.self_weight() == 1.0;
    let bm = if self_in_bitmap { island.bitmap_with_self(graph) } else { island.bitmap(graph) };
    let out_dim = ctx.weights.cols();
    let k = ctx.cfg.k;
    let dim = bm.dim();
    let nh = bm.num_hubs();

    // --- Combination phase (hubs served from the XW cache). ---
    let mut y: Vec<Vec<f32>> = Vec::with_capacity(dim);
    for (i, &m) in bm.members().iter().enumerate() {
        if i < nh {
            y.push(ctx.hub_y(m));
        } else {
            y.push(ctx.combine_node(m));
        }
    }

    // --- Pre-aggregation of every k consecutive members. ---
    let num_groups = dim.div_ceil(k);
    let mut group_sums: Vec<Option<Vec<f32>>> = vec![None; num_groups];
    if ctx.cfg.redundancy_removal && ctx.cfg.preagg == PreaggPolicy::Eager {
        for g in 0..num_groups {
            materialize_group(&mut group_sums, &y, g, k, dim, &mut ctx.stats.aggregation);
        }
    }

    // --- Aggregation: 1×k window scan over every bitmap row. ---
    for r in 0..dim {
        let mut acc = vec![0.0f32; out_dim];
        for g in 0..num_groups {
            let start = g * k;
            let size = k.min(dim - start);
            let mask = bm.window(r, start, k);
            let nnz = mask.count_ones() as u64;
            ctx.stats.aggregation.unpruned_vector_ops += nnz;
            match WindowDecision::decide(mask, size, ctx.cfg.redundancy_removal) {
                WindowDecision::Skip => {
                    ctx.stats.aggregation.windows_skipped += 1;
                }
                WindowDecision::Direct { adds } => {
                    ctx.stats.aggregation.windows_direct += 1;
                    ctx.stats.aggregation.executed_vector_adds += adds as u64;
                    for b in 0..size {
                        if (mask >> b) & 1 == 1 {
                            axpy(&mut acc, &y[start + b], 1.0);
                        }
                    }
                }
                WindowDecision::Reuse { subs } => {
                    ctx.stats.aggregation.windows_reused += 1;
                    ctx.stats.aggregation.executed_vector_adds += 1;
                    ctx.stats.aggregation.executed_vector_subs += subs as u64;
                    materialize_group(&mut group_sums, &y, g, k, dim, &mut ctx.stats.aggregation);
                    let sum = group_sums[g].as_ref().expect("materialized above");
                    axpy(&mut acc, sum, 1.0);
                    for b in 0..size {
                        if (mask >> b) & 1 == 0 {
                            axpy(&mut acc, &y[start + b], -1.0);
                        }
                    }
                }
            }
        }
        let member = bm.member(r);
        if r >= nh {
            // Island node: self contribution (separate path only when the
            // self-weight is not 1), post-scale, activate, write the final
            // row.
            if !self_in_bitmap {
                ctx.stats.aggregation.unpruned_vector_ops += 1;
                ctx.stats.aggregation.executed_vector_adds += 1;
                axpy(&mut acc, &y[r], ctx.norm.self_weight());
            }
            let os = ctx.norm.out_scale(NodeId::new(member));
            if os != 1.0 {
                ctx.stats.combination_ops.muls += out_dim as u64;
            }
            let out_row = ctx.out.row_mut(member as usize);
            for (o, &v) in out_row.iter_mut().zip(&acc) {
                *o = ctx.activation.apply(v * os);
            }
            ctx.stats.traffic.output_write_bytes += out_dim as u64 * F32_BYTES;
        } else {
            // Hub: push the partial into its DHUB-PRC bank via the ring.
            let bank = ctx.prc.bank_of(member);
            let y_hub = y[r].clone();
            ctx.ensure_hub_partial(member, &y_hub);
            ctx.prc.accumulate(member, &acc);
            ctx.stats.hub_path.hub_updates += 1;
            ctx.wave.push((pe_id, bank, member));
        }
    }
}

/// Executes all inter-hub tasks in PUSH-outer-product order: sources in
/// ascending hub ID; each source broadcasts its cached `y` to every hub
/// neighbor's partial row.
pub fn execute_inter_hub_tasks(ctx: &mut LayerContext<'_>, edges: &[(u32, u32)]) {
    let mut by_source: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in edges {
        by_source.entry(a).or_default().push(b);
        by_source.entry(b).or_default().push(a);
    }
    let num_pes = ctx.cfg.num_pes;
    for (task_idx, (src, dests)) in by_source.into_iter().enumerate() {
        let pe_id = (task_idx % num_pes) as u32;
        let y_src = ctx.hub_y(src);
        for d in dests {
            let bank = ctx.prc.bank_of(d);
            let y_dst = ctx.hub_y(d);
            ctx.ensure_hub_partial(d, &y_dst);
            ctx.stats.aggregation.unpruned_vector_ops += 1;
            ctx.stats.aggregation.executed_vector_adds += 1;
            ctx.prc.accumulate(d, &y_src);
            ctx.stats.hub_path.hub_updates += 1;
            ctx.wave.push((pe_id, bank, d));
        }
        ctx.stats.inter_hub_tasks += 1;
        if (task_idx + 1) % num_pes == 0 {
            ctx.flush_wave();
        }
    }
}

/// Finalises every hub: post-scales its completed partial result, applies
/// the activation and writes the output row.
pub fn finalize_hubs(ctx: &mut LayerContext<'_>, hubs: &[u32]) {
    let out_dim = ctx.weights.cols();
    for &h in hubs {
        if !ctx.prc.contains(h) {
            // Hub untouched by any task (only possible in degenerate
            // graphs): its output is the self contribution alone.
            let y_h = ctx.hub_y(h);
            ctx.ensure_hub_partial(h, &y_h);
        }
        let partial = ctx.prc.partial(h).expect("initialized above").to_vec();
        let os = ctx.norm.out_scale(NodeId::new(h));
        if os != 1.0 {
            ctx.stats.combination_ops.muls += out_dim as u64;
        }
        let out_row = ctx.out.row_mut(h as usize);
        for (o, &v) in out_row.iter_mut().zip(&partial) {
            *o = ctx.activation.apply(v * os);
        }
        ctx.stats.traffic.output_write_bytes += out_dim as u64 * F32_BYTES;
    }
}

/// The operation/traffic cost of combining node `v` as
/// `(macs, muls, feature_read_bytes)` — the single source of truth for
/// the combination cost model, shared by the execution context, the
/// accounting context, the pool workers and the layout hot path.
pub(crate) fn combine_cost(
    input: LayerInput<'_>,
    out_dim: usize,
    norm: &GcnNormalization,
    v: u32,
) -> (u64, u64, u64) {
    let (macs, feature_bytes) = match input {
        LayerInput::Sparse(x) => {
            let nnz = x.row_nnz(NodeId::new(v)) as u64;
            // The feature fetcher picks the cheaper row encoding: CSR
            // (value + index per non-zero) or dense.
            (
                nnz * out_dim as u64,
                (nnz * (F32_BYTES + IDX_BYTES)).min(x.num_cols() as u64 * F32_BYTES),
            )
        }
        LayerInput::SparseInt8(x) => {
            // Int8-quantized value stream: the stored element is one
            // byte (per-column scales are a width-sized constant the
            // model ignores, matching the f32 path's treatment of
            // weights elsewhere). Same MAC count — the kernels run on
            // dequantized f32 rows.
            let nnz = x.row_nnz(NodeId::new(v)) as u64;
            (
                nnz * out_dim as u64,
                (nnz * (INT8_BYTES + IDX_BYTES)).min(x.num_cols() as u64 * INT8_BYTES),
            )
        }
        LayerInput::Dense(m) => ((m.cols() * out_dim) as u64, m.cols() as u64 * F32_BYTES),
    };
    let muls = if norm.in_scale(NodeId::new(v)) != 1.0 { out_dim as u64 } else { 0 };
    (macs, muls, feature_bytes)
}

/// The pure combination arithmetic `y_v = s_in(v) · (X_v · W)` — the
/// value half of [`LayerContext::combine_node`], shared with the pool
/// workers so parallel execution produces bit-identical vectors.
pub fn combine_values(
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    v: u32,
) -> Vec<f32> {
    let mut y = vec![0.0f32; weights.cols()];
    combine_values_into(input, weights, norm, v, &mut y);
    y
}

/// Allocation-free twin of [`combine_values`]: writes
/// `y_v = s_in(v) · (X_v · W)` into `out` (which must be `weights.cols()`
/// long). [`combine_values`] delegates here, so both paths are
/// arithmetic-identical by construction.
///
/// # Panics
///
/// Panics if `out.len() != weights.cols()`.
pub fn combine_values_into(
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    v: u32,
    out: &mut [f32],
) {
    assert_eq!(out.len(), weights.cols(), "combination output width mismatch");
    out.fill(0.0);
    // Column-vectorized kernels: `axpy_f32` accumulates one weight row at a
    // time in feature-column order with non-fused multiply + add, so the
    // per-element accumulation order (and hence every bit of the result)
    // matches the historical scalar loops on every SIMD backend.
    match input {
        LayerInput::Sparse(x) | LayerInput::SparseInt8(x) => {
            let (cols, vals) = x.row(NodeId::new(v));
            for (&c, &xv) in cols.iter().zip(vals) {
                igcn_linalg::kernels::axpy_f32(out, weights.row(c as usize), xv);
            }
        }
        LayerInput::Dense(m) => {
            let row = m.row(v as usize);
            for (c, &xv) in row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                igcn_linalg::kernels::axpy_f32(out, weights.row(c), xv);
            }
        }
    }
    let s = norm.in_scale(NodeId::new(v));
    if s != 1.0 {
        igcn_linalg::kernels::scale_f32(out, s);
    }
}

/// The output of one island task computed off the shared context by a
/// pool worker: finished island-node rows, hub partial-result
/// contributions in bitmap-row order, and the task's private statistics.
///
/// Everything hub-*shared* (XW-cache touches, DHUB-PRC accumulation,
/// bank allocation, ring waves) is deliberately absent — the merge phase
/// ([`apply_island_task_result`]) replays it in schedule order so the
/// totals are identical to the sequential path.
#[derive(Debug)]
pub struct IslandTaskResult {
    /// `(node, activated output row)` for each island-node row.
    pub node_rows: Vec<(u32, Vec<f32>)>,
    /// `(hub, aggregated partial)` for each hub row, in bitmap order.
    pub hub_contribs: Vec<(u32, Vec<f32>)>,
    /// Window-scan accounting of this task (no hub first-touch adds).
    pub aggregation: AggregationStats,
    /// Combination ops of the island-node members plus out-scale muls
    /// (hub combination is charged at the merge's first touch).
    pub combination_ops: igcn_linalg::OpCounter,
    /// Feature bytes read for the island-node members.
    pub feature_read_bytes: u64,
    /// Output bytes written for the island-node rows.
    pub output_write_bytes: u64,
}

/// Executes one island task without touching shared state — the pool
/// worker's half of [`execute_island_task`], arithmetic-identical row by
/// row. Hub combination vectors come from the precomputed `hub_y` table.
///
/// # Errors
///
/// Returns [`CoreError::HubTableMiss`] if a bitmap hub is missing from
/// `hub_y` — a stale table (e.g. one captured before an `apply_update`
/// promoted new hubs) surfaces as a typed error instead of a worker
/// panic.
#[allow(clippy::too_many_arguments)]
pub fn run_island_task(
    graph: &CsrGraph,
    island: &Island,
    input: LayerInput<'_>,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    activation: Activation,
    cfg: ConsumerConfig,
    hub_y: &HashMap<u32, Vec<f32>>,
) -> Result<IslandTaskResult, CoreError> {
    let self_in_bitmap = norm.self_weight() == 1.0;
    let bm = if self_in_bitmap { island.bitmap_with_self(graph) } else { island.bitmap(graph) };
    let out_dim = weights.cols();
    let k = cfg.k;
    let dim = bm.dim();
    let nh = bm.num_hubs();
    let mut result = IslandTaskResult {
        node_rows: Vec::with_capacity(dim - nh),
        hub_contribs: Vec::with_capacity(nh),
        aggregation: AggregationStats::default(),
        combination_ops: igcn_linalg::OpCounter::default(),
        feature_read_bytes: 0,
        output_write_bytes: 0,
    };

    // --- Combination phase (hub vectors served from the shared table). ---
    let mut y: Vec<Vec<f32>> = Vec::with_capacity(dim);
    for (i, &m) in bm.members().iter().enumerate() {
        if i < nh {
            y.push(hub_y.get(&m).ok_or(CoreError::HubTableMiss { hub: m })?.clone());
        } else {
            y.push(combine_values(input, weights, norm, m));
            let (macs, muls, feature_bytes) = combine_cost(input, out_dim, norm, m);
            result.combination_ops.macs += macs;
            result.combination_ops.muls += muls;
            result.feature_read_bytes += feature_bytes;
        }
    }

    // --- Pre-aggregation of every k consecutive members. ---
    let num_groups = dim.div_ceil(k);
    let mut group_sums: Vec<Option<Vec<f32>>> = vec![None; num_groups];
    if cfg.redundancy_removal && cfg.preagg == PreaggPolicy::Eager {
        for g in 0..num_groups {
            materialize_group(&mut group_sums, &y, g, k, dim, &mut result.aggregation);
        }
    }

    // --- Aggregation: 1×k window scan over every bitmap row. ---
    for r in 0..dim {
        let mut acc = vec![0.0f32; out_dim];
        for g in 0..num_groups {
            let start = g * k;
            let size = k.min(dim - start);
            let mask = bm.window(r, start, k);
            result.aggregation.unpruned_vector_ops += mask.count_ones() as u64;
            match WindowDecision::decide(mask, size, cfg.redundancy_removal) {
                WindowDecision::Skip => {
                    result.aggregation.windows_skipped += 1;
                }
                WindowDecision::Direct { adds } => {
                    result.aggregation.windows_direct += 1;
                    result.aggregation.executed_vector_adds += adds as u64;
                    for b in 0..size {
                        if (mask >> b) & 1 == 1 {
                            axpy(&mut acc, &y[start + b], 1.0);
                        }
                    }
                }
                WindowDecision::Reuse { subs } => {
                    result.aggregation.windows_reused += 1;
                    result.aggregation.executed_vector_adds += 1;
                    result.aggregation.executed_vector_subs += subs as u64;
                    materialize_group(&mut group_sums, &y, g, k, dim, &mut result.aggregation);
                    let sum = group_sums[g].as_ref().expect("materialized above");
                    axpy(&mut acc, sum, 1.0);
                    for b in 0..size {
                        if (mask >> b) & 1 == 0 {
                            axpy(&mut acc, &y[start + b], -1.0);
                        }
                    }
                }
            }
        }
        let member = bm.member(r);
        if r >= nh {
            if !self_in_bitmap {
                result.aggregation.unpruned_vector_ops += 1;
                result.aggregation.executed_vector_adds += 1;
                axpy(&mut acc, &y[r], norm.self_weight());
            }
            let os = norm.out_scale(NodeId::new(member));
            if os != 1.0 {
                result.combination_ops.muls += out_dim as u64;
            }
            for v in &mut acc {
                *v = activation.apply(*v * os);
            }
            result.output_write_bytes += out_dim as u64 * F32_BYTES;
            result.node_rows.push((member, acc));
        } else {
            result.hub_contribs.push((member, acc));
        }
    }
    Ok(result)
}

/// Merges one worker-computed [`IslandTaskResult`] into the shared layer
/// context — the schedule-ordered replay of everything
/// [`execute_island_task`] does to shared state: XW-cache touches of the
/// island's hubs (bitmap order), island-node row writes, statistics
/// accumulation, and DHUB-PRC updates with their ring-wave entries.
pub fn apply_island_task_result(
    ctx: &mut LayerContext<'_>,
    island: &Island,
    result: IslandTaskResult,
    pe_id: u32,
) {
    for &h in &island.hubs {
        // Same touch the sequential combination phase makes (first touch
        // copies from the hub table and charges the combine cost).
        let _ = ctx.hub_y(h);
    }
    for (member, row) in result.node_rows {
        ctx.out.row_mut(member as usize).copy_from_slice(&row);
    }
    ctx.stats.aggregation.merge(&result.aggregation);
    ctx.stats.combination_ops.merge(&result.combination_ops);
    ctx.stats.traffic.feature_read_bytes += result.feature_read_bytes;
    ctx.stats.traffic.output_write_bytes += result.output_write_bytes;
    for (hub, acc) in result.hub_contribs {
        let bank = ctx.prc.bank_of(hub);
        let y_hub = ctx.xw_cache.get(hub).expect("touched above").to_vec();
        ctx.ensure_hub_partial(hub, &y_hub);
        ctx.prc.accumulate(hub, &acc);
        ctx.stats.hub_path.hub_updates += 1;
        ctx.wave.push((pe_id, bank, hub));
    }
}

fn materialize_group(
    group_sums: &mut [Option<Vec<f32>>],
    y: &[Vec<f32>],
    g: usize,
    k: usize,
    dim: usize,
    agg: &mut AggregationStats,
) {
    if group_sums[g].is_some() {
        return;
    }
    let start = g * k;
    let size = k.min(dim - start);
    let mut sum = y[start].clone();
    for item in y.iter().skip(start + 1).take(size - 1) {
        axpy(&mut sum, item, 1.0);
    }
    if size >= 2 {
        agg.preagg_vector_adds += size as u64 - 1;
    }
    group_sums[g] = Some(sum);
}

/// `acc += alpha · x` over the SIMD backend — bit-identical to the scalar
/// loop `*a += alpha * v` because the kernel uses non-fused multiply + add
/// on independent lanes (see `igcn_simd`).
#[inline]
pub(crate) fn axpy(acc: &mut [f32], x: &[f32], alpha: f32) {
    igcn_linalg::kernels::axpy_f32(acc, x, alpha);
}

// ---------------------------------------------------------------------
// Accounting twins: identical statistics, no floating-point work.
// ---------------------------------------------------------------------

/// Value-free twin of [`LayerContext`].
#[derive(Debug)]
pub struct AccountContext<'l> {
    input: LayerInput<'l>,
    out_dim: usize,
    norm: &'l GcnNormalization,
    cfg: ConsumerConfig,
    hub_seen: HashSet<u32>,
    xw_hits: u64,
    prc_seen: HashSet<u32>,
    bank_of: HashMap<u32, u32>,
    next_bank: u32,
    ring: RingAccountant,
    wave: Vec<(u32, u32, u32)>,
    /// Execution statistics being accumulated.
    pub stats: LayerExecStats,
}

impl<'l> AccountContext<'l> {
    /// Creates the accounting context for one layer.
    pub fn new(
        input: LayerInput<'l>,
        out_dim: usize,
        norm: &'l GcnNormalization,
        cfg: ConsumerConfig,
    ) -> Self {
        AccountContext {
            input,
            out_dim,
            norm,
            cfg,
            hub_seen: HashSet::new(),
            xw_hits: 0,
            prc_seen: HashSet::new(),
            bank_of: HashMap::new(),
            next_bank: 0,
            ring: RingAccountant::new(cfg.num_pes),
            wave: Vec::new(),
            stats: LayerExecStats { feature_width: out_dim, ..Default::default() },
        }
    }

    fn combine_cost(&mut self, v: u32) {
        let (macs, muls, feature_bytes) = combine_cost(self.input, self.out_dim, self.norm, v);
        self.stats.combination_ops.macs += macs;
        self.stats.combination_ops.muls += muls;
        self.stats.traffic.feature_read_bytes += feature_bytes;
    }

    fn hub_cost(&mut self, hub: u32) {
        if self.hub_seen.insert(hub) {
            self.combine_cost(hub);
        } else {
            self.xw_hits += 1;
        }
    }

    fn bank_of(&mut self, hub: u32) -> u32 {
        if let Some(&b) = self.bank_of.get(&hub) {
            return b;
        }
        let b = self.next_bank;
        self.next_bank = (self.next_bank + 1) % self.cfg.num_pes as u32;
        self.bank_of.insert(hub, b);
        b
    }

    fn ensure_hub_partial(&mut self, hub: u32) {
        if self.prc_seen.insert(hub) {
            self.stats.aggregation.unpruned_vector_ops += 1;
            self.stats.aggregation.executed_vector_adds += 1;
        }
    }

    /// Flushes the pending wave of hub updates through the ring model.
    pub fn flush_wave(&mut self) {
        if !self.wave.is_empty() {
            let wave = std::mem::take(&mut self.wave);
            self.ring.record_wave(&wave);
        }
    }

    /// Completes the accounting and returns the statistics.
    pub fn finish(mut self) -> LayerExecStats {
        let rs = self.ring.stats();
        self.stats.hub_path.local_bank_hits = rs.local_hits;
        self.stats.hub_path.ring_hops = rs.hops;
        self.stats.hub_path.in_network_reductions = rs.reductions;
        self.stats.hub_path.hub_rows_allocated = self.bank_of.len() as u64;
        self.stats.hub_path.xw_cache_hits = self.xw_hits;
        self.stats
    }
}

/// Accounting twin of [`execute_island_task`].
pub fn account_island_task(
    ctx: &mut AccountContext<'_>,
    graph: &CsrGraph,
    island: &Island,
    pe_id: u32,
) {
    let self_in_bitmap = ctx.norm.self_weight() == 1.0;
    let bm: IslandBitmap =
        if self_in_bitmap { island.bitmap_with_self(graph) } else { island.bitmap(graph) };
    let k = ctx.cfg.k;
    let dim = bm.dim();
    let nh = bm.num_hubs();

    for (i, &m) in bm.members().iter().enumerate() {
        if i < nh {
            ctx.hub_cost(m);
        } else {
            ctx.combine_cost(m);
        }
    }

    let num_groups = dim.div_ceil(k);
    let mut materialized = vec![false; num_groups];
    let count_group = |g: usize, agg: &mut AggregationStats, materialized: &mut [bool]| {
        if materialized[g] {
            return;
        }
        materialized[g] = true;
        let start = g * k;
        let size = k.min(dim - start);
        if size >= 2 {
            agg.preagg_vector_adds += size as u64 - 1;
        }
    };
    if ctx.cfg.redundancy_removal && ctx.cfg.preagg == PreaggPolicy::Eager {
        for g in 0..num_groups {
            count_group(g, &mut ctx.stats.aggregation, &mut materialized);
        }
    }

    for r in 0..dim {
        for g in 0..num_groups {
            let start = g * k;
            let size = k.min(dim - start);
            let mask = bm.window(r, start, k);
            ctx.stats.aggregation.unpruned_vector_ops += mask.count_ones() as u64;
            match WindowDecision::decide(mask, size, ctx.cfg.redundancy_removal) {
                WindowDecision::Skip => ctx.stats.aggregation.windows_skipped += 1,
                WindowDecision::Direct { adds } => {
                    ctx.stats.aggregation.windows_direct += 1;
                    ctx.stats.aggregation.executed_vector_adds += adds as u64;
                }
                WindowDecision::Reuse { subs } => {
                    ctx.stats.aggregation.windows_reused += 1;
                    ctx.stats.aggregation.executed_vector_adds += 1;
                    ctx.stats.aggregation.executed_vector_subs += subs as u64;
                    count_group(g, &mut ctx.stats.aggregation, &mut materialized);
                }
            }
        }
        let member = bm.member(r);
        if r >= nh {
            if !self_in_bitmap {
                ctx.stats.aggregation.unpruned_vector_ops += 1;
                ctx.stats.aggregation.executed_vector_adds += 1;
            }
            if ctx.norm.out_scale(NodeId::new(member)) != 1.0 {
                ctx.stats.combination_ops.muls += ctx.out_dim as u64;
            }
            ctx.stats.traffic.output_write_bytes += ctx.out_dim as u64 * F32_BYTES;
        } else {
            let bank = ctx.bank_of(member);
            ctx.ensure_hub_partial(member);
            ctx.stats.hub_path.hub_updates += 1;
            ctx.wave.push((pe_id, bank, member));
        }
    }
}

/// Accounting twin of [`execute_inter_hub_tasks`].
pub fn account_inter_hub_tasks(ctx: &mut AccountContext<'_>, edges: &[(u32, u32)]) {
    let mut by_source: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in edges {
        by_source.entry(a).or_default().push(b);
        by_source.entry(b).or_default().push(a);
    }
    let num_pes = ctx.cfg.num_pes;
    for (task_idx, (src, dests)) in by_source.into_iter().enumerate() {
        let pe_id = (task_idx % num_pes) as u32;
        ctx.hub_cost(src);
        for d in dests {
            let bank = ctx.bank_of(d);
            ctx.hub_cost(d);
            ctx.ensure_hub_partial(d);
            ctx.stats.aggregation.unpruned_vector_ops += 1;
            ctx.stats.aggregation.executed_vector_adds += 1;
            ctx.stats.hub_path.hub_updates += 1;
            ctx.wave.push((pe_id, bank, d));
        }
        ctx.stats.inter_hub_tasks += 1;
        if (task_idx + 1) % num_pes == 0 {
            ctx.flush_wave();
        }
    }
}

/// Accounting twin of [`finalize_hubs`].
pub fn account_finalize_hubs(ctx: &mut AccountContext<'_>, hubs: &[u32]) {
    for &h in hubs {
        if !ctx.prc_seen.contains(&h) {
            ctx.hub_cost(h);
            ctx.ensure_hub_partial(h);
        }
        if ctx.norm.out_scale(NodeId::new(h)) != 1.0 {
            ctx.stats.combination_ops.muls += ctx.out_dim as u64;
        }
        ctx.stats.traffic.output_write_bytes += ctx.out_dim as u64 * F32_BYTES;
    }
}
