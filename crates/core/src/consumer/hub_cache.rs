//! Hub-side on-chip storage: the HUB Matrix XW Cache and the distributed
//! hub partial-result cache (DHUB-PRC).

use std::collections::HashMap;

/// The HUB Matrix XW Cache: combined (and pre-scaled) feature vectors of
/// hubs, computed once per layer at the hub's first appearance and reused
/// by every later island and inter-hub task (§3.3.2).
#[derive(Debug, Clone, Default)]
pub struct HubXwCache {
    entries: HashMap<u32, Vec<f32>>,
    hits: u64,
    misses: u64,
}

impl HubXwCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a hub's cached combination result; on miss, `compute` is
    /// invoked once and the result cached.
    pub fn get_or_compute<F: FnOnce() -> Vec<f32>>(&mut self, hub: u32, compute: F) -> &[f32] {
        if self.entries.contains_key(&hub) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let value = compute();
            self.entries.insert(hub, value);
        }
        self.entries.get(&hub).expect("just inserted").as_slice()
    }

    /// The cached row of `hub`, if present (does not count a hit).
    pub fn get(&self, hub: u32) -> Option<&[f32]> {
        self.entries.get(&hub).map(Vec::as_slice)
    }

    /// Inserts a freshly computed row, counting a miss.
    pub fn insert(&mut self, hub: u32, value: Vec<f32>) {
        self.misses += 1;
        self.entries.insert(hub, value);
    }

    /// Records a cache hit observed by the caller through
    /// [`HubXwCache::get`].
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= hub combinations actually computed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached hub rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The distributed HUB Partial Result Cache (DHUB-PRC): one bank per PE;
/// each hub is mapped to a fixed `(bank, row)` at its first appearance and
/// accumulates partial aggregation results there until all islands and
/// inter-hub tasks complete.
#[derive(Debug, Clone)]
pub struct HubPartialCache {
    num_banks: usize,
    width: usize,
    bank_of: HashMap<u32, u32>,
    partial: HashMap<u32, Vec<f32>>,
    next_bank: u32,
}

impl HubPartialCache {
    /// Creates the cache with one bank per PE and `width`-wide rows.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks == 0`.
    pub fn new(num_banks: usize, width: usize) -> Self {
        assert!(num_banks > 0, "at least one bank is required");
        HubPartialCache {
            num_banks,
            width,
            bank_of: HashMap::new(),
            partial: HashMap::new(),
            next_bank: 0,
        }
    }

    /// The bank a hub maps to, allocating round-robin at first appearance
    /// (the Island Collector "maps it to an unused row in a certain bank";
    /// the mapping is then fixed for the rest of the layer).
    pub fn bank_of(&mut self, hub: u32) -> u32 {
        if let Some(&b) = self.bank_of.get(&hub) {
            return b;
        }
        let b = self.next_bank;
        self.next_bank = (self.next_bank + 1) % self.num_banks as u32;
        self.bank_of.insert(hub, b);
        b
    }

    /// Whether the hub already has an allocated row.
    pub fn contains(&self, hub: u32) -> bool {
        self.partial.contains_key(&hub)
    }

    /// Accumulates `delta` into the hub's partial row, zero-initialising at
    /// first touch.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != width`.
    pub fn accumulate(&mut self, hub: u32, delta: &[f32]) {
        assert_eq!(delta.len(), self.width, "partial-result width mismatch");
        let row = self.partial.entry(hub).or_insert_with(|| vec![0.0; self.width]);
        for (p, &d) in row.iter_mut().zip(delta) {
            *p += d;
        }
    }

    /// The completed partial row of a hub, if any island or inter-hub task
    /// touched it.
    pub fn partial(&self, hub: u32) -> Option<&[f32]> {
        self.partial.get(&hub).map(Vec::as_slice)
    }

    /// Rows allocated across all banks.
    pub fn rows_allocated(&self) -> u64 {
        self.bank_of.len() as u64
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xw_cache_computes_once() {
        let mut cache = HubXwCache::new();
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                computes += 1;
                vec![1.0, 2.0]
            });
            assert_eq!(v, &[1.0, 2.0]);
        }
        assert_eq!(computes, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn partial_cache_round_robin_banks() {
        let mut prc = HubPartialCache::new(3, 2);
        assert_eq!(prc.bank_of(10), 0);
        assert_eq!(prc.bank_of(20), 1);
        assert_eq!(prc.bank_of(30), 2);
        assert_eq!(prc.bank_of(40), 0);
        // Mapping is sticky.
        assert_eq!(prc.bank_of(10), 0);
        assert_eq!(prc.rows_allocated(), 4);
    }

    #[test]
    fn partial_accumulates() {
        let mut prc = HubPartialCache::new(2, 3);
        prc.accumulate(5, &[1.0, 0.0, 2.0]);
        prc.accumulate(5, &[0.5, 1.0, 0.0]);
        assert_eq!(prc.partial(5).unwrap(), &[1.5, 1.0, 2.0]);
        assert!(prc.partial(6).is_none());
        assert!(prc.contains(5));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut prc = HubPartialCache::new(1, 2);
        prc.accumulate(1, &[1.0]);
    }
}
