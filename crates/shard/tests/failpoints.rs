//! Failpoint-driven degradation tests for the shard fleet.
//!
//! Own integration binary: arming a failpoint is process-global, so
//! these tests must not share a process with the ordinary unit tests.
//! Every test holds [`igcn_fail::FailGuard`], which serializes them and
//! tears all points down on drop.
//!
//! The contract under test: a shard panicking mid-request is contained
//! at the fan-out seam — the request fails with a typed error, the
//! fleet reports [`ShardHealth::Down`] / degraded
//! [`BackendHealth`], subsequent requests fail fast instead of
//! panicking again, and [`ShardedEngine::heal`] rebuilds **only** the
//! dead shard, after which outputs are bit-identical to an undamaged
//! fleet (and to a single engine).

use std::sync::Arc;

use igcn_core::{
    Accelerator, BackendHealth, CoreError, ExecConfig, GraphUpdate, IGcnEngine, InferenceRequest,
};
use igcn_fail::FailGuard;
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::generate::HubIslandConfig;
use igcn_graph::{CsrGraph, SparseFeatures};
use igcn_shard::{ShardError, ShardHealth, ShardedEngine};

const N: usize = 320;
const DIM: usize = 14;

fn setup(seed: u64) -> (Arc<CsrGraph>, GnnModel, ModelWeights, SparseFeatures) {
    let g = HubIslandConfig::new(N, 12).noise_fraction(0.03).generate(seed);
    let model = GnnModel::gcn(DIM, 9, 5);
    let weights = ModelWeights::glorot(&model, seed + 1);
    let x = SparseFeatures::random(N, DIM, 0.3, seed + 2);
    (Arc::new(g.graph), model, weights, x)
}

fn single(graph: &Arc<CsrGraph>, model: &GnnModel, weights: &ModelWeights) -> IGcnEngine {
    let mut e = IGcnEngine::builder(Arc::clone(graph)).build().unwrap();
    e.prepare(model, weights).unwrap();
    e
}

/// A shard panic mid-layer is contained: the request fails typed, the
/// fleet turns degraded, later requests fail fast (no second panic),
/// and `heal()` rebuilds the one dead shard back to bit-identity.
#[test]
fn shard_panic_degrades_fleet_and_heal_restores_bit_identity() {
    let guard = FailGuard::setup();
    let (graph, model, weights, x) = setup(21);
    let reference = single(&graph, &model, &weights);
    let mut fleet = ShardedEngine::from_engine(&reference, 3).unwrap();
    assert_eq!(fleet.num_shards(), 3);
    let request = InferenceRequest::new(x).with_id(9);
    let want = reference.infer(&request).unwrap();
    // Report baseline from an undamaged fleet (the report's backend
    // name differs from the single engine's).
    let pristine = ShardedEngine::from_engine(&reference, 3).unwrap();
    let want_report = pristine.infer(&request).unwrap().report;

    // Sequential execution (the default ExecConfig) visits shards in
    // index order, so the 2nd hit of the layer seam is shard 1, layer 0.
    guard.cfg("shard::run_layer", "nth(2):panic").unwrap();
    let err = fleet.infer(&request);
    guard.remove("shard::run_layer");
    match err {
        Err(CoreError::BackendFailed { backend, detail }) => {
            assert_eq!(backend, "shard 1");
            assert!(detail.contains("injected panic"), "detail: {detail}");
        }
        other => panic!("expected BackendFailed for shard 1, got {other:?}"),
    }
    assert_eq!(fleet.down_shards(), vec![1]);
    assert!(matches!(fleet.shard_health()[1], ShardHealth::Down { .. }));
    assert!(matches!(fleet.health(), BackendHealth::Degraded { .. }));

    // Fail-fast: the failpoint is disarmed, but the fleet must refuse
    // to serve through a dead shard rather than risk torn state.
    match fleet.infer(&request) {
        Err(CoreError::BackendFailed { detail, .. }) => {
            assert!(detail.contains("heal()"), "detail: {detail}")
        }
        other => panic!("expected fail-fast BackendFailed, got {other:?}"),
    }

    // Structural updates are refused while degraded, typed.
    match fleet.apply_update(GraphUpdate::add_edges(vec![(0, 1)])) {
        Err(ShardError::ShardFailed { shard: 1, .. }) => {}
        other => panic!("expected ShardFailed(1), got {other:?}"),
    }

    let healed = fleet.heal().unwrap();
    assert_eq!(healed, vec![1]);
    assert!(fleet.health().is_ready());
    assert!(fleet.down_shards().is_empty());
    let got = fleet.infer(&request).unwrap();
    assert_eq!(got.output, want.output, "post-heal output must be bit-identical");
    assert_eq!(got.report, want_report, "post-heal ExecStats must be identical");
}

/// Containment also holds on the pooled fan-out path, where shards run
/// on worker threads: every panicking shard is recorded (no unwind
/// crosses the pool), and a full heal brings all of them back.
#[test]
fn pooled_fanout_contains_panics_on_worker_threads() {
    let guard = FailGuard::setup();
    let (graph, model, weights, x) = setup(22);
    let reference = single(&graph, &model, &weights);
    let mut fleet = ShardedEngine::from_engine(&reference, 3).unwrap();
    fleet.set_exec_config(ExecConfig::default().with_threads(4));
    let request = InferenceRequest::new(x).with_id(10);
    let want = reference.infer(&request).unwrap();
    let want_report = fleet.infer(&request).unwrap().report;
    assert_eq!(fleet.infer(&request).unwrap().output, want.output, "healthy pooled run");

    // `always` fires on every shard this layer — all three die at once,
    // each on whatever worker thread picked it up.
    guard.cfg("shard::run_layer", "panic").unwrap();
    let err = fleet.infer(&request);
    guard.remove("shard::run_layer");
    assert!(matches!(err, Err(CoreError::BackendFailed { .. })), "got {err:?}");
    assert_eq!(fleet.down_shards(), vec![0, 1, 2], "every shard recorded as down");

    let healed = fleet.heal().unwrap();
    assert_eq!(healed, vec![0, 1, 2]);
    let got = fleet.infer(&request).unwrap();
    assert_eq!(got.output, want.output);
    assert_eq!(got.report, want_report);
}

/// `rebuild_shard` touches only its target: healthy shards keep their
/// engines (same Arc'd graph), and rebuilding the one dead shard is
/// enough to serve again.
#[test]
fn rebuild_targets_only_the_dead_shard() {
    let guard = FailGuard::setup();
    let (graph, model, weights, x) = setup(23);
    let reference = single(&graph, &model, &weights);
    let mut fleet = ShardedEngine::from_engine(&reference, 4).unwrap();
    let request = InferenceRequest::new(x).with_id(11);
    let want = reference.infer(&request).unwrap();
    let want_report = fleet.infer(&request).unwrap().report;

    guard.cfg("shard::run_layer", "nth(3):panic").unwrap();
    assert!(fleet.infer(&request).is_err());
    guard.remove("shard::run_layer");
    assert_eq!(fleet.down_shards(), vec![2]);

    // The healthy shards' structure is untouched by the rebuild.
    let structure_before = fleet.shard_structure();
    fleet.rebuild_shard(2).unwrap();
    assert_eq!(fleet.shard_structure(), structure_before);
    assert!(fleet.health().is_ready());
    let got = fleet.infer(&request).unwrap();
    assert_eq!(got.output, want.output);
    assert_eq!(got.report, want_report);
}

/// A clone is an independent fleet: a shard dying in one never fails
/// requests in the other.
#[test]
fn clones_have_independent_health() {
    let guard = FailGuard::setup();
    let (graph, model, weights, x) = setup(24);
    let reference = single(&graph, &model, &weights);
    let fleet = ShardedEngine::from_engine(&reference, 2).unwrap();
    let clone = fleet.clone();
    let request = InferenceRequest::new(x);

    guard.cfg("shard::run_layer", "nth(1):panic").unwrap();
    assert!(fleet.infer(&request).is_err());
    guard.remove("shard::run_layer");
    assert_eq!(fleet.down_shards(), vec![0]);

    assert!(clone.down_shards().is_empty(), "clone must not inherit the failure");
    let got = clone.infer(&request).unwrap();
    assert_eq!(got.output, reference.infer(&request).unwrap().output);
}

/// The advertised failpoint list matches reality.
#[test]
fn advertised_failpoints_actually_fire() {
    let guard = FailGuard::setup();
    let (graph, model, weights, x) = setup(25);
    let reference = single(&graph, &model, &weights);
    let mut fleet = ShardedEngine::from_engine(&reference, 2).unwrap();
    for &point in igcn_shard::FAILPOINTS {
        guard.cfg(point, "panic").unwrap();
    }
    assert!(fleet.infer(&InferenceRequest::new(x)).is_err());
    for &point in igcn_shard::FAILPOINTS {
        assert!(igcn_fail::fired(point) > 0, "{point} never fired");
        guard.remove(point);
    }
    fleet.heal().unwrap();
    assert!(fleet.health().is_ready());
}
