//! Typed errors of the sharded serving subsystem.

use std::error::Error;
use std::fmt;

use igcn_core::CoreError;
use igcn_graph::GraphError;
use igcn_store::StoreError;

/// Errors of shard construction, manifest-driven fleet boot, and
/// sharded execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShardError {
    /// An engine-level failure (structural validation, update
    /// rejection, shape mismatch).
    Core(CoreError),
    /// A persistence failure (snapshot or manifest I/O, checksum,
    /// decode).
    Store(StoreError),
    /// A graph-level failure while assembling a shard subgraph.
    Graph(GraphError),
    /// The requested shard count cannot be honored (zero shards).
    InvalidShardCount {
        /// The requested number of shards.
        requested: usize,
    },
    /// A shard's subgraph cannot host an engine (for example a shard of
    /// isolated singleton islands with no edges at all) — lower the
    /// shard count.
    ShardUnservable {
        /// Index of the offending shard.
        shard: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A manifest and the snapshots it references disagree (island
    /// counts, hub maps, node maps) — the fleet cannot be assembled.
    ManifestMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A shard's execution panicked mid-request (contained at the
    /// fan-out seam) or the shard was already marked down by an earlier
    /// failure. The fleet serves degraded — requests fail fast with
    /// this error — until [`ShardedEngine::heal`] rebuilds the dead
    /// shard.
    ///
    /// [`ShardedEngine::heal`]: crate::ShardedEngine::heal
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// The contained panic message, or why the shard is down.
        detail: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Core(e) => write!(f, "shard engine error: {e}"),
            ShardError::Store(e) => write!(f, "shard persistence error: {e}"),
            ShardError::Graph(e) => write!(f, "shard subgraph error: {e}"),
            ShardError::InvalidShardCount { requested } => {
                write!(f, "invalid shard count {requested} (need at least 1)")
            }
            ShardError::ShardUnservable { shard, detail } => {
                write!(f, "shard {shard} cannot host an engine: {detail}")
            }
            ShardError::ManifestMismatch { detail } => {
                write!(f, "manifest does not match its snapshots: {detail}")
            }
            ShardError::ShardFailed { shard, detail } => {
                write!(f, "shard {shard} failed: {detail}")
            }
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Core(e) => Some(e),
            ShardError::Store(e) => Some(e),
            ShardError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ShardError {
    fn from(e: CoreError) -> Self {
        ShardError::Core(e)
    }
}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> Self {
        ShardError::Store(e)
    }
}

impl From<GraphError> for ShardError {
    fn from(e: GraphError) -> Self {
        ShardError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ShardError::InvalidShardCount { requested: 0 };
        assert!(e.to_string().contains("shard count 0"));
        let e = ShardError::ManifestMismatch { detail: "boom".to_string() };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardError>();
    }
}
