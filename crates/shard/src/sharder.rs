//! Island-aware shard assignment.
//!
//! Islandization already did the hard part of partitioning: islands are
//! *closed* — an island node's neighbors are in-island or hubs — so the
//! only structure a shard cut can sever is hub adjacency. The sharder
//! therefore assigns **whole islands** to shards and replicates each
//! shard's contacted hubs into it as the halo; the objective is to
//! minimise that replication (equivalently, the hub-side edge cut)
//! while keeping per-shard work balanced.
//!
//! The algorithm is a deterministic greedy pass in the spirit of
//! communication-aware multi-unit GCN partitioning (COIN, Mandal et
//! al. 2022): islands in descending work-estimate order, each placed on
//! the shard sharing the most contact hubs with it (ties: least loaded,
//! then lowest index), under a load cap that keeps the heaviest shard
//! within a constant factor of the mean.

use igcn_core::{IslandPartition, IslandSchedule};

/// Load-balance slack of the greedy pass: a shard may exceed the ideal
/// mean load by this factor before hub affinity stops being allowed to
/// pile more islands onto it.
const BALANCE_SLACK: f64 = 1.15;

/// The outcome of island→shard assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Global island indices per shard, ascending within each shard
    /// (i.e. in global schedule order restricted to the shard).
    pub shards: Vec<Vec<u32>>,
    /// `island_shard[island] = shard`.
    pub island_shard: Vec<u32>,
}

impl ShardAssignment {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Assigns every island of `partition` (in layout ID space: hubs are
/// `0..H`) to one of `num_shards` shards.
///
/// `prefer[island]`, when given, names the shard the island should stay
/// on if the load cap allows — the affinity hook `apply_update` uses to
/// keep undisturbed islands on their current shard so a structural
/// update only moves data for the disturbed region.
///
/// # Panics
///
/// Panics if `num_shards == 0` or greater than the island count, or if
/// `prefer` is non-empty and not one entry per island (callers validate
/// first).
pub fn assign_islands(
    partition: &IslandPartition,
    schedule: &IslandSchedule,
    num_shards: usize,
    prefer: Option<&[Option<u32>]>,
) -> ShardAssignment {
    let num_islands = partition.num_islands();
    assert!(num_shards >= 1, "need at least one shard");
    assert!(num_shards <= num_islands, "more shards than islands");
    if let Some(p) = prefer {
        assert_eq!(p.len(), num_islands, "one preference entry per island");
    }
    let work = schedule.work();
    let total_work: u64 = work.iter().sum();
    let cap = ((total_work as f64 / num_shards as f64) * BALANCE_SLACK).ceil() as u64;
    let num_hubs = partition.num_hubs();

    // Islands in descending work, ties by ascending index (stable).
    let mut order: Vec<u32> = (0..num_islands as u32).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(work[i as usize]), i));

    let mut load = vec![0u64; num_shards];
    let mut hub_present = vec![false; num_shards * num_hubs];
    let mut island_shard = vec![u32::MAX; num_islands];
    let mut shards: Vec<Vec<u32>> = vec![Vec::new(); num_shards];

    for &idx in &order {
        let isl = &partition.islands()[idx as usize];
        let w = work[idx as usize];
        let pick = |s: usize| -> (usize, u64) {
            let overlap =
                isl.hubs.iter().filter(|&&h| hub_present[s * num_hubs + h as usize]).count();
            (overlap, load[s])
        };
        // Honor the affinity preference when it fits under the cap.
        let preferred = prefer
            .and_then(|p| p[idx as usize])
            .map(|s| s as usize)
            .filter(|&s| s < num_shards && load[s] + w <= cap);
        let chosen = preferred.unwrap_or_else(|| {
            let mut best: Option<(usize, usize, u64)> = None; // (shard, overlap, load)
            for s in 0..num_shards {
                if load[s] + w > cap && load.iter().any(|&l| l + w <= cap) {
                    continue; // respect the cap while any shard still fits
                }
                let (overlap, l) = pick(s);
                let better = match best {
                    None => true,
                    Some((_, bo, bl)) => overlap > bo || (overlap == bo && l < bl),
                };
                if better {
                    best = Some((s, overlap, l));
                }
            }
            // invariant: `num_shards >= 1` and the cap-respecting skip
            // only fires while some other shard still fits, so at least
            // one candidate always survives the loop.
            best.expect("at least one shard considered").0
        });
        island_shard[idx as usize] = chosen as u32;
        load[chosen] += w;
        for &h in &isl.hubs {
            hub_present[chosen * num_hubs + h as usize] = true;
        }
        shards[chosen].push(idx);
    }

    // No shard may end up empty (each shard must host an engine): move
    // the lightest island off the shard with the most islands.
    while let Some(empty) = shards.iter().position(Vec::is_empty) {
        // invariant: callers clamp `num_shards <= num_islands`, so while
        // any shard is empty some other shard holds >= 2 islands.
        let donor = (0..num_shards)
            .filter(|&s| shards[s].len() > 1)
            .max_by_key(|&s| (shards[s].len(), std::cmp::Reverse(s)))
            .expect("num_shards <= num_islands guarantees a donor");
        // invariant: the donor was selected for len() > 1 just above.
        let (pos, &lightest) = shards[donor]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| (work[i as usize], i))
            .expect("donor has islands");
        shards[donor].remove(pos);
        shards[empty].push(lightest);
        island_shard[lightest as usize] = empty as u32;
        load[donor] -= work[lightest as usize];
        load[empty] += work[lightest as usize];
    }

    for s in &mut shards {
        s.sort_unstable();
    }
    ShardAssignment { shards, island_shard }
}

/// Per-shard structural summary of one assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Islands owned.
    pub islands: usize,
    /// Island nodes owned.
    pub nodes: usize,
    /// Hubs replicated into the shard (the halo rows).
    pub replicated_hubs: usize,
    /// Schedule work units owned.
    pub work: u64,
}

/// Cut and replication metrics of one assignment — the honest
/// communication-cost story `shard_tool bench` records (distinct from
/// the bit-identical `ExecStats`, which describe the *logical*
/// single-engine computation).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingReport {
    /// Per-shard summaries.
    pub per_shard: Vec<ShardSummary>,
    /// Global hub count.
    pub total_hubs: usize,
    /// Total replicated hub rows across shards (`Σ |halo_s|`).
    pub replicated_hub_slots: usize,
    /// `replicated_hub_slots / total_hubs`. 1.0 means every hub lives
    /// on exactly one shard; above 1.0 is genuine replication; below
    /// 1.0 is possible when some hubs have only hub–hub edges and are
    /// contacted by no island (they live on the coordinator alone).
    pub replication_factor: f64,
    /// Undirected edges whose endpoints live on different shards, with
    /// each hub homed on the shard holding most of its island contacts
    /// (inter-hub edges cut when their homes differ).
    pub cut_edges: u64,
    /// Total undirected loop-free edges.
    pub total_undirected_edges: u64,
    /// `cut_edges / total_undirected_edges`.
    pub cut_fraction: f64,
}

/// Computes the [`ShardingReport`] of `assignment` over the layout
/// partition (`graph` is the layout-order graph the partition belongs
/// to).
pub fn sharding_report(
    graph: &igcn_graph::CsrGraph,
    partition: &IslandPartition,
    schedule: &IslandSchedule,
    assignment: &ShardAssignment,
) -> ShardingReport {
    let num_shards = assignment.num_shards();
    let num_hubs = partition.num_hubs();

    // Island↔hub undirected contact-edge counts per (hub, shard).
    let mut contacts = vec![0u64; num_hubs * num_shards];
    let mut per_shard: Vec<ShardSummary> = (0..num_shards)
        .map(|_| ShardSummary { islands: 0, nodes: 0, replicated_hubs: 0, work: 0 })
        .collect();
    let mut halo = vec![false; num_hubs * num_shards];
    for (idx, isl) in partition.islands().iter().enumerate() {
        let s = assignment.island_shard[idx] as usize;
        per_shard[s].islands += 1;
        per_shard[s].nodes += isl.nodes.len();
        per_shard[s].work += schedule.work()[idx];
        for &h in &isl.hubs {
            halo[h as usize * num_shards + s] = true;
        }
        for &v in &isl.nodes {
            for &nb in graph.neighbors(igcn_graph::NodeId::new(v)) {
                if (nb as usize) < num_hubs {
                    contacts[nb as usize * num_shards + s] += 1;
                }
            }
        }
    }
    for h in 0..num_hubs {
        for s in 0..num_shards {
            if halo[h * num_shards + s] {
                per_shard[s].replicated_hubs += 1;
            }
        }
    }

    // Home shard of each hub: most contact edges, ties → lowest shard.
    let home: Vec<usize> = (0..num_hubs)
        .map(|h| {
            // invariant: `num_shards >= 1`, so the range is non-empty.
            (0..num_shards)
                .max_by_key(|&s| (contacts[h * num_shards + s], std::cmp::Reverse(s)))
                .expect("at least one shard")
        })
        .collect();

    // Cut: island–hub contact edges whose island shard != hub home,
    // plus inter-hub edges whose homes differ.
    let mut cut = 0u64;
    for h in 0..num_hubs {
        for s in 0..num_shards {
            if s != home[h] {
                cut += contacts[h * num_shards + s];
            }
        }
    }
    for &(a, b) in partition.inter_hub_edges() {
        if home[a as usize] != home[b as usize] {
            cut += 1;
        }
    }

    let total_undirected_edges = (graph.iter_edges().filter(|(u, v)| u != v).count() / 2) as u64;
    let replicated_hub_slots: usize = per_shard.iter().map(|s| s.replicated_hubs).sum();
    ShardingReport {
        per_shard,
        total_hubs: num_hubs,
        replicated_hub_slots,
        replication_factor: if num_hubs == 0 {
            1.0
        } else {
            replicated_hub_slots as f64 / num_hubs as f64
        },
        cut_edges: cut,
        total_undirected_edges,
        cut_fraction: if total_undirected_edges == 0 {
            0.0
        } else {
            cut as f64 / total_undirected_edges as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igcn_core::{islandize, ConsumerConfig, IslandLayout, IslandizationConfig};
    use igcn_graph::generate::HubIslandConfig;

    fn layout() -> IslandLayout {
        let g = HubIslandConfig::new(400, 16).noise_fraction(0.02).generate(13);
        let p = islandize(&g.graph, &IslandizationConfig::default());
        IslandLayout::new(&g.graph, &p, ConsumerConfig::default().num_pes)
    }

    #[test]
    fn every_island_assigned_exactly_once() {
        let layout = layout();
        for k in [1, 2, 4, 7] {
            let a = assign_islands(layout.partition(), layout.schedule(), k, None);
            assert_eq!(a.num_shards(), k);
            let mut seen = vec![false; layout.partition().num_islands()];
            for (s, islands) in a.shards.iter().enumerate() {
                assert!(!islands.is_empty(), "shard {s} is empty at k={k}");
                for &i in islands {
                    assert!(!seen[i as usize], "island {i} assigned twice");
                    seen[i as usize] = true;
                    assert_eq!(a.island_shard[i as usize], s as u32);
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn assignment_is_deterministic_and_roughly_balanced() {
        let layout = layout();
        let a = assign_islands(layout.partition(), layout.schedule(), 4, None);
        let b = assign_islands(layout.partition(), layout.schedule(), 4, None);
        assert_eq!(a, b);
        let work = layout.schedule().work();
        let loads: Vec<u64> = a
            .shards
            .iter()
            .map(|islands| islands.iter().map(|&i| work[i as usize]).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        let max = *loads.iter().max().unwrap();
        assert!((max as f64) < (total as f64 / 4.0) * 1.6, "load imbalance: {loads:?}");
    }

    #[test]
    fn affinity_preference_is_honored_when_feasible() {
        let layout = layout();
        let base = assign_islands(layout.partition(), layout.schedule(), 3, None);
        let prefer: Vec<Option<u32>> = base.island_shard.iter().map(|&s| Some(s)).collect();
        let again = assign_islands(layout.partition(), layout.schedule(), 3, Some(&prefer));
        // A feasible full preference reproduces the assignment.
        assert_eq!(again.island_shard, base.island_shard);
    }

    #[test]
    fn report_counts_are_consistent() {
        let layout = layout();
        let a = assign_islands(layout.partition(), layout.schedule(), 3, None);
        let r = sharding_report(layout.graph(), layout.partition(), layout.schedule(), &a);
        assert_eq!(r.per_shard.len(), 3);
        let nodes: usize = r.per_shard.iter().map(|s| s.nodes).sum();
        assert_eq!(nodes, layout.partition().num_island_nodes());
        assert!(r.replication_factor > 0.0);
        assert!(
            r.replicated_hub_slots >= r.per_shard.iter().map(|s| s.replicated_hubs).max().unwrap()
        );
        assert!(r.cut_edges <= r.total_undirected_edges);
        // One shard: nothing is cut, nothing is replicated twice.
        let one = assign_islands(layout.partition(), layout.schedule(), 1, None);
        let r1 = sharding_report(layout.graph(), layout.partition(), layout.schedule(), &one);
        assert_eq!(r1.cut_edges, 0);
        assert!(r1.replication_factor <= 1.0);
    }
}
