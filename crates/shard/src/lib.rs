//! # igcn-shard — partitioned multi-engine serving
//!
//! Graphs that exceed one engine's memory shard along the structure
//! islandization already discovered: **whole islands** go to shards,
//! **hubs replicate** into every shard that contacts them (the halo),
//! and the only cross-shard traffic is hub state — exactly the rows
//! the paper's DHUB-PRC already treats as shared. The subsystem:
//!
//! * [`sharder`] — deterministic island→shard assignment minimising
//!   hub replication (the edge cut) under a work-balance cap, plus the
//!   [`ShardingReport`] cut/replication metrics;
//! * [`ShardedEngine`] — K per-shard [`IGcnEngine`]s behind the full
//!   [`Accelerator`] trait, with a deterministic per-layer **halo
//!   exchange** (hub XW broadcast → shard-local islands → global
//!   schedule-order merge) whose outputs and `ExecStats` are
//!   **bit-identical** to a single engine at every shard count and
//!   thread count; [`ShardedEngine::apply_update`] routes structural
//!   changes to the owning shards with an affinity pass that keeps
//!   undisturbed islands in place;
//! * persistence — [`ShardedEngine::save_manifest`] writes one
//!   standard snapshot per shard plus a checksummed
//!   [`ShardManifest`](igcn_store::ShardManifest), and
//!   [`ShardedEngine::from_manifest`] cold-starts the whole fleet with
//!   no locator pass anywhere.
//!
//! [`IGcnEngine`]: igcn_core::IGcnEngine
//! [`Accelerator`]: igcn_core::Accelerator
//! [`ShardingReport`]: sharder::ShardingReport
//!
//! # Why bit-identity is possible
//!
//! The single engine is already deterministic at every thread count
//! because its parallel path computes per-island results purely and
//! merges hub-shared state sequentially in schedule order. Sharding
//! reuses that exact seam: a shard's local IDs are *order-isomorphic*
//! to the global layout IDs (hubs keep their global detection order,
//! islands keep their schedule order), so every local accumulation
//! happens in the same order as in the single engine; the coordinator
//! then replays the exported hub contributions in the same global
//! schedule order the single engine uses. No floating-point operation
//! is reordered — the fleet is a distributed execution of the *same*
//! computation DAG.

pub mod engine;
pub mod error;
pub mod sharder;

pub use engine::{Shard, ShardHealth, ShardStructure, ShardUpdateReport, ShardedEngine};
pub use error::ShardError;
pub use sharder::{assign_islands, sharding_report, ShardAssignment, ShardingReport};

/// Every failpoint this crate evaluates, for the chaos harness to
/// enumerate. `shard::run_layer` sits inside the per-shard, per-layer
/// execution seam: a `panic` action there simulates a shard dying
/// mid-request and must be contained by the fleet.
pub const FAILPOINTS: &[&str] = &["shard::run_layer"];

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use igcn_core::{Accelerator, ExecConfig, GraphUpdate, IGcnEngine, InferenceRequest};
    use igcn_gnn::{GnnModel, ModelWeights};
    use igcn_graph::generate::HubIslandConfig;
    use igcn_graph::{CsrGraph, NodeId, SparseFeatures};

    const N: usize = 320;
    const DIM: usize = 14;

    fn setup(seed: u64) -> (Arc<CsrGraph>, GnnModel, ModelWeights, SparseFeatures) {
        let g = HubIslandConfig::new(N, 12).noise_fraction(0.03).generate(seed);
        let model = GnnModel::gcn(DIM, 9, 5);
        let weights = ModelWeights::glorot(&model, seed + 1);
        let x = SparseFeatures::random(N, DIM, 0.3, seed + 2);
        (Arc::new(g.graph), model, weights, x)
    }

    fn single(graph: &Arc<CsrGraph>, model: &GnnModel, weights: &ModelWeights) -> IGcnEngine {
        let mut e = IGcnEngine::builder(Arc::clone(graph)).build().unwrap();
        e.prepare(model, weights).unwrap();
        e
    }

    #[test]
    fn sharded_outputs_and_stats_are_bit_identical() {
        let (graph, model, weights, x) = setup(3);
        let reference = single(&graph, &model, &weights);
        let (ref_out, ref_stats) = reference.run(&x, &model, &weights).unwrap();
        for k in [1usize, 2, 4] {
            let sharded = ShardedEngine::from_engine(&reference, k).unwrap();
            assert_eq!(sharded.num_shards(), k);
            let (out, stats) = sharded.run(&x, &model, &weights).unwrap();
            assert_eq!(out, ref_out, "outputs diverged at {k} shards");
            assert_eq!(stats, ref_stats, "stats diverged at {k} shards");
        }
    }

    #[test]
    fn shard_partitions_satisfy_invariants() {
        let (graph, model, weights, _) = setup(5);
        let reference = single(&graph, &model, &weights);
        let sharded = ShardedEngine::from_engine(&reference, 3).unwrap();
        let mut owned_nodes = 0;
        for shard in sharded.shards() {
            shard
                .engine()
                .partition()
                .check_invariants(shard.engine().graph())
                .expect("shard partition invariants");
            owned_nodes += shard.num_owned_nodes();
        }
        assert_eq!(owned_nodes, reference.partition().num_island_nodes());
        let report = sharded.sharding_report();
        assert!(report.replication_factor > 0.0);
        assert!(report.replicated_hub_slots > 0);
        assert!(sharded.halo_bytes_per_inference(&model) > 0);
    }

    #[test]
    fn routed_updates_stay_bit_identical() {
        let (graph, model, weights, _) = setup(7);
        let mut reference = single(&graph, &model, &weights);
        let mut sharded = ShardedEngine::from_engine(&reference, 2).unwrap();

        let n = graph.num_nodes() as u32;
        let hub = reference.partition().hubs()[0];
        let update =
            GraphUpdate::add_edges(vec![(n, hub), (n + 1, n)]).with_num_nodes(n as usize + 2);
        reference.apply_update(update.clone()).unwrap();
        let report = sharded.apply_update(update).unwrap();
        assert_eq!(report.update.num_nodes, n as usize + 2);

        // A removal that dissolves an island, through both paths.
        let island = reference.partition().islands().iter().find(|i| i.len() >= 2).unwrap();
        let a = island.nodes[0];
        let b = *reference
            .graph()
            .neighbors(NodeId::new(a))
            .iter()
            .find(|&&nb| nb != a)
            .expect("island node has a neighbor");
        let removal = GraphUpdate::remove_edges(vec![(a, b)]);
        reference.apply_update(removal.clone()).unwrap();
        sharded.apply_update(removal).unwrap();

        let x = SparseFeatures::random(reference.graph().num_nodes(), DIM, 0.3, 11);
        let (ref_out, ref_stats) = reference.run(&x, &model, &weights).unwrap();
        let (out, stats) = sharded.run(&x, &model, &weights).unwrap();
        assert_eq!(out, ref_out, "post-update outputs diverged");
        assert_eq!(stats, ref_stats, "post-update stats diverged");
    }

    #[test]
    fn infer_batch_fans_out_and_matches_infer() {
        let (graph, model, weights, _) = setup(9);
        let reference = single(&graph, &model, &weights);
        let mut sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        sharded.set_exec_config(ExecConfig::default().with_threads(2));
        let requests: Vec<InferenceRequest> = (0..4)
            .map(|i| InferenceRequest::new(SparseFeatures::random(N, DIM, 0.25, 40 + i)).with_id(i))
            .collect();
        let batched = sharded.infer_batch(&requests).unwrap();
        assert_eq!(batched.len(), 4);
        for (request, response) in requests.iter().zip(&batched) {
            assert_eq!(request.id, response.id);
            let solo = sharded.infer(request).unwrap();
            assert_eq!(solo.output, response.output);
            let expected = reference.infer(request).unwrap();
            assert_eq!(response.output, expected.output, "sharded batch diverged from single");
        }
    }

    #[test]
    fn unprepared_and_bad_shapes_are_errors() {
        let (graph, model, weights, x) = setup(13);
        let reference = single(&graph, &model, &weights);
        let mut sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        // from_engine inherits the prepared model; build an unprepared
        // one from an unprepared source.
        let bare = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
        let unprepared = ShardedEngine::from_engine(&bare, 2).unwrap();
        assert!(matches!(
            unprepared.infer(&InferenceRequest::new(x.clone())),
            Err(igcn_core::CoreError::NotPrepared { .. })
        ));
        sharded.prepare(&model, &weights).unwrap();
        let wrong = InferenceRequest::new(SparseFeatures::random(N / 2, DIM, 0.3, 1));
        assert!(matches!(sharded.infer(&wrong), Err(igcn_core::CoreError::ShapeMismatch { .. })));
        assert!(matches!(
            ShardedEngine::from_engine(&reference, 0),
            Err(ShardError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn manifest_round_trip_cold_starts_the_fleet() {
        let (graph, model, weights, x) = setup(17);
        let reference = single(&graph, &model, &weights);
        let sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        let dir = std::env::temp_dir().join(format!("igcn-shard-test-{}", std::process::id()));
        let manifest_path = sharded.save_manifest(&dir, "fleet").unwrap();

        let booted = ShardedEngine::from_manifest(&manifest_path, ExecConfig::default()).unwrap();
        assert_eq!(booted.num_shards(), 2);
        let request = InferenceRequest::new(x).with_id(5);
        let a = reference.infer(&request).unwrap();
        let b = booted.infer(&request).unwrap();
        assert_eq!(a.output, b.output, "fleet cold-start diverged from single engine");
        assert_eq!(b.id, 5);

        // Tampering with a shard snapshot breaks the checksum pairing.
        let shard0 = dir.join("fleet.shard0.snap");
        let mut bytes = std::fs::read(&shard0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&shard0, &bytes).unwrap();
        assert!(ShardedEngine::from_manifest(&manifest_path, ExecConfig::default()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pooled_states_are_reused_and_stay_bit_identical() {
        let (graph, model, weights, x) = setup(21);
        let reference = single(&graph, &model, &weights);
        let sharded = ShardedEngine::from_engine(&reference, 3).unwrap();
        assert_eq!(sharded.pooled_state_sets(), 0);

        let expected = reference.infer(&InferenceRequest::new(x.clone()).with_id(0)).unwrap();
        let first = sharded.infer(&InferenceRequest::new(x.clone()).with_id(0)).unwrap();
        assert_eq!(first.output, expected.output);
        assert_eq!(sharded.pooled_state_sets(), 1, "the state set returns to the pool");

        // The second request reuses the pooled set (still one set idle
        // afterwards, none leaked) and stays bit-identical — including
        // with *different* features, which stress the re-gather.
        let second = sharded.infer(&InferenceRequest::new(x.clone()).with_id(1)).unwrap();
        assert_eq!(second.output, expected.output, "pooled re-run diverged");
        assert_eq!(sharded.pooled_state_sets(), 1);

        let y = SparseFeatures::random(N, DIM, 0.35, 99);
        let expected_y = reference.infer(&InferenceRequest::new(y.clone())).unwrap();
        let got_y = sharded.infer(&InferenceRequest::new(y)).unwrap();
        assert_eq!(got_y.output, expected_y.output, "pooled run with new features diverged");
        assert_eq!(sharded.pooled_state_sets(), 1);
    }

    #[test]
    fn update_commit_clears_the_state_pool_and_reports_structure() {
        let (graph, model, weights, x) = setup(23);
        let reference = single(&graph, &model, &weights);
        let mut sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        sharded.infer(&InferenceRequest::new(x)).unwrap();
        assert_eq!(sharded.pooled_state_sets(), 1);

        let n = graph.num_nodes() as u32;
        let hub = reference.partition().hubs()[0];
        let update = GraphUpdate::add_edges(vec![(n, hub)]).with_num_nodes(n as usize + 1);
        let report = sharded.apply_update(update).unwrap();
        assert_eq!(sharded.pooled_state_sets(), 0, "commit must drop pooled capacity");

        // The per-shard structural stats line up with the live fleet
        // and partition the owned node set exactly.
        assert_eq!(report.shard_structure, sharded.shard_structure());
        assert_eq!(report.shard_structure.len(), sharded.num_shards());
        let owned: usize = report.shard_structure.iter().map(|s| s.owned_nodes).sum();
        assert_eq!(owned, sharded.partition().num_island_nodes());
        let lp = sharded.layout().partition();
        for (shard, s) in sharded.shards().iter().zip(&report.shard_structure) {
            assert_eq!(s.islands, shard.islands().len());
            assert_eq!(s.halo_hubs, shard.num_hubs());
            let expected_slots: usize =
                shard.islands().iter().map(|&gi| lp.islands()[gi as usize].hubs.len()).sum();
            assert_eq!(s.contrib_slots, expected_slots);
        }
    }

    #[test]
    fn shard_reports_expose_the_replication_overhead() {
        let (graph, model, weights, x) = setup(25);
        let reference = single(&graph, &model, &weights);
        let request = InferenceRequest::new(x);

        let fleet = ShardedEngine::from_engine(&reference, 3).unwrap();
        let per_shard = fleet.shard_reports(&request).unwrap();
        assert_eq!(per_shard.len(), fleet.num_shards());
        for stats in &per_shard {
            assert!(stats.total_scalar_ops() > 0, "every shard does real work");
        }

        // Replicated hubs (hubs contacted from more than one shard)
        // recompute their XW rows once per contacting shard, so total
        // fleet *combination* work strictly exceeds the same fleet
        // collapsed to one shard, where every contacted hub exists
        // exactly once. (Total ops are not comparable — aggregation
        // pruning sees different windows — but combination work counts
        // rows, and replication adds rows.)
        assert!(fleet.sharding_report().replicated_hub_slots > 0, "the cut replicates hubs");
        let solo = ShardedEngine::from_engine(&reference, 1).unwrap();
        let comb = |reports: &[igcn_core::stats::ExecStats]| -> u64 {
            reports.iter().flat_map(|s| s.layers.iter()).map(|l| l.combination_ops.total()).sum()
        };
        let fleet_comb = comb(&per_shard);
        let solo_comb = comb(&solo.shard_reports(&request).unwrap());
        assert!(
            fleet_comb > solo_comb,
            "3-shard combination work {fleet_comb} should exceed 1-shard {solo_comb} by the halo \
             XW recomputes"
        );

        // Unprepared fleets refuse.
        let bare = IGcnEngine::builder(Arc::clone(&graph)).build().unwrap();
        let unprepared = ShardedEngine::from_engine(&bare, 2).unwrap();
        assert!(matches!(
            unprepared.shard_reports(&request),
            Err(igcn_core::CoreError::NotPrepared { .. })
        ));
    }

    #[test]
    fn serving_engine_front_end_serves_a_sharded_fleet() {
        use igcn_serve::{ServingConfig, ServingEngine};
        let (graph, model, weights, _) = setup(19);
        let reference = single(&graph, &model, &weights);
        let sharded = ShardedEngine::from_engine(&reference, 2).unwrap();
        let backend: Arc<dyn Accelerator> = Arc::new(sharded);
        let serving = ServingEngine::start(
            Arc::clone(&backend),
            ServingConfig::default().with_workers(2).with_max_batch(4),
        );
        let tickets: Vec<_> = (0..6u64)
            .map(|i| {
                let request =
                    InferenceRequest::new(SparseFeatures::random(N, DIM, 0.25, 70 + i)).with_id(i);
                let expected = reference.infer(&request).unwrap();
                (serving.submit(request).expect("accepting"), expected)
            })
            .collect();
        for (i, (ticket, expected)) in tickets.into_iter().enumerate() {
            let response = ticket.wait().expect("served");
            assert_eq!(response.id, i as u64);
            assert_eq!(response.output, expected.output, "served shard output diverged");
        }
        serving.shutdown();
    }
}
