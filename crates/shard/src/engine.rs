//! The sharded multi-engine serving front: K per-shard [`IGcnEngine`]s
//! plus a deterministic per-layer halo exchange.
//!
//! # Execution model
//!
//! Each shard owns whole islands and replicates its contacted hubs (the
//! **halo**). Island closure makes island-node rows shard-complete: an
//! island node's neighbors are in-island or hubs, all present locally,
//! and the shard subgraph's local IDs are order-isomorphic to the
//! global layout IDs, so every local accumulation replays the global
//! order. Per layer:
//!
//! 1. the coordinator combines the **hub XW slab** from the merged hub
//!    activations (layer 0: the hubs' feature rows) and broadcasts each
//!    shard its replicated rows — the halo payload;
//! 2. every shard executes its islands locally
//!    ([`hotpath::execute_islands_export`]), producing final activated
//!    island-node rows plus raw per-(island, hub) contributions;
//! 3. the coordinator replays the contributions in **global schedule
//!    order**, then the inter-hub tasks in the layout's legacy replay
//!    order, and finalises hub rows ([`hotpath::HubMergeState`]) — the
//!    exact floating-point accumulation order of a single engine, which
//!    is what makes outputs **bit-identical** at every shard count.
//!
//! `ExecStats` are reported through the canonical accounting pass over
//! the global structures ([`igcn_core::exec::account_partitioned`]) —
//! the same numbers a single engine's `run` produces, because the
//! logical computation is the same; the *communication* story of the
//! cut (replication factor, cut edges, halo bytes) is reported
//! separately by [`crate::sharder::ShardingReport`] and
//! [`ShardedEngine::halo_bytes_per_inference`].
//!
//! [`hotpath::execute_islands_export`]:
//! igcn_core::consumer::hotpath::execute_islands_export
//! [`hotpath::HubMergeState`]: igcn_core::consumer::hotpath::HubMergeState

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use igcn_core::accel::{validate_request, validate_weights, UpdateReport};
use igcn_core::consumer::hotpath::{execute_islands_export, HubMergeState, IslandArena};
use igcn_core::consumer::pe::combine_values_into;
use igcn_core::consumer::LayerInput;
use igcn_core::exec::account_partitioned;
use igcn_core::incremental::apply_update_structural;
use igcn_core::partition::NodeClass;
use igcn_core::stats::{ExecStats, LocatorStats};
use igcn_core::{
    Accelerator, BackendHealth, ConsumerConfig, CoreError, EngineParts, ExecConfig, ExecReport,
    GraphUpdate, IGcnEngine, InferenceRequest, InferenceResponse, Island, IslandLayout,
    IslandPartition, IslandizationConfig,
};
use igcn_gnn::{GnnModel, ModelWeights};
use igcn_graph::{CsrGraph, NodeId, SparseFeatures};
use igcn_linalg::{DenseMatrix, GcnNormalization};
use igcn_store::{ManifestEntry, ShardEntry, ShardManifest, Snapshot, StoreError};
use threadpool::ThreadPool;

use crate::error::ShardError;
use crate::sharder::{assign_islands, sharding_report, ShardAssignment, ShardingReport};

/// One shard: a complete [`IGcnEngine`] over the shard's subgraph
/// (owned islands + replicated contact hubs) plus the ID maps that tie
/// it back to the global graph.
#[derive(Debug, Clone)]
pub struct Shard {
    engine: IGcnEngine,
    /// Global island indices owned, in local island order (ascending).
    islands: Vec<u32>,
    /// Local hub ID → global layout hub ID (`0..H`), ascending — the
    /// halo map.
    hub_global: Vec<u32>,
    /// Local node ID → global layout node ID.
    local_to_layout: Vec<u32>,
    /// Local node ID → *original* global node ID (the feature-gather
    /// map).
    gather_original: Vec<u32>,
    /// Prefix sums of per-island contacted-hub counts (the layout of
    /// the exported contribution slab).
    island_hub_offsets: Vec<usize>,
}

impl Shard {
    /// The shard's engine — a full, independently servable
    /// [`IGcnEngine`] over the local subgraph (what a fleet node runs,
    /// and what the per-shard snapshot captures).
    pub fn engine(&self) -> &IGcnEngine {
        &self.engine
    }

    /// Global island indices owned by this shard.
    pub fn islands(&self) -> &[u32] {
        &self.islands
    }

    /// Replicated hub count (halo rows).
    pub fn num_hubs(&self) -> usize {
        self.hub_global.len()
    }

    /// Local node count (halo hubs + owned island nodes).
    pub fn num_nodes(&self) -> usize {
        self.gather_original.len()
    }

    /// Owned island-node count (excludes the replicated halo).
    pub fn num_owned_nodes(&self) -> usize {
        self.num_nodes() - self.num_hubs()
    }

    /// Local node ID → original global node ID: the map that gathers a
    /// global feature matrix down to this shard's rows (halo hubs
    /// first, then owned island nodes in schedule order).
    pub fn gather_original(&self) -> &[u32] {
        &self.gather_original
    }

    /// Exported contribution slots (one per island×contacted-hub pair)
    /// — the shard's per-layer upstream halo traffic in rows.
    fn contrib_slots(&self) -> usize {
        // invariant: the offsets vector is built starting from a single 0
        // entry, so `last()` always exists.
        *self.island_hub_offsets.last().expect("offsets have a final entry")
    }
}

/// Cached per-model execution state installed by `prepare`.
#[derive(Debug, Clone)]
struct Prepared {
    model: GnnModel,
    weights: ModelWeights,
    /// Global normalisation in layout-ID order (hub `h` is node `h`).
    norm: GcnNormalization,
    /// Per-shard normalisations: global-degree scales gathered to local
    /// IDs (a shard must never recompute scales from its subgraph — the
    /// halo truncates replicated-hub degrees).
    shard_norms: Vec<GcnNormalization>,
}

/// Outcome of routing a [`GraphUpdate`] through a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ShardUpdateReport {
    /// The engine-level restructuring outcome.
    pub update: UpdateReport,
    /// Shards whose *owned island-node set* changed — the shards the
    /// update was routed to (plus receivers of migrated islands). Every
    /// shard additionally gets its halo refreshed.
    pub resharded: Vec<usize>,
    /// Islands placed on a different shard than their affinity
    /// preference (0 when the disturbed region re-formed in place).
    pub moved_islands: usize,
    /// Post-commit structural stats per shard, in shard-index order.
    pub shard_structure: Vec<ShardStructure>,
}

/// Structural shape of one shard after (re)assembly — what it owns,
/// what it replicates, and what it exports per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStructure {
    /// Owned (whole) islands.
    pub islands: usize,
    /// Owned island nodes — excludes the replicated halo.
    pub owned_nodes: usize,
    /// Replicated halo hubs: each one's XW row is recomputed (or, on a
    /// real fleet, received) locally every layer.
    pub halo_hubs: usize,
    /// Exported per-(island, hub) contribution slots — the shard's
    /// upstream halo rows per layer.
    pub contrib_slots: usize,
}

/// Per-request, per-shard scratch of the layer driver.
struct ShardRunState {
    /// Request features gathered to local IDs (halo hub rows first).
    gathered: SparseFeatures,
    /// Previous layer's local activations (island rows valid).
    ping: DenseMatrix,
    /// Current layer's local activations.
    pong: DenseMatrix,
    /// Exported hub contributions of the current layer.
    contrib: Vec<f32>,
    /// This shard's halo slice of the hub XW slab.
    hub_y: Vec<f32>,
    arena: IslandArena,
}

impl ShardRunState {
    fn empty() -> ShardRunState {
        ShardRunState {
            // invariant: the 0×0 CSR with offsets [0] is structurally
            // valid by construction; `from_raw_parts` cannot reject it.
            gathered: SparseFeatures::from_raw_parts(0, 0, vec![0], Vec::new(), Vec::new())
                .expect("empty features are well-formed"),
            ping: DenseMatrix::zeros(0, 0),
            pong: DenseMatrix::zeros(0, 0),
            contrib: Vec::new(),
            hub_y: Vec::new(),
            arena: IslandArena::new(),
        }
    }
}

/// At most this many per-request state sets are pooled; concurrent
/// requests beyond the cap allocate fresh and are dropped on return.
const SHARD_STATE_POOL_CAP: usize = 8;

/// Pools complete per-request shard-state sets (one [`ShardRunState`]
/// per shard) so steady-state serving reallocates nothing per inference
/// — the fleet counterpart of the single engine's `ScratchPool`. The
/// driver re-gathers `gathered` and resizes every buffer in place each
/// request, so pooled capacity is shape-agnostic; the pool is still
/// cleared at every [`ShardedEngine::apply_update`] commit so stale
/// capacity does not outlive a resharding. Shared (`Arc`) across engine
/// clones, like the thread pool.
struct ShardStatePool {
    // invariant: this lock is only ever held across plain Vec
    // operations (no user code, no panics mid-critical-section), so it
    // cannot be poisoned; the `expect`s below document that rather than
    // guard a reachable failure.
    sets: Mutex<Vec<Vec<ShardRunState>>>,
}

impl ShardStatePool {
    fn new() -> ShardStatePool {
        ShardStatePool { sets: Mutex::new(Vec::new()) }
    }

    /// Takes a pooled set matching the fleet width, if any.
    fn take(&self, num_shards: usize) -> Option<Vec<ShardRunState>> {
        let mut sets = self.sets.lock().expect("shard state pool lock");
        let at = sets.iter().position(|set| set.len() == num_shards)?;
        Some(sets.swap_remove(at))
    }

    fn put(&self, set: Vec<ShardRunState>) {
        let mut sets = self.sets.lock().expect("shard state pool lock");
        if sets.len() < SHARD_STATE_POOL_CAP {
            sets.push(set);
        }
    }

    fn clear(&self) {
        self.sets.lock().expect("shard state pool lock").clear();
    }

    #[cfg(test)]
    fn pooled(&self) -> usize {
        self.sets.lock().expect("shard state pool lock").len()
    }
}

impl std::fmt::Debug for ShardStatePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pooled = self.sets.lock().map(|s| s.len()).unwrap_or(0);
        f.debug_struct("ShardStatePool").field("pooled_sets", &pooled).finish()
    }
}

/// Live status of one shard, as reported by
/// [`ShardedEngine::shard_health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard serves.
    Up,
    /// The shard's execution panicked mid-request and was contained;
    /// the fleet fails fast with [`ShardError::ShardFailed`] until
    /// [`ShardedEngine::heal`] rebuilds it.
    Down {
        /// The contained panic message.
        detail: String,
    },
}

/// Shared per-shard health: written from worker threads when a panic is
/// contained at the fan-out seam, read on every request as a fail-fast
/// gate. The `any_down` flag keeps the healthy hot path to one relaxed
/// atomic load.
#[derive(Debug)]
struct HealthBoard {
    any_down: AtomicBool,
    status: Mutex<Vec<ShardHealth>>,
}

impl HealthBoard {
    fn new(num_shards: usize) -> HealthBoard {
        HealthBoard {
            any_down: AtomicBool::new(false),
            status: Mutex::new(vec![ShardHealth::Up; num_shards]),
        }
    }

    /// The board never holds its lock across a panic, but a worker
    /// thread aborting between lock and unlock would poison it; health
    /// reporting must survive that, so recover the data either way.
    fn lock(&self) -> MutexGuard<'_, Vec<ShardHealth>> {
        self.status.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn mark_down(&self, shard: usize, detail: &str) {
        self.lock()[shard] = ShardHealth::Down { detail: detail.to_string() };
        self.any_down.store(true, Ordering::Release);
    }

    fn mark_up(&self, shard: usize) {
        let mut status = self.lock();
        status[shard] = ShardHealth::Up;
        let all_up = status.iter().all(|s| *s == ShardHealth::Up);
        if all_up {
            self.any_down.store(false, Ordering::Release);
        }
    }

    fn reset(&self, num_shards: usize) {
        *self.lock() = vec![ShardHealth::Up; num_shards];
        self.any_down.store(false, Ordering::Release);
    }

    fn any_down(&self) -> bool {
        self.any_down.load(Ordering::Acquire)
    }

    fn snapshot(&self) -> Vec<ShardHealth> {
        self.lock().clone()
    }

    fn down_shards(&self) -> Vec<usize> {
        self.lock()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, ShardHealth::Down { .. }).then_some(i))
            .collect()
    }

    /// An independent board with the same statuses (for
    /// [`ShardedEngine::clone`] — clones are independent fleets).
    fn duplicate(&self) -> HealthBoard {
        let status = self.snapshot();
        HealthBoard {
            any_down: AtomicBool::new(status.iter().any(|s| matches!(s, ShardHealth::Down { .. }))),
            status: Mutex::new(status),
        }
    }
}

/// Renders a contained panic payload for health reports.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// K engines behind one [`Accelerator`]: island-aware sharding with
/// hubs replicated as the halo, a deterministic per-layer halo
/// exchange, and outputs + `ExecStats` **bit-identical** to a single
/// [`IGcnEngine`] at every shard count and thread count.
///
/// # Example
///
/// ```
/// use igcn_core::{Accelerator, IGcnEngine, InferenceRequest};
/// use igcn_gnn::{GnnModel, ModelWeights};
/// use igcn_graph::generate::HubIslandConfig;
/// use igcn_graph::SparseFeatures;
/// use igcn_shard::ShardedEngine;
///
/// let g = HubIslandConfig::new(300, 12).noise_fraction(0.02).generate(7);
/// let mut single = IGcnEngine::builder(g.graph).build()?;
/// let model = GnnModel::gcn(16, 8, 4);
/// let weights = ModelWeights::glorot(&model, 1);
/// single.prepare(&model, &weights)?;
///
/// let mut sharded = ShardedEngine::from_engine(&single, 2).expect("shardable");
/// sharded.prepare(&model, &weights)?;
///
/// let request = InferenceRequest::new(SparseFeatures::random(300, 16, 0.2, 2));
/// let a = single.infer(&request)?;
/// let b = sharded.infer(&request)?;
/// assert_eq!(a.output, b.output); // bit-identical
/// # Ok::<(), igcn_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    graph: Arc<CsrGraph>,
    partition: IslandPartition,
    locator_stats: LocatorStats,
    layout: Arc<IslandLayout>,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    exec_cfg: ExecConfig,
    shards: Vec<Shard>,
    /// `island_home[global island] = (shard, local island index)`.
    island_home: Vec<(u32, u32)>,
    prepared: Option<Prepared>,
    pool: Option<ThreadPool>,
    state_pool: Arc<ShardStatePool>,
    health: Arc<HealthBoard>,
}

impl Clone for ShardedEngine {
    /// A clone is an independent fleet: it gets its own health board
    /// (copying current statuses) so marking a shard down in one fleet
    /// never fails requests in the other. The state pool is shared — it
    /// is a cache of request-scoped buffers, not fleet state.
    fn clone(&self) -> Self {
        ShardedEngine {
            graph: Arc::clone(&self.graph),
            partition: self.partition.clone(),
            locator_stats: self.locator_stats.clone(),
            layout: Arc::clone(&self.layout),
            island_cfg: self.island_cfg,
            consumer_cfg: self.consumer_cfg,
            exec_cfg: self.exec_cfg,
            shards: self.shards.clone(),
            island_home: self.island_home.clone(),
            prepared: self.prepared.clone(),
            pool: self.pool.clone(),
            state_pool: Arc::clone(&self.state_pool),
            health: Arc::new(self.health.duplicate()),
        }
    }
}

impl ShardedEngine {
    /// Shards a built engine's graph across `num_shards` engines
    /// (clamped to the island count — every shard must own at least one
    /// island). The global islandization is reused, never recomputed;
    /// shard engines are assembled from parts (no locator pass). If the
    /// source engine was [`prepare`]d, the sharded engine (and every
    /// shard engine) comes up prepared too.
    ///
    /// [`prepare`]: Accelerator::prepare
    ///
    /// # Errors
    ///
    /// [`ShardError::InvalidShardCount`] for zero shards,
    /// [`ShardError::ShardUnservable`] when a shard's subgraph cannot
    /// host an engine (lower the shard count), or the underlying
    /// construction failure.
    pub fn from_engine(engine: &IGcnEngine, num_shards: usize) -> Result<Self, ShardError> {
        Self::assemble(
            engine.graph_arc(),
            engine.partition().clone(),
            engine.locator_stats().clone(),
            engine.layout_arc(),
            engine.island_config(),
            engine.consumer_config(),
            engine.exec_config(),
            engine.prepared_model().map(|(m, w)| (m.clone(), w.clone())),
            num_shards,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        graph: Arc<CsrGraph>,
        partition: IslandPartition,
        locator_stats: LocatorStats,
        layout: Arc<IslandLayout>,
        island_cfg: IslandizationConfig,
        consumer_cfg: ConsumerConfig,
        exec_cfg: ExecConfig,
        model: Option<(GnnModel, ModelWeights)>,
        num_shards: usize,
        prefer: Option<&[Option<u32>]>,
    ) -> Result<Self, ShardError> {
        if num_shards == 0 {
            return Err(ShardError::InvalidShardCount { requested: num_shards });
        }
        let (shards, island_home, _) =
            build_fleet_for(&layout, island_cfg, consumer_cfg, num_shards, prefer)?;
        let pool = (exec_cfg.num_threads > 1).then(|| ThreadPool::new(exec_cfg.num_threads));
        let num_shards = shards.len();
        let mut engine = ShardedEngine {
            graph,
            partition,
            locator_stats,
            layout,
            island_cfg,
            consumer_cfg,
            exec_cfg,
            shards,
            island_home,
            prepared: None,
            pool,
            state_pool: Arc::new(ShardStatePool::new()),
            health: Arc::new(HealthBoard::new(num_shards)),
        };
        if let Some((m, w)) = model {
            engine.prepare_internal(&m, &w)?;
        }
        Ok(engine)
    }

    fn prepare_internal(
        &mut self,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> Result<(), CoreError> {
        validate_weights(model, weights)?;
        let norm = model.normalization(self.layout.graph());
        let shard_norms: Vec<GcnNormalization> =
            self.shards.iter().map(|s| norm.gather(&s.local_to_layout)).collect();
        for shard in &mut self.shards {
            shard.engine.prepare(model, weights)?;
        }
        self.prepared =
            Some(Prepared { model: model.clone(), weights: weights.clone(), norm, shard_norms });
        Ok(())
    }

    fn prepared(&self) -> Result<&Prepared, CoreError> {
        self.prepared.as_ref().ok_or_else(|| CoreError::NotPrepared { backend: self.name() })
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Pooled per-request state sets currently idle (test hook).
    #[cfg(test)]
    pub(crate) fn pooled_state_sets(&self) -> usize {
        self.state_pool.pooled()
    }

    /// The shards, in shard-index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The global serving graph (original node IDs).
    pub fn graph_arc(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.graph)
    }

    /// The global islandization partition.
    pub fn partition(&self) -> &IslandPartition {
        &self.partition
    }

    /// The global physical layout the merge plan is derived from.
    pub fn layout(&self) -> &IslandLayout {
        &self.layout
    }

    /// The parallel-execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_cfg
    }

    /// Replaces the parallel-execution configuration (a pure runtime
    /// knob — outputs stay bit-identical at every setting).
    pub fn set_exec_config(&mut self, cfg: ExecConfig) {
        if cfg.num_threads != self.exec_cfg.num_threads {
            self.pool = (cfg.num_threads > 1).then(|| ThreadPool::new(cfg.num_threads));
        }
        self.exec_cfg = cfg;
    }

    /// The current island→shard assignment.
    pub fn assignment(&self) -> ShardAssignment {
        ShardAssignment {
            shards: self.shards.iter().map(|s| s.islands.clone()).collect(),
            island_shard: self.island_home.iter().map(|&(s, _)| s).collect(),
        }
    }

    /// Cut and replication metrics of the current assignment.
    pub fn sharding_report(&self) -> ShardingReport {
        sharding_report(
            self.layout.graph(),
            self.layout.partition(),
            self.layout.schedule(),
            &self.assignment(),
        )
    }

    /// Bytes moved by the halo exchange for one inference of `model`:
    /// per layer, the broadcast hub XW rows (`Σ_s |halo_s| · width`)
    /// plus the collected per-island hub contributions — the honest
    /// communication cost a real fleet would pay on the wire.
    pub fn halo_bytes_per_inference(&self, model: &GnnModel) -> u64 {
        let broadcast_rows: u64 = self.shards.iter().map(|s| s.num_hubs() as u64).sum();
        let collect_rows: u64 = self.shards.iter().map(|s| s.contrib_slots() as u64).sum();
        model.layers().iter().map(|l| (broadcast_rows + collect_rows) * l.out_dim as u64 * 4).sum()
    }

    fn island_workers(&self) -> usize {
        if self.exec_cfg.num_threads > 1 && self.exec_cfg.parallel_islands {
            self.exec_cfg.num_threads
        } else {
            1
        }
    }

    fn shard_pool(&self) -> Option<&ThreadPool> {
        if self.island_workers() > 1 {
            self.pool.as_ref()
        } else {
            None
        }
    }

    fn check_shapes(&self, features: &SparseFeatures, model: &GnnModel) -> Result<(), CoreError> {
        if features.num_rows() != self.graph.num_nodes() {
            return Err(CoreError::ShapeMismatch {
                what: "feature rows vs graph nodes".to_string(),
                expected: self.graph.num_nodes(),
                got: features.num_rows(),
            });
        }
        let in_dim = model.layers().first().map(|l| l.in_dim).unwrap_or(0);
        if features.num_cols() != in_dim {
            return Err(CoreError::ShapeMismatch {
                what: "feature cols vs model input width".to_string(),
                expected: in_dim,
                got: features.num_cols(),
            });
        }
        Ok(())
    }

    /// The canonical statistics of the logical computation — exactly
    /// what a single engine's `run` reports (its `account` path, pinned
    /// equal by the core tests), with occupancy modelled over this
    /// engine's configured workers.
    fn stats(&self, features: &SparseFeatures, model: &GnnModel) -> ExecStats {
        account_partitioned(
            &self.graph,
            &self.partition,
            &self.locator_stats,
            self.consumer_cfg,
            self.island_workers(),
            // The fleet's shard fan-out always streams f32 features —
            // int8 staging is a single-engine scratch optimisation the
            // halo exchange does not use — so the canonical accounting
            // prices f32 regardless of any `quantized_features` flag in
            // this engine's exec config.
            false,
            features,
            model,
        )
    }

    /// Runs full-model inference across the fleet, returning output
    /// rows in original node IDs and the canonical execution
    /// statistics. Outputs and statistics are bit-identical to
    /// [`IGcnEngine::run`] on the same graph.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShapeMismatch`] if feature or weight shapes do not
    /// match the graph and model; [`CoreError::BackendFailed`] if a
    /// shard panicked mid-request (contained; see
    /// [`ShardedEngine::heal`]).
    pub fn run(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
    ) -> Result<(DenseMatrix, ExecStats), CoreError> {
        self.check_shapes(features, model)?;
        validate_weights(model, weights)?;
        let norm = model.normalization(self.layout.graph());
        let shard_norms: Vec<GcnNormalization> =
            self.shards.iter().map(|s| norm.gather(&s.local_to_layout)).collect();
        let out = self
            .execute(features, model, weights, &norm, &shard_norms, self.shard_pool())
            .map_err(|e| self.failure_to_core(e))?;
        Ok((out, self.stats(features, model)))
    }

    /// Maps an execution-seam failure into the [`Accelerator`]-level
    /// error vocabulary.
    fn failure_to_core(&self, e: ShardError) -> CoreError {
        match e {
            ShardError::ShardFailed { shard, detail } => {
                CoreError::BackendFailed { backend: format!("shard {shard}"), detail }
            }
            // invariant: execute() only fails with ShardFailed; keep
            // the information if that ever changes.
            other => CoreError::BackendFailed { backend: self.name(), detail: other.to_string() },
        }
    }

    /// Per-shard live health, in shard-index order.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.health.snapshot()
    }

    /// Indices of shards currently down, ascending.
    pub fn down_shards(&self) -> Vec<usize> {
        self.health.down_shards()
    }

    /// Rebuilds shard `shard` from the global layout — the same pure
    /// reassembly a fresh fleet construction uses, touching **only**
    /// this shard: healthy shards keep their engines, and the routing
    /// table is unchanged because the island assignment is. The rebuilt
    /// shard is re-prepared with the fleet's model and marked
    /// [`ShardHealth::Up`].
    ///
    /// # Panics
    ///
    /// If `shard` is out of range (caller bug, like slice indexing).
    ///
    /// # Errors
    ///
    /// The construction failures of fleet assembly
    /// ([`ShardError::ShardUnservable`], wrapped core/graph errors). On
    /// error the old shard stays in place and stays down.
    pub fn rebuild_shard(&mut self, shard: usize) -> Result<(), ShardError> {
        assert!(
            shard < self.shards.len(),
            "rebuild_shard({shard}): fleet has {} shards",
            self.shards.len()
        );
        let islands = self.shards[shard].islands.clone();
        let mut rebuilt = build_shard(&self.layout, self.island_cfg, self.consumer_cfg, &islands)
            .map_err(|e| annotate_shard(e, shard))?;
        if let Some(p) = &self.prepared {
            rebuilt.engine.prepare(&p.model, &p.weights)?;
        }
        self.shards[shard] = rebuilt;
        // Pooled state sets may hold buffers sized by the dead shard's
        // torn run; drop them all rather than reason about which are
        // safe.
        self.state_pool.clear();
        self.health.mark_up(shard);
        Ok(())
    }

    /// Rebuilds every [`ShardHealth::Down`] shard
    /// ([`ShardedEngine::rebuild_shard`]) and returns the indices
    /// healed. After a successful heal the fleet serves again and its
    /// outputs are bit-identical to an undamaged fleet — the rebuild
    /// reassembles the exact same shard from the exact same layout.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::rebuild_shard`]; shards healed before the
    /// failing one stay healed.
    pub fn heal(&mut self) -> Result<Vec<usize>, ShardError> {
        let down = self.health.down_shards();
        for &shard in &down {
            self.rebuild_shard(shard)?;
        }
        Ok(down)
    }

    /// The per-layer driver: hub XW broadcast → shard-local islands →
    /// global schedule-order merge → hub finalise.
    ///
    /// Shard execution is the fleet's failure domain: each
    /// `run_shard_layer` call runs under `catch_unwind`, so a panicking
    /// shard (a bug, a poisoned buffer, an injected fault) is contained
    /// at this seam — the shard is marked [`ShardHealth::Down`], the
    /// request fails with [`ShardError::ShardFailed`], and subsequent
    /// requests fail fast on the health gate until
    /// [`ShardedEngine::heal`] rebuilds the dead shard. The torn
    /// per-request state set is discarded (never returned to the pool),
    /// so no later request can observe half-written activations.
    fn execute(
        &self,
        features: &SparseFeatures,
        model: &GnnModel,
        weights: &ModelWeights,
        norm: &GcnNormalization,
        shard_norms: &[GcnNormalization],
        pool: Option<&ThreadPool>,
    ) -> Result<DenseMatrix, ShardError> {
        if self.health.any_down() {
            let down = self.health.down_shards();
            // invariant: any_down implies a non-empty down list — both
            // are written under the board lock.
            let shard = down.first().copied().unwrap_or(0);
            return Err(ShardError::ShardFailed {
                shard,
                detail: format!(
                    "shard(s) {down:?} are down from an earlier contained failure; call heal()"
                ),
            });
        }
        let layout = &*self.layout;
        let num_hubs = layout.num_hubs();
        let lp = layout.partition();
        let n = self.graph.num_nodes();

        // Hub input rows for layer 0, in layout hub order.
        let hub_feats = features.gather_rows(&layout.gather_order()[..num_hubs]);
        let mut hub_acts = DenseMatrix::zeros(0, 0);
        let mut merge = HubMergeState::new();
        // Pooled per-shard states: only `gathered` carries request data
        // into a layer (everything else is cleared or fully overwritten
        // per layer), so re-gathering it is all a reused set needs.
        let mut states: Vec<ShardRunState> = self
            .state_pool
            .take(self.shards.len())
            .unwrap_or_else(|| self.shards.iter().map(|_| ShardRunState::empty()).collect());
        for (shard, st) in self.shards.iter().zip(states.iter_mut()) {
            features.gather_rows_into(&shard.gather_original, &mut st.gathered);
        }

        // Trace-tree parent for this request (NONE on untraced paths:
        // every tree span below is then single-branch inert).
        let trace_parent = igcn_obs::trace::ambient();
        for (li, layer) in model.layers().iter().enumerate() {
            let w = weights.layer(li);
            let width = w.cols();
            merge.begin_layer(num_hubs, width);

            let mut layer_tree =
                igcn_obs::trace::OpenSpan::child(trace_parent, igcn_obs::stage::LAYER_EXECUTE);
            layer_tree.tag("layer", li);
            layer_tree.tag("waves", layout.schedule().num_waves());
            layer_tree.tag("shards", self.shards.len());
            let layer_ctx = layer_tree.ctx();

            // Stage timing only — the halo_exchange span covers the
            // hub slab build plus the shard fan-out (the work that
            // produces each shard's halo contributions), halo_merge
            // the schedule-order collect and hub finalise. Outputs are
            // identical whether telemetry is enabled or not.
            let exchange_span = igcn_obs::Span::enter(igcn_obs::stage::HALO_EXCHANGE);
            let exchange_tree =
                igcn_obs::trace::OpenSpan::child(layer_ctx, igcn_obs::stage::HALO_EXCHANGE);

            // 1. Hub XW slab from the merged hub activations.
            {
                let input = if li == 0 {
                    LayerInput::Sparse(&hub_feats)
                } else {
                    LayerInput::Dense(&hub_acts)
                };
                let y = merge.y_mut();
                for h in 0..num_hubs as u32 {
                    combine_values_into(input, w, norm, h, &mut y[h as usize * width..][..width]);
                }
            }

            // 2. Shard-local island execution (fanned across the pool
            // when one is configured; shard states are disjoint, so the
            // fan-out cannot change any value).
            {
                let hub_slab: &[f32] = merge.y();
                let first_layer = li == 0;
                let activation = layer.activation;
                let consumer_cfg = self.consumer_cfg;
                // Contained shard failures for this layer: (shard,
                // panic message). AssertUnwindSafe is justified because
                // a panicking shard's state set is discarded wholesale
                // below — torn &mut state never escapes.
                let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
                match pool {
                    Some(pool) if self.shards.len() > 1 => {
                        let slots: Vec<Mutex<&mut ShardRunState>> =
                            states.iter_mut().map(Mutex::new).collect();
                        let next = AtomicUsize::new(0);
                        let shards = &self.shards;
                        let failures = &failures;
                        let worker = || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            // invariant: each slot is claimed by exactly
                            // one worker (the fetch_add hands out unique
                            // indices) and shard panics are caught below
                            // *inside* the guard's scope, so the lock is
                            // never contended and never poisoned.
                            let mut st = slots[i].lock().expect("shard slot lock");
                            // Pool threads have no ambient trace; the
                            // layer context crosses by value.
                            let mut shard_span =
                                igcn_obs::trace::OpenSpan::child(layer_ctx, "shard_execute");
                            shard_span.tag("shard", i);
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                run_shard_layer(
                                    &shards[i],
                                    &mut st,
                                    first_layer,
                                    w,
                                    &shard_norms[i],
                                    activation,
                                    hub_slab,
                                    width,
                                    consumer_cfg,
                                );
                            }));
                            if let Err(payload) = outcome {
                                shard_span.tag("panicked", true);
                                failures
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push((i, panic_message(payload)));
                            }
                        };
                        pool.scope(|s| {
                            for _ in 0..(pool.threads() - 1).min(slots.len() - 1) {
                                s.spawn(worker);
                            }
                            worker();
                        });
                    }
                    _ => {
                        for (i, st) in states.iter_mut().enumerate() {
                            let mut shard_span =
                                igcn_obs::trace::OpenSpan::child(layer_ctx, "shard_execute");
                            shard_span.tag("shard", i);
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                run_shard_layer(
                                    &self.shards[i],
                                    st,
                                    first_layer,
                                    w,
                                    &shard_norms[i],
                                    activation,
                                    hub_slab,
                                    width,
                                    consumer_cfg,
                                );
                            }));
                            if let Err(payload) = outcome {
                                shard_span.tag("panicked", true);
                                failures
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push((i, panic_message(payload)));
                            }
                        }
                    }
                }
                let mut failed = failures.into_inner().unwrap_or_else(|p| p.into_inner());
                if !failed.is_empty() {
                    failed.sort_unstable_by_key(|&(i, _)| i);
                    for (i, detail) in &failed {
                        self.health.mark_down(*i, detail);
                        // One count per shard taken down, so recovery
                        // campaigns can reconcile observed Down shards
                        // against contained panics exactly.
                        igcn_obs::counter("shard_contained_panics").inc();
                    }
                    let (shard, detail) = failed.swap_remove(0);
                    // `states` is dropped here, not returned to the
                    // pool: a torn state set must never be reused.
                    return Err(ShardError::ShardFailed { shard, detail });
                }
            }

            drop(exchange_span);
            drop(exchange_tree);
            let _merge_span = igcn_obs::Span::enter(igcn_obs::stage::HALO_MERGE);
            let _merge_tree =
                igcn_obs::trace::OpenSpan::child(layer_ctx, igcn_obs::stage::HALO_MERGE);

            // 3. Halo collect: replay every island's hub contributions
            // in global schedule order, then the inter-hub tasks —
            // exactly the single engine's accumulation order.
            for wave in layout.schedule().waves() {
                for gi in wave {
                    let (s, j) = self.island_home[gi];
                    let shard = &self.shards[s as usize];
                    let st = &states[s as usize];
                    let base = shard.island_hub_offsets[j as usize];
                    for (jj, &h) in lp.islands()[gi].hubs.iter().enumerate() {
                        merge.ensure_partial(h, norm.self_weight());
                        merge.accumulate(h, &st.contrib[(base + jj) * width..][..width]);
                    }
                }
            }
            for (src, dests) in layout.inter_hub_tasks() {
                for &d in dests {
                    merge.ensure_partial(d, norm.self_weight());
                    merge.accumulate_from_y(d, *src);
                }
            }

            // 4. Finalise hub rows — next layer's halo payload.
            hub_acts.resize_in_place(num_hubs, width);
            merge.finalize_into(norm, layer.activation, hub_acts.as_mut_slice());
            for st in &mut states {
                std::mem::swap(&mut st.ping, &mut st.pong);
            }
        }

        // Assemble the response in original node IDs.
        let width = hub_acts.cols().max(states.first().map_or(0, |st| st.ping.cols()));
        let mut out = DenseMatrix::zeros(n, width);
        for h in 0..num_hubs {
            let orig = layout.gather_order()[h] as usize;
            out.row_mut(orig).copy_from_slice(hub_acts.row(h));
        }
        for (shard, st) in self.shards.iter().zip(&states) {
            let hs = shard.num_hubs();
            for l in hs..shard.num_nodes() {
                let orig = shard.gather_original[l] as usize;
                out.row_mut(orig).copy_from_slice(st.ping.row(l));
            }
        }
        self.state_pool.put(states);
        Ok(out)
    }

    /// Routes a structural update through the fleet: the global
    /// partition restructures incrementally (disturbed region only),
    /// islands keep their shard wherever the affinity pass allows, and
    /// the shards whose owned node set changed are rebuilt with a fresh
    /// halo. Subsequent inference is bit-identical to a single engine
    /// over the updated graph.
    ///
    /// # Errors
    ///
    /// As [`IGcnEngine::apply_update`] for the structural part;
    /// [`ShardError::ShardUnservable`] if the new structure cannot be
    /// sharded at the current shard count.
    pub fn apply_update(&mut self, update: GraphUpdate) -> Result<ShardUpdateReport, ShardError> {
        // A degraded fleet must heal before restructuring: the affinity
        // pass votes with current ownership, and resharding around a
        // dead shard would silently launder its Down status.
        if self.health.any_down() {
            let down = self.health.down_shards();
            let shard = down.first().copied().unwrap_or(0);
            return Err(ShardError::ShardFailed {
                shard,
                detail: format!("shard(s) {down:?} are down; call heal() before apply_update"),
            });
        }
        // Stage everything; `self` is only mutated at the commit point
        // below, so a failing update (including an unshardable new
        // structure) leaves the fleet exactly as it was.
        let (new_graph, result) =
            apply_update_structural(&self.graph, &self.partition, &self.island_cfg, &update)?;
        let new_graph = Arc::new(new_graph);
        let new_layout =
            Arc::new(IslandLayout::new(&new_graph, &result.partition, self.consumer_cfg.num_pes));

        // Previous ownership by original node ID (hubs are unowned —
        // they are replicated, not placed).
        let k = self.shards.len();
        let mut node_shard: Vec<u32> = vec![u32::MAX; new_graph.num_nodes()];
        for (s, shard) in self.shards.iter().enumerate() {
            let hs = shard.num_hubs();
            for &orig in &shard.gather_original[hs..] {
                node_shard[orig as usize] = s as u32;
            }
        }

        // Affinity: each island prefers the shard that owned the
        // majority of its (surviving) nodes, so undisturbed islands
        // stay put and only the disturbed region migrates.
        let prefer: Vec<Option<u32>> = result
            .partition
            .islands()
            .iter()
            .map(|isl| {
                let mut votes = vec![0usize; k];
                for &v in &isl.nodes {
                    let s = node_shard[v as usize];
                    if s != u32::MAX {
                        votes[s as usize] += 1;
                    }
                }
                // invariant: `k >= 1` (InvalidShardCount is rejected at
                // construction), so the votes vector is never empty.
                let (best, &count) = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                    .expect("at least one shard");
                (count > 0).then_some(best as u32)
            })
            .collect();

        let (mut shards, island_home, assignment) =
            build_fleet_for(&new_layout, self.island_cfg, self.consumer_cfg, k, Some(&prefer))?;
        if let Some(p) = &self.prepared {
            for shard in &mut shards {
                shard.engine.prepare(&p.model, &p.weights)?;
            }
        }
        let moved_islands = prefer
            .iter()
            .zip(&assignment.island_shard)
            .filter(|(p, &s)| matches!(p, Some(ps) if *ps != s))
            .count();

        // Shards whose owned island-node set changed — any node that
        // moved in, moved out, or left the owned set entirely (for
        // example an island node reclassified to hub) marks both its
        // previous and (when owned) new shard.
        let mut new_node_shard: Vec<u32> = vec![u32::MAX; new_graph.num_nodes()];
        for (s, shard) in shards.iter().enumerate() {
            let hs = shard.num_hubs();
            for &orig in &shard.gather_original[hs..] {
                new_node_shard[orig as usize] = s as u32;
            }
        }
        let mut changed = vec![false; k.max(shards.len())];
        for (prev, now) in node_shard.iter().zip(&new_node_shard) {
            if prev != now {
                if *prev != u32::MAX {
                    changed[*prev as usize] = true;
                }
                if *now != u32::MAX {
                    changed[*now as usize] = true;
                }
            }
        }

        // Commit.
        self.graph = new_graph;
        self.partition = result.partition;
        self.locator_stats = result.stats.clone();
        self.layout = new_layout;
        self.shards = shards;
        self.island_home = island_home;
        self.state_pool.clear();
        // The fleet may have shrunk (shard count clamps to the island
        // count); size the health board to the committed fleet.
        self.health.reset(self.shards.len());
        if let Some(p) = self.prepared.take() {
            let norm = p.model.normalization(self.layout.graph());
            let shard_norms: Vec<GcnNormalization> =
                self.shards.iter().map(|s| norm.gather(&s.local_to_layout)).collect();
            self.prepared =
                Some(Prepared { model: p.model, weights: p.weights, norm, shard_norms });
        }

        Ok(ShardUpdateReport {
            update: UpdateReport {
                dissolved_islands: result.dissolved_islands,
                reclassified_nodes: result.reclassified_nodes,
                demoted_hubs: result.demoted_hubs,
                num_nodes: self.graph.num_nodes(),
                locator_stats: result.stats,
            },
            resharded: changed.iter().enumerate().filter_map(|(s, &c)| c.then_some(s)).collect(),
            moved_islands,
            shard_structure: self.shard_structure(),
        })
    }

    /// Structural stats per shard, in shard-index order — the same rows
    /// [`apply_update`] reports after a commit.
    ///
    /// [`apply_update`]: ShardedEngine::apply_update
    pub fn shard_structure(&self) -> Vec<ShardStructure> {
        self.shards
            .iter()
            .map(|shard| ShardStructure {
                islands: shard.islands.len(),
                owned_nodes: shard.num_owned_nodes(),
                halo_hubs: shard.num_hubs(),
                contrib_slots: shard.contrib_slots(),
            })
            .collect()
    }

    /// Measured per-shard [`ExecStats`] for `request`, in shard-index
    /// order: each shard's own engine accounts its local subgraph,
    /// **including the replicated halo** — a hub contacted by islands
    /// on `r` shards has its XW row recomputed (or, on a real fleet,
    /// received) `r` times, and each of those recomputes shows up in
    /// the owning shard's combination ops. The rows therefore do *not*
    /// sum to [`Accelerator::report`]'s canonical logical cost: halo
    /// replication adds work, while coordinator-only hub work (hubs no
    /// island contacts, and inter-hub edges whose endpoints are never
    /// co-replicated) lives outside every shard.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPrepared`] before [`prepare`], or the request
    /// validation failures of [`Accelerator::report`].
    ///
    /// [`prepare`]: Accelerator::prepare
    pub fn shard_reports(&self, request: &InferenceRequest) -> Result<Vec<ExecStats>, CoreError> {
        let prepared = self.prepared()?;
        validate_request(&self.graph, &prepared.model, request)?;
        self.shards
            .iter()
            .map(|shard| {
                let local = request.features.gather_rows(&shard.gather_original);
                shard.engine.account(&local, &prepared.model)
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Persistence: per-shard snapshots + the fleet manifest
    // -----------------------------------------------------------------

    /// Persists the fleet under `dir`: one standard snapshot per shard
    /// (`<name>.shard<i>.snap` — each independently warm-bootable), the
    /// coordinator image (`<name>.global.snap`) and the checksummed
    /// [`ShardManifest`] (`<name>.igsm`) tying them together. Returns
    /// the manifest path.
    ///
    /// # Errors
    ///
    /// [`StoreError`]-level failures, wrapped.
    pub fn save_manifest(&self, dir: impl AsRef<Path>, name: &str) -> Result<PathBuf, ShardError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            ShardError::Store(StoreError::Io { path: dir.to_path_buf(), detail: e.to_string() })
        })?;

        let coordinator_file = format!("{name}.global.snap");
        let coordinator = Snapshot {
            island_cfg: self.island_cfg,
            consumer_cfg: self.consumer_cfg,
            graph: Arc::clone(&self.graph),
            partition: self.partition.clone(),
            locator_stats: self.locator_stats.clone(),
            layout: Arc::clone(&self.layout),
            model: self.prepared.as_ref().map(|p| (p.model.clone(), p.weights.clone())),
            features: None,
        };
        let (_, coordinator_checksum) =
            coordinator.write_with_checksum(dir.join(&coordinator_file))?;
        let coordinator_entry =
            ManifestEntry { checksum: coordinator_checksum, file: coordinator_file };

        let mut entries = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            let file = format!("{name}.shard{s}.snap");
            let (_, checksum) =
                Snapshot::capture(&shard.engine).write_with_checksum(dir.join(&file))?;
            entries.push(ShardEntry {
                snapshot: ManifestEntry { checksum, file },
                islands: shard.islands.clone(),
                hub_global: shard.hub_global.clone(),
                gather_original: shard.gather_original.clone(),
            });
        }

        let manifest = ShardManifest { coordinator: coordinator_entry, shards: entries };
        let path = dir.join(format!("{name}.igsm"));
        manifest.write(&path)?;
        Ok(path)
    }

    /// Fleet cold-start: reads the manifest, verifies every referenced
    /// snapshot's checksum pairing, warm-boots each shard engine (no
    /// locator pass anywhere), reassembles the coordinator plan, and
    /// cross-validates the manifest's routing metadata against both the
    /// coordinator image and the shard images. A stored model comes up
    /// prepared.
    ///
    /// # Errors
    ///
    /// [`ShardError::Store`] for file-level failures (including the
    /// checksum pairing), [`ShardError::ManifestMismatch`] when the
    /// manifest and its snapshots disagree structurally.
    pub fn from_manifest(path: impl AsRef<Path>, exec_cfg: ExecConfig) -> Result<Self, ShardError> {
        let path = path.as_ref();
        let manifest = ShardManifest::read(path)?;
        manifest.verify_files(path)?;
        let coordinator = Snapshot::read(ShardManifest::resolve(path, &manifest.coordinator))?;
        let layout = Arc::clone(&coordinator.layout);
        let lp = layout.partition();
        let num_islands = lp.num_islands();
        let mismatch = |detail: String| ShardError::ManifestMismatch { detail };

        let mut island_home = vec![(u32::MAX, u32::MAX); num_islands];
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for (s, entry) in manifest.shards.iter().enumerate() {
            let snapshot = Snapshot::read(ShardManifest::resolve(path, &entry.snapshot))?;
            let engine = snapshot.warm_engine(ExecConfig::default())?;
            if entry.hub_global.len() != engine.layout().num_hubs() {
                return Err(mismatch(format!(
                    "shard {s}: manifest lists {} halo hubs, snapshot has {}",
                    entry.hub_global.len(),
                    engine.layout().num_hubs()
                )));
            }
            if engine.partition().num_islands() != entry.islands.len() {
                return Err(mismatch(format!(
                    "shard {s}: manifest lists {} islands, snapshot has {}",
                    entry.islands.len(),
                    engine.partition().num_islands()
                )));
            }
            if entry.gather_original.len() != engine.graph().num_nodes() {
                return Err(mismatch(format!(
                    "shard {s}: gather map covers {} nodes, snapshot has {}",
                    entry.gather_original.len(),
                    engine.graph().num_nodes()
                )));
            }
            let mut local_to_layout = entry.hub_global.clone();
            let mut offsets = vec![0usize];
            for (j, &gi) in entry.islands.iter().enumerate() {
                let gisl = lp
                    .islands()
                    .get(gi as usize)
                    .ok_or_else(|| mismatch(format!("shard {s}: island {gi} out of range")))?;
                let lisl = &engine.partition().islands()[j];
                if lisl.nodes.len() != gisl.nodes.len() || lisl.hubs.len() != gisl.hubs.len() {
                    return Err(mismatch(format!(
                        "shard {s}: local island {j} shape disagrees with global island {gi}"
                    )));
                }
                island_home[gi as usize] = (s as u32, j as u32);
                local_to_layout.extend(gisl.nodes.iter().copied());
                // invariant: offsets starts as vec![0], so last() exists.
                offsets.push(offsets.last().expect("offsets seeded with 0") + gisl.hubs.len());
            }
            for (li, &lid) in local_to_layout.iter().enumerate() {
                let expected = layout.gather_order()[lid as usize];
                if entry.gather_original[li] != expected {
                    return Err(mismatch(format!(
                        "shard {s}: gather map entry {li} is {}, coordinator says {expected}",
                        entry.gather_original[li]
                    )));
                }
            }
            shards.push(Shard {
                engine,
                islands: entry.islands.clone(),
                hub_global: entry.hub_global.clone(),
                local_to_layout,
                gather_original: entry.gather_original.clone(),
                island_hub_offsets: offsets,
            });
        }
        if let Some(gi) = island_home.iter().position(|&(s, _)| s == u32::MAX) {
            return Err(mismatch(format!("island {gi} is owned by no shard")));
        }

        let pool = (exec_cfg.num_threads > 1).then(|| ThreadPool::new(exec_cfg.num_threads));
        let num_shards = shards.len();
        let mut engine = ShardedEngine {
            graph: Arc::clone(&coordinator.graph),
            partition: coordinator.partition.clone(),
            locator_stats: coordinator.locator_stats.clone(),
            layout,
            island_cfg: coordinator.island_cfg,
            consumer_cfg: coordinator.consumer_cfg,
            exec_cfg,
            shards,
            island_home,
            prepared: None,
            pool,
            state_pool: Arc::new(ShardStatePool::new()),
            health: Arc::new(HealthBoard::new(num_shards)),
        };
        if let Some((model, weights)) = &coordinator.model {
            engine.prepare_internal(model, weights)?;
        }
        Ok(engine)
    }
}

impl Accelerator for ShardedEngine {
    fn name(&self) -> String {
        format!("I-GCN-sharded[{}]", self.shards.len())
    }

    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn prepare(&mut self, model: &GnnModel, weights: &ModelWeights) -> Result<(), CoreError> {
        self.prepare_internal(model, weights)
    }

    fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, CoreError> {
        let prepared = self.prepared()?;
        validate_request(&self.graph, &prepared.model, request)?;
        let _trace = igcn_obs::trace::with_ambient(request.trace);
        let output = self
            .execute(
                &request.features,
                &prepared.model,
                &prepared.weights,
                &prepared.norm,
                &prepared.shard_norms,
                self.shard_pool(),
            )
            .map_err(|e| self.failure_to_core(e))?;
        let stats = self.stats(&request.features, &prepared.model);
        Ok(InferenceResponse {
            id: request.id,
            output,
            report: ExecReport::from_stats(self.name(), &stats),
        })
    }

    fn infer_batch(
        &self,
        requests: &[InferenceRequest],
    ) -> Result<Vec<InferenceResponse>, CoreError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let prepared = self.prepared()?;
        for request in requests {
            validate_request(&self.graph, &prepared.model, request)?;
        }
        let respond = |request: &InferenceRequest,
                       pool: Option<&ThreadPool>|
         -> Result<InferenceResponse, CoreError> {
            // Runs on pool threads under the batch fan-out: install the
            // request's own trace context there too.
            let _trace = igcn_obs::trace::with_ambient(request.trace);
            let output = self
                .execute(
                    &request.features,
                    &prepared.model,
                    &prepared.weights,
                    &prepared.norm,
                    &prepared.shard_norms,
                    pool,
                )
                .map_err(|e| self.failure_to_core(e))?;
            let stats = self.stats(&request.features, &prepared.model);
            Ok(InferenceResponse {
                id: request.id,
                output,
                report: ExecReport::from_stats(self.name(), &stats),
            })
        };
        if self.exec_cfg.num_threads > 1 && self.exec_cfg.parallel_batch && requests.len() > 1 {
            if let Some(pool) = &self.pool {
                // Fan requests across the pool; each request runs its
                // shards sequentially (no nested fan-out) — exactly the
                // computation a lone sequential infer performs, so
                // batched outputs are bit-identical at any thread
                // count.
                return pool
                    .par_map(requests, |_, request| respond(request, None))
                    .into_iter()
                    .collect();
            }
        }
        requests.iter().map(|request| respond(request, self.shard_pool())).collect()
    }

    fn report(&self, request: &InferenceRequest) -> Result<ExecReport, CoreError> {
        let prepared = self.prepared()?;
        validate_request(&self.graph, &prepared.model, request)?;
        let stats = self.stats(&request.features, &prepared.model);
        Ok(ExecReport::from_stats(self.name(), &stats))
    }

    fn health(&self) -> BackendHealth {
        let down = self.health.down_shards();
        if down.is_empty() {
            BackendHealth::Ready
        } else {
            BackendHealth::Degraded {
                detail: format!(
                    "{}/{} shards down ({down:?}); call heal() to rebuild",
                    down.len(),
                    self.shards.len()
                ),
            }
        }
    }

    fn component_health(&self) -> Vec<(String, BackendHealth)> {
        self.health
            .snapshot()
            .into_iter()
            .enumerate()
            .map(|(i, status)| {
                let health = match status {
                    ShardHealth::Up => BackendHealth::Ready,
                    ShardHealth::Down { detail } => BackendHealth::Degraded { detail },
                };
                (format!("shard{i}"), health)
            })
            .collect()
    }
}

/// One shard's half of a layer: receive the halo (hub XW rows), run the
/// local islands, leave activated island rows in `pong` and exported
/// hub contributions in `contrib`.
#[allow(clippy::too_many_arguments)]
fn run_shard_layer(
    shard: &Shard,
    st: &mut ShardRunState,
    first_layer: bool,
    weights: &DenseMatrix,
    norm: &GcnNormalization,
    activation: igcn_gnn::Activation,
    global_hub_y: &[f32],
    width: usize,
    consumer_cfg: ConsumerConfig,
) {
    // Chaos seam: `panic`-action injections here simulate a shard
    // dying mid-layer; the fan-out above contains the unwind.
    igcn_fail::fail_point!("shard::run_layer");
    let hs = shard.num_hubs();
    let n_local = shard.num_nodes();
    // Halo broadcast: this shard's replicated hub XW rows.
    st.hub_y.clear();
    st.hub_y.resize(hs * width, 0.0);
    for (li, &g) in shard.hub_global.iter().enumerate() {
        st.hub_y[li * width..][..width]
            .copy_from_slice(&global_hub_y[g as usize * width..][..width]);
    }
    st.pong.resize_in_place(n_local, width);
    st.contrib.clear();
    st.contrib.resize(shard.contrib_slots() * width, 0.0);

    let ShardRunState { gathered, ping, pong, contrib, hub_y, arena } = st;
    let input = if first_layer { LayerInput::Sparse(gathered) } else { LayerInput::Dense(ping) };
    let node_out = &mut pong.as_mut_slice()[hs * width..];
    // The fleet's local layer compute is this call, not
    // `IGcnEngine::execute` — record the same stage the single-engine
    // path does so `layer_execute` covers both serving shapes.
    let _layer_span = igcn_obs::Span::enter(igcn_obs::stage::LAYER_EXECUTE);
    execute_islands_export(
        shard.engine.layout(),
        consumer_cfg,
        input,
        weights,
        norm,
        activation,
        hub_y,
        arena,
        node_out,
        contrib,
        &shard.island_hub_offsets,
    );
}

/// A staged fleet: the shards, the `island_home` routing table, and the
/// assignment that produced them.
type StagedFleet = (Vec<Shard>, Vec<(u32, u32)>, ShardAssignment);

/// Assigns islands and builds the whole shard fleet over `layout` —
/// pure with respect to any existing engine, so callers can stage a
/// rebuild and commit only on success. `num_shards` is clamped to the
/// island count; a zero-island layout is unservable.
fn build_fleet_for(
    layout: &Arc<IslandLayout>,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    num_shards: usize,
    prefer: Option<&[Option<u32>]>,
) -> Result<StagedFleet, ShardError> {
    let num_islands = layout.partition().num_islands();
    if num_islands == 0 {
        return Err(ShardError::ShardUnservable {
            shard: 0,
            detail: "graph islandized to zero islands (all hubs)".to_string(),
        });
    }
    let k = num_shards.min(num_islands);
    let assignment = assign_islands(layout.partition(), layout.schedule(), k, prefer);
    let mut shards = Vec::with_capacity(k);
    for (s, islands) in assignment.shards.iter().enumerate() {
        shards.push(
            build_shard(layout, island_cfg, consumer_cfg, islands)
                .map_err(|e| annotate_shard(e, s))?,
        );
    }
    let mut island_home = vec![(u32::MAX, u32::MAX); num_islands];
    for (s, shard) in shards.iter().enumerate() {
        for (j, &gi) in shard.islands.iter().enumerate() {
            island_home[gi as usize] = (s as u32, j as u32);
        }
    }
    Ok((shards, island_home, assignment))
}

/// Builds one shard's subgraph, partition, layout and engine from the
/// global layout — no locator pass, only validated reassembly.
fn build_shard(
    layout: &IslandLayout,
    island_cfg: IslandizationConfig,
    consumer_cfg: ConsumerConfig,
    islands_idx: &[u32],
) -> Result<Shard, ShardError> {
    let lp = layout.partition();
    let num_hubs_global = layout.num_hubs();

    // The halo: hubs contacted by any owned island, ascending global
    // hub ID (which preserves detection order, so local neighbor-sort
    // order is isomorphic to the global one — the bit-identity lever).
    let mut hub_seen = vec![false; num_hubs_global];
    for &gi in islands_idx {
        for &h in &lp.islands()[gi as usize].hubs {
            hub_seen[h as usize] = true;
        }
    }
    let hub_global: Vec<u32> =
        (0..num_hubs_global as u32).filter(|&h| hub_seen[h as usize]).collect();
    let hs = hub_global.len();

    let mut layout_to_local = vec![u32::MAX; layout.graph().num_nodes()];
    for (li, &h) in hub_global.iter().enumerate() {
        layout_to_local[h as usize] = li as u32;
    }
    let mut local_to_layout = hub_global.clone();
    let mut islands_local: Vec<Island> = Vec::with_capacity(islands_idx.len());
    let mut offsets = vec![0usize];
    for &gi in islands_idx {
        let gisl = &lp.islands()[gi as usize];
        let mut nodes_local = Vec::with_capacity(gisl.nodes.len());
        for &v in &gisl.nodes {
            layout_to_local[v as usize] = local_to_layout.len() as u32;
            nodes_local.push(local_to_layout.len() as u32);
            local_to_layout.push(v);
        }
        let hubs_local: Vec<u32> = gisl.hubs.iter().map(|&h| layout_to_local[h as usize]).collect();
        // invariant: offsets starts as vec![0], so last() exists.
        offsets.push(offsets.last().expect("offsets seeded with 0") + hubs_local.len());
        islands_local.push(Island {
            nodes: nodes_local,
            hubs: hubs_local,
            round: gisl.round,
            engine: gisl.engine,
        });
    }
    let n_local = local_to_layout.len();

    // Subgraph edges: every owned island node's full adjacency (island
    // closure keeps it local), hub rows mirrored, plus the inter-hub
    // edges both of whose endpoints are replicated here.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for &gi in islands_idx {
        for &v in &lp.islands()[gi as usize].nodes {
            let lv = layout_to_local[v as usize];
            for &nb in layout.graph().neighbors(NodeId::new(v)) {
                let lnb = layout_to_local[nb as usize];
                debug_assert_ne!(lnb, u32::MAX, "island closure guarantees local neighbors");
                edges.push((lv, lnb));
                if (nb as usize) < num_hubs_global {
                    edges.push((lnb, lv));
                }
            }
        }
    }
    let mut inter_hub_local: Vec<(u32, u32)> = Vec::new();
    for &(a, b) in lp.inter_hub_edges() {
        let (la, lb) = (layout_to_local[a as usize], layout_to_local[b as usize]);
        if la != u32::MAX && lb != u32::MAX {
            edges.push((la, lb));
            edges.push((lb, la));
            inter_hub_local.push((la.min(lb), la.max(lb)));
        }
    }
    inter_hub_local.sort_unstable();
    let local_graph = CsrGraph::from_directed_edges(n_local, &edges)?;

    let mut node_class = vec![NodeClass::Unclassified; n_local];
    for c in node_class.iter_mut().take(hs) {
        *c = NodeClass::Hub;
    }
    for (j, isl) in islands_local.iter().enumerate() {
        for &v in &isl.nodes {
            node_class[v as usize] = NodeClass::Island(j as u32);
        }
    }
    let local_partition = IslandPartition::from_raw_parts(
        n_local,
        islands_local,
        (0..hs as u32).collect(),
        inter_hub_local,
        node_class,
        lp.c_max(),
    )?;
    // Local IDs are already in schedule order (hubs first, islands back
    // to back), so the composed local layout's permutation is the
    // identity and its bitmaps/member order mirror the global ones.
    let local_layout = IslandLayout::new(&local_graph, &local_partition, consumer_cfg.num_pes);
    let engine = IGcnEngine::builder(local_graph)
        .island_config(island_cfg)
        .consumer_config(consumer_cfg)
        .build_from_parts(EngineParts {
            partition: local_partition,
            locator_stats: LocatorStats::default(),
            layout: Arc::new(local_layout),
        })?;

    let gather_original: Vec<u32> =
        local_to_layout.iter().map(|&lid| layout.gather_order()[lid as usize]).collect();
    Ok(Shard {
        engine,
        islands: islands_idx.to_vec(),
        hub_global,
        local_to_layout,
        gather_original,
        island_hub_offsets: offsets,
    })
}

fn annotate_shard(e: ShardError, shard: usize) -> ShardError {
    match e {
        ShardError::Core(CoreError::EmptyGraph { num_nodes, num_edges }) => {
            ShardError::ShardUnservable {
                shard,
                detail: format!(
                    "subgraph has {num_nodes} nodes and {num_edges} edges — lower the shard count"
                ),
            }
        }
        other => other,
    }
}
